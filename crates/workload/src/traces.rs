//! Trace-calibrated workload models for CTC, KTH, LANL and SDSC.
//!
//! The paper's job sets are synthetic sets generated from four Parallel
//! Workload Archive traces; only the aggregate statistics of those traces
//! (its Table 2) are published. Each model below is a three-regime
//! session mixture (interactive / batch / parameter-study) whose
//! *aggregate* width, estimated-run-time and overestimation statistics are
//! tuned to the published values, and whose arrival rate is calibrated so
//! the offered load matches the paper's measured utilization at shrinking
//! factor 1.0 (Table 4, FCFS row) — see DESIGN.md §4 for the full
//! substitution argument.
//!
//! | trace | machine | avg width (max) | avg est s (cap) | overest | load @1.0 |
//! |-------|---------|-----------------|-----------------|---------|-----------|
//! | CTC   | 430     | 10.72 (336)     | 24,324 (64,800) | 2.220   | 0.762     |
//! | KTH   | 100     |  7.66 (100)     | 13,678 (216,000)| 1.544   | 0.693     |
//! | LANL  | 1024    | 104.95 (1,024)  |  3,683 (30,000) | 2.220   | 0.636     |
//! | SDSC  | 128     | 10.54 (128)     | 14,344 (172,800)| 2.360   | 0.794     |
//!
//! Published statistics our models reproduce (verified by unit tests and
//! the `table2` binary): the measured aggregate values land within a few
//! percent of the targets.

use crate::dist::{AccuracyModel, DurationDist, WidthDist};
use crate::model::TraceModel;
use crate::regime::Regime;

/// The shrinking factors applied in the paper's evaluation.
pub const SHRINKING_FACTORS: [f64; 5] = [1.0, 0.9, 0.8, 0.7, 0.6];

/// Jobs per synthetic set in the paper.
pub const PAPER_JOBS_PER_SET: usize = 10_000;

/// Synthetic sets per trace in the paper.
pub const PAPER_SETS_PER_TRACE: usize = 10;

fn regime(
    name: &str,
    weight: f64,
    session: f64,
    width: WidthDist,
    estimate: DurationDist,
    arrival_scale: f64,
) -> Regime {
    Regime {
        name: name.to_string(),
        weight,
        mean_session_jobs: session,
        width,
        estimate,
        arrival_scale,
    }
}

/// Assembles a model and calibrates its arrival rate to `target_load`.
fn build(
    name: &str,
    machine_size: u32,
    regimes: Vec<Regime>,
    accuracy: AccuracyModel,
    min_estimate_secs: f64,
    max_estimate_secs: f64,
    target_load: f64,
) -> TraceModel {
    let mut model = TraceModel {
        name: name.to_string(),
        machine_size,
        regimes,
        accuracy,
        mean_interarrival_secs: 1.0, // placeholder until calibrated below
        min_estimate_secs,
        max_estimate_secs,
    };
    let area = model.predicted_mean_area();
    model.mean_interarrival_secs = area / (machine_size as f64 * target_load);
    model
}

/// CTC — Cornell Theory Center IBM SP2, 430 processors. Mixed workload
/// with an 18-hour queue cap; a large share of long batch jobs pushes the
/// mean estimate to ~6.8 h.
pub fn ctc() -> TraceModel {
    build(
        "CTC",
        430,
        vec![
            regime(
                "interactive",
                3.5,
                10.0,
                WidthDist::Weighted(vec![(1, 6.0), (2, 2.0), (4, 1.5), (8, 0.5)]),
                DurationDist::Weighted(vec![
                    (600.0, 2.0),
                    (1_800.0, 2.0),
                    (3_600.0, 3.0),
                    (7_200.0, 3.0),
                ]),
                0.35,
            ),
            regime(
                "batch",
                5.25,
                8.0,
                WidthDist::Weighted(vec![
                    (4, 2.0),
                    (8, 3.0),
                    (16, 2.5),
                    (32, 1.5),
                    (64, 0.7),
                    (128, 0.22),
                    (256, 0.06),
                    (336, 0.02),
                ]),
                DurationDist::Weighted(vec![
                    (14_400.0, 1.0),
                    (28_800.0, 2.0),
                    (43_200.0, 2.0),
                    (64_800.0, 5.0),
                ]),
                3.0,
            ),
            regime(
                "study",
                0.575,
                40.0,
                WidthDist::Weighted(vec![(1, 5.0), (2, 3.0), (4, 2.0)]),
                DurationDist::Weighted(vec![(3_600.0, 3.0), (7_200.0, 4.0), (14_400.0, 3.0)]),
                0.04,
            ),
        ],
        AccuracyModel::from_overestimation(2.220, 0.10),
        60.0,
        64_800.0,
        0.762,
    )
}

/// KTH — Royal Institute of Technology IBM SP2, 100 processors. Narrow
/// jobs with a very heavy run-time tail (60-hour cap): the trace where
/// SJF wins at every load in the paper.
pub fn kth() -> TraceModel {
    build(
        "KTH",
        100,
        vec![
            // KTH's width and run-time distributions are only weakly
            // correlated: the long batch tail is NOT wider than the rest
            // of the mix. That is what makes SJF dominate in SLDwA
            // (= 1 + Σ widthᵢ·waitᵢ / Σ areaᵢ): deferring a long narrow
            // job is cheap, making a short job wait behind it is not.
            regime(
                "interactive",
                5.5,
                10.0,
                WidthDist::Weighted(vec![
                    (1, 3.0),
                    (2, 2.0),
                    (4, 2.0),
                    (8, 1.5),
                    (16, 1.0),
                    (32, 0.5),
                ]),
                DurationDist::Weighted(vec![
                    (60.0, 1.0),
                    (300.0, 3.0),
                    (900.0, 3.0),
                    (3_600.0, 3.0),
                ]),
                0.35,
            ),
            regime(
                "batch",
                1.375,
                8.0,
                WidthDist::Weighted(vec![
                    (4, 2.0),
                    (8, 3.0),
                    (16, 3.0),
                    (32, 1.6),
                    (64, 0.3),
                    (100, 0.1),
                ]),
                DurationDist::Weighted(vec![(21_600.0, 3.0), (86_400.0, 4.0), (216_000.0, 3.0)]),
                3.0,
            ),
            regime(
                "study",
                0.85,
                40.0,
                WidthDist::Weighted(vec![(1, 2.0), (2, 2.0), (4, 3.0), (8, 2.0), (16, 1.0)]),
                DurationDist::Weighted(vec![(900.0, 3.0), (1_800.0, 4.0), (3_600.0, 3.0)]),
                0.04,
            ),
        ],
        AccuracyModel::from_overestimation(1.544, 0.30),
        60.0,
        216_000.0,
        0.693,
    )
}

/// LANL — Los Alamos CM-5, 1024 processors. Widths are powers of two and
/// at least 32 (the CM-5 partition granularity); run times are short and
/// capped at 30,000 s. The trace where all policies perform alike in the
/// paper.
pub fn lanl() -> TraceModel {
    let cm5_widths = WidthDist::Weighted(vec![
        (32, 5.0),
        (64, 2.4),
        (128, 1.4),
        (256, 0.7),
        (512, 0.35),
        (1_024, 0.15),
    ]);
    build(
        "LANL",
        1_024,
        vec![
            // LANL run times are short and compressed (30,000 s cap on a
            // fast machine): the regimes' estimate ranges overlap much
            // more than on the other traces, which is what makes the
            // three policies nearly indistinguishable in the paper.
            regime(
                "interactive",
                4.3,
                8.0,
                cm5_widths.clone(),
                DurationDist::Weighted(vec![(120.0, 2.0), (600.0, 4.0), (1_800.0, 4.0)]),
                0.75,
            ),
            regime(
                "batch",
                2.5,
                8.0,
                cm5_widths.clone(),
                DurationDist::Weighted(vec![
                    (3_600.0, 5.0),
                    (7_200.0, 3.0),
                    (14_400.0, 1.0),
                    (30_000.0, 1.0),
                ]),
                1.4,
            ),
            regime(
                "study",
                0.925,
                15.0,
                cm5_widths,
                DurationDist::Weighted(vec![(1_800.0, 3.0), (3_600.0, 4.0), (7_200.0, 3.0)]),
                0.55,
            ),
        ],
        AccuracyModel::from_overestimation(2.220, 0.10),
        1.0,
        30_000.0,
        0.636,
    )
}

/// SDSC — San Diego Supercomputer Center IBM SP2, 128 processors. Mixed
/// widths with a 48-hour cap and the strongest overestimation of the four
/// traces.
pub fn sdsc() -> TraceModel {
    build(
        "SDSC",
        128,
        vec![
            regime(
                "interactive",
                4.5,
                10.0,
                WidthDist::Weighted(vec![(1, 5.0), (2, 2.0), (4, 2.0), (8, 1.0)]),
                DurationDist::Weighted(vec![(300.0, 2.0), (1_200.0, 3.0), (3_600.0, 5.0)]),
                0.35,
            ),
            regime(
                "batch",
                1.625,
                8.0,
                WidthDist::Weighted(vec![(16, 2.0), (32, 3.0), (64, 3.0), (128, 2.0)]),
                DurationDist::Weighted(vec![(43_200.0, 4.0), (86_400.0, 4.0), (172_800.0, 2.0)]),
                3.0,
            ),
            regime(
                "study",
                1.05,
                40.0,
                WidthDist::Weighted(vec![(2, 3.0), (4, 4.0), (8, 3.0)]),
                DurationDist::Weighted(vec![(1_800.0, 3.0), (3_600.0, 4.0), (7_200.0, 3.0)]),
                0.04,
            ),
        ],
        AccuracyModel::from_overestimation(2.360, 0.10),
        2.0,
        172_800.0,
        0.794,
    )
}

/// All four models in the order the paper lists them.
pub fn standard_models() -> Vec<TraceModel> {
    vec![ctc(), kth(), lanl(), sdsc()]
}

/// Looks a model up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<TraceModel> {
    match name.to_ascii_uppercase().as_str() {
        "CTC" => Some(ctc()),
        "KTH" => Some(kth()),
        "LANL" => Some(lanl()),
        "SDSC" => Some(sdsc()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    struct Target {
        mean_width: f64,
        max_width: u32,
        mean_estimate: f64,
        overestimation: f64,
        load: f64,
    }

    /// Averages the Table-2 statistics over several generated sets — the
    /// experiments themselves combine 10 sets, so per-set noise (the
    /// batch regime has heavy-tailed areas) is expected and tolerated.
    fn check(model: &TraceModel, t: Target) {
        let sets = model.generate_sets(10_000, 6, 4242);
        let stats: Vec<TraceStats> = sets.iter().map(TraceStats::measure).collect();
        let avg =
            |f: &dyn Fn(&TraceStats) -> f64| stats.iter().map(f).sum::<f64>() / stats.len() as f64;
        let mean_width = avg(&|s| s.width.mean);
        let max_width = stats.iter().map(|s| s.width.max).fold(0.0, f64::max);
        let mean_estimate = avg(&|s| s.estimate.mean);
        let overest = avg(&|s| s.overestimation_factor);
        let load = avg(&|s| s.offered_load);
        let interarrival = avg(&|s| s.interarrival.mean);
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(mean_width, t.mean_width) < 0.15,
            "{}: mean width {mean_width:.2} vs target {:.2}",
            model.name,
            t.mean_width
        );
        assert!(
            max_width <= t.max_width as f64 + 0.5,
            "{}: max width {max_width} over cap {}",
            model.name,
            t.max_width
        );
        assert!(
            rel(mean_estimate, t.mean_estimate) < 0.15,
            "{}: mean estimate {mean_estimate:.0} vs target {:.0}",
            model.name,
            t.mean_estimate
        );
        assert!(
            rel(overest, t.overestimation) < 0.10,
            "{}: overestimation {overest:.3} vs target {:.3}",
            model.name,
            t.overestimation
        );
        assert!(
            rel(load, t.load) < 0.10,
            "{}: offered load {load:.3} vs target {:.3}",
            model.name,
            t.load
        );
        // Interarrival mean is pinned exactly (up to ms rounding).
        assert!(
            rel(interarrival, model.mean_interarrival_secs) < 0.01,
            "{}: interarrival {interarrival:.1} vs calibrated {:.1}",
            model.name,
            model.mean_interarrival_secs
        );
    }

    #[test]
    fn ctc_matches_published_statistics() {
        check(
            &ctc(),
            Target {
                mean_width: 10.72,
                max_width: 336,
                mean_estimate: 24_324.0,
                overestimation: 2.220,
                load: 0.762,
            },
        );
    }

    #[test]
    fn kth_matches_published_statistics() {
        check(
            &kth(),
            Target {
                mean_width: 7.66,
                max_width: 100,
                mean_estimate: 13_678.0,
                overestimation: 1.544,
                load: 0.693,
            },
        );
    }

    #[test]
    fn lanl_matches_published_statistics() {
        check(
            &lanl(),
            Target {
                mean_width: 104.95,
                max_width: 1_024,
                mean_estimate: 3_683.0,
                overestimation: 2.220,
                load: 0.636,
            },
        );
    }

    #[test]
    fn sdsc_matches_published_statistics() {
        check(
            &sdsc(),
            Target {
                mean_width: 10.54,
                max_width: 128,
                mean_estimate: 14_344.0,
                overestimation: 2.360,
                load: 0.794,
            },
        );
    }

    #[test]
    fn lanl_widths_are_cm5_partitions() {
        let set = lanl().generate(5_000, 1);
        for j in set.jobs() {
            assert!(
                j.width >= 32 && j.width.is_power_of_two(),
                "width {}",
                j.width
            );
        }
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        assert_eq!(by_name("ctc").unwrap().name, "CTC");
        assert_eq!(by_name("Kth").unwrap().name, "KTH");
        assert!(by_name("XXX").is_none());
        assert_eq!(standard_models().len(), 4);
    }
}
