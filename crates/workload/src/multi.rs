//! Multi-cluster workload streams for the federation layer.
//!
//! A federation runs several clusters, each with its own submission
//! stream. The routing layer needs one *global* arrival order (jobs are
//! routed in submission order at epoch barriers) and one dense global id
//! space (ids index shared per-job tables such as the attempt counters),
//! so this module merges per-cluster [`JobSet`]s into a single
//! [`MultiClusterWorkload`]: jobs sorted by `(submit, cluster, local
//! id)`, re-numbered densely, with an origin map recording which cluster
//! each job was submitted at.
//!
//! A one-cluster workload built with [`MultiClusterWorkload::single`]
//! preserves the job order of the underlying set exactly — the federation
//! executor relies on this for its bit-identity with the single-cluster
//! driver.

use crate::job::{Job, JobId, JobSet};
use dynp_des::SimTime;

/// The merged submission streams of a federation: all jobs of every
/// cluster in one global arrival order, with dense global ids and an
/// origin map.
#[derive(Clone, Debug)]
pub struct MultiClusterWorkload {
    /// Human-readable origin, e.g. `"CTC×4"`.
    pub name: String,
    /// Jobs in nondecreasing submission order, ids dense `0..n`.
    jobs: Vec<Job>,
    /// `origin[id]` = index of the cluster the job was submitted at.
    origin: Vec<u32>,
    /// Machine size of each cluster, by cluster index.
    machine_sizes: Vec<u32>,
}

impl MultiClusterWorkload {
    /// Merges one [`JobSet`] per cluster into a global stream. Jobs are
    /// ordered by `(submit, cluster, local id)` and re-numbered densely,
    /// so ties at equal instants break by cluster index — deterministic
    /// for any input.
    ///
    /// # Panics
    /// Panics when `per_cluster` is empty.
    pub fn merge(name: impl Into<String>, per_cluster: &[JobSet]) -> MultiClusterWorkload {
        assert!(
            !per_cluster.is_empty(),
            "a federation needs at least one cluster"
        );
        let mut tagged: Vec<(u32, Job)> = Vec::new();
        for (cluster, set) in per_cluster.iter().enumerate() {
            for job in set.jobs() {
                tagged.push((cluster as u32, *job));
            }
        }
        // Per-set job ids are already dense and sorted within a set, so
        // (submit, cluster, local id) is a total order.
        tagged.sort_by_key(|(cluster, job)| (job.submit, *cluster, job.id));
        let mut jobs = Vec::with_capacity(tagged.len());
        let mut origin = Vec::with_capacity(tagged.len());
        for (i, (cluster, mut job)) in tagged.into_iter().enumerate() {
            job.id = JobId(i as u32);
            jobs.push(job);
            origin.push(cluster);
        }
        MultiClusterWorkload {
            name: name.into(),
            jobs,
            origin,
            machine_sizes: per_cluster.iter().map(|s| s.machine_size).collect(),
        }
    }

    /// A one-cluster workload over an existing set; job ids and order are
    /// preserved exactly.
    pub fn single(set: &JobSet) -> MultiClusterWorkload {
        MultiClusterWorkload {
            name: set.name.clone(),
            jobs: set.jobs().to_vec(),
            origin: vec![0; set.len()],
            machine_sizes: vec![set.machine_size],
        }
    }

    /// All jobs in global arrival order (`jobs()[i].id == JobId(i)`).
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The cluster a job was submitted at.
    pub fn origin_of(&self, id: JobId) -> u32 {
        self.origin[id.index()]
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.machine_sizes.len()
    }

    /// Machine size of each cluster, by cluster index.
    pub fn machine_sizes(&self) -> &[u32] {
        &self.machine_sizes
    }

    /// Total number of jobs across all clusters.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no cluster has any job.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submission time of the first job ([`SimTime::ZERO`] when empty).
    pub fn first_submit(&self) -> SimTime {
        self.jobs.first().map_or(SimTime::ZERO, |j| j.submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;

    fn j(id: u32, submit_s: u64, width: u32) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
        )
    }

    #[test]
    fn merge_orders_by_submit_then_cluster() {
        let a = JobSet::new("a", 8, vec![j(0, 10, 1), j(1, 30, 2)]);
        let b = JobSet::new("b", 16, vec![j(0, 10, 3), j(1, 20, 4)]);
        let w = MultiClusterWorkload::merge("t", &[a, b]);
        assert_eq!(w.clusters(), 2);
        assert_eq!(w.len(), 4);
        assert_eq!(w.machine_sizes(), &[8, 16]);
        // At t=10 the cluster-0 job precedes the cluster-1 job.
        let widths: Vec<u32> = w.jobs().iter().map(|x| x.width).collect();
        assert_eq!(widths, vec![1, 3, 4, 2]);
        let origins: Vec<u32> = (0..4).map(|i| w.origin_of(JobId(i))).collect();
        assert_eq!(origins, vec![0, 1, 1, 0]);
        for (i, job) in w.jobs().iter().enumerate() {
            assert_eq!(job.id, JobId(i as u32));
        }
    }

    #[test]
    fn single_preserves_the_set_exactly() {
        let set = JobSet::new("s", 4, vec![j(0, 5, 1), j(1, 7, 2), j(2, 7, 3)]);
        let w = MultiClusterWorkload::single(&set);
        assert_eq!(w.jobs(), set.jobs());
        assert_eq!(w.clusters(), 1);
        assert!((0..3).all(|i| w.origin_of(JobId(i)) == 0));
        assert_eq!(w.first_submit(), SimTime::from_secs(5));
    }

    #[test]
    fn empty_clusters_are_benign() {
        let a = JobSet::new("a", 8, vec![]);
        let b = JobSet::new("b", 8, vec![j(0, 1, 1)]);
        let w = MultiClusterWorkload::merge("t", &[a, b]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.origin_of(JobId(0)), 1);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn merge_rejects_zero_clusters() {
        let _ = MultiClusterWorkload::merge("t", &[]);
    }
}
