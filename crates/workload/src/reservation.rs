//! Advance-reservation request streams.
//!
//! A planning-based RMS serves two kinds of traffic: batch jobs (the
//! [`crate::job`] model) and *advance-reservation requests* — "give me
//! `width` processors over `[start, start + duration)`", asked `lead`
//! time ahead. This module models the request side of that traffic:
//!
//! * [`ReservationRequest`] — one request, as it arrives at the RMS:
//!   submission instant, requested window, optional cancellation;
//! * [`ReservationModel`] — a synthetic generator producing a request
//!   stream calibrated against a job set: Poisson request arrivals over
//!   the job-set span, configurable width/duration/lead-time
//!   distributions, and a target *booked-area fraction* (requested
//!   processor-seconds relative to the machine's capacity over the span).
//!
//! Whether a request is *admitted* is not decided here — that is the
//! admission controller's feasibility check (`dynp-rms`); the generator
//! only produces the offered stream, exactly as the job models only
//! produce offered load.

use crate::dist::DurationDist;
use crate::job::JobSet;
use dynp_des::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One advance-reservation request as it reaches the RMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReservationRequest {
    /// Dense request identifier (position in the stream).
    pub id: u32,
    /// When the request arrives at the RMS (the admission instant).
    pub submit: SimTime,
    /// First requested instant (`submit + lead`).
    pub start: SimTime,
    /// Length of the requested window.
    pub duration: SimDuration,
    /// Requested processors.
    pub width: u32,
    /// If set, the user withdraws the (admitted) window at this instant —
    /// always after `submit` and before `start`.
    pub cancel_at: Option<SimTime>,
}

impl ReservationRequest {
    /// One past the last requested instant.
    pub fn end(&self) -> SimTime {
        self.start.saturating_add(self.duration)
    }

    /// Requested processor-seconds.
    pub fn area(&self) -> f64 {
        self.duration.as_secs_f64() * self.width as f64
    }

    /// Requested processor-milliseconds, exact — the unit the driver's
    /// snapshotable area counters accumulate in.
    pub fn area_pms(&self) -> u64 {
        self.duration.as_millis() * self.width as u64
    }
}

/// Synthetic reservation-request generator, calibrated against a job set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReservationModel {
    /// Target requested area as a fraction of the machine's total
    /// capacity over the job-set span (0 disables the stream). The
    /// generator emits requests until their cumulative area reaches this
    /// target — the *offered* booking pressure; the acceptance rate then
    /// falls out of admission.
    pub booked_fraction: f64,
    /// Window width as a fraction of the machine (samples are clamped
    /// into `(0, 1]` and scaled to processors).
    pub width_fraction: DurationDist,
    /// Window length in seconds.
    pub duration: DurationDist,
    /// Lead time in seconds: how far ahead of its submission a request's
    /// window starts.
    pub lead: DurationDist,
    /// Probability an admitted window is cancelled before it starts.
    pub cancel_prob: f64,
}

impl ReservationModel {
    /// A representative mixed stream for the given booking pressure:
    /// quarter-machine-ish windows of one to a few hours, asked for half
    /// a day ahead, with a small cancellation rate — the
    /// maintenance-window / interactive-session mix planning RMSs see.
    pub fn typical(booked_fraction: f64) -> Self {
        ReservationModel {
            booked_fraction,
            width_fraction: DurationDist::LogUniform {
                min: 0.05,
                max: 0.5,
            },
            duration: DurationDist::LogUniform {
                min: 1_800.0,
                max: 14_400.0,
            },
            lead: DurationDist::LogUniform {
                min: 3_600.0,
                max: 86_400.0,
            },
            cancel_prob: 0.05,
        }
    }

    /// Generates the request stream for `set`: Poisson (exponential-gap)
    /// arrivals spread over the job-set's submission span, windows sampled
    /// from the configured distributions, total requested area pinned to
    /// `booked_fraction × machine × span` (the same rescaling idiom the
    /// job generator uses for interarrival calibration). Deterministic in
    /// `(model, set, seed)`.
    pub fn generate(&self, set: &JobSet, seed: u64) -> Vec<ReservationRequest> {
        if self.booked_fraction <= 0.0 || set.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5265_7365_7276_6521);
        let span = set
            .last_submit()
            .saturating_since(set.first_submit())
            .as_secs_f64()
            .max(1.0);
        let target_area = self.booked_fraction * set.machine_size as f64 * span;

        // Sample window shapes until the offered area reaches the target.
        let mut shapes: Vec<(u32, f64, f64, Option<f64>)> = Vec::new();
        let mut area = 0.0;
        while area < target_area {
            let frac = self.width_fraction.sample(&mut rng).clamp(1e-6, 1.0);
            let width = ((frac * set.machine_size as f64).ceil() as u32).clamp(1, set.machine_size);
            let duration = self.duration.sample(&mut rng).max(60.0);
            let lead = self.lead.sample(&mut rng).max(1.0);
            let cancel = if rng.gen::<f64>() < self.cancel_prob {
                // Withdrawn somewhere strictly inside (submit, start).
                Some(rng.gen::<f64>().clamp(0.01, 0.99))
            } else {
                None
            };
            area += width as f64 * duration;
            shapes.push((width, duration, lead, cancel));
        }

        // Poisson arrivals over the span, rescaled so the stream covers it
        // exactly like the job generator pins its mean interarrival.
        let mut gaps: Vec<f64> = (0..shapes.len())
            .map(|_| -(1.0 - rng.gen::<f64>()).ln())
            .collect();
        let total: f64 = gaps.iter().sum();
        if total > 0.0 {
            let k = span / total;
            for g in &mut gaps {
                *g *= k;
            }
        }

        let t0 = set.first_submit().as_secs_f64();
        let mut requests = Vec::with_capacity(shapes.len());
        let mut t = t0;
        for (i, ((width, duration, lead, cancel), gap)) in shapes.into_iter().zip(gaps).enumerate()
        {
            t += gap;
            let submit = SimTime::from_secs_f64(t);
            let start = SimTime::from_secs_f64(t + lead);
            let cancel_at = cancel.map(|f| SimTime::from_secs_f64(t + f * lead));
            requests.push(ReservationRequest {
                id: i as u32,
                submit,
                start,
                duration: SimDuration::from_secs_f64(duration),
                width,
                cancel_at,
            });
        }
        requests
    }

    /// Total requested processor-seconds of a generated stream.
    pub fn offered_area(requests: &[ReservationRequest]) -> f64 {
        requests.iter().map(|r| r.area()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces;

    fn set() -> JobSet {
        traces::ctc().generate(400, 11)
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let s = set();
        let m = ReservationModel::typical(0.1);
        let a = m.generate(&s, 3);
        let b = m.generate(&s, 3);
        assert_eq!(a, b);
        let c = m.generate(&s, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_fraction_gives_an_empty_stream() {
        let m = ReservationModel::typical(0.0);
        assert!(m.generate(&set(), 1).is_empty());
    }

    #[test]
    fn requests_respect_invariants() {
        let s = set();
        let m = ReservationModel::typical(0.15);
        let reqs = m.generate(&s, 7);
        assert!(!reqs.is_empty());
        let mut last_submit = SimTime::ZERO;
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u32);
            assert!(r.width >= 1 && r.width <= s.machine_size);
            assert!(!r.duration.is_zero());
            assert!(r.start > r.submit, "windows are asked for in advance");
            assert!(r.submit >= last_submit, "submissions are ordered");
            if let Some(c) = r.cancel_at {
                assert!(c > r.submit && c < r.start);
            }
            last_submit = r.submit;
        }
    }

    #[test]
    fn offered_area_tracks_the_target_fraction() {
        let s = set();
        let span = s
            .last_submit()
            .saturating_since(s.first_submit())
            .as_secs_f64();
        for &frac in &[0.05, 0.2] {
            let m = ReservationModel::typical(frac);
            let reqs = m.generate(&s, 5);
            let offered = ReservationModel::offered_area(&reqs);
            let capacity = s.machine_size as f64 * span;
            let got = offered / capacity;
            // The last sampled window overshoots the target by at most
            // one window's area.
            assert!(
                got >= frac && got < frac + 0.1,
                "fraction {frac}: offered {got}"
            );
        }
    }

    #[test]
    fn submissions_spread_over_the_job_span() {
        let s = set();
        let m = ReservationModel::typical(0.2);
        let reqs = m.generate(&s, 9);
        let first = reqs.first().unwrap().submit;
        let last = reqs.last().unwrap().submit;
        assert!(first >= s.first_submit());
        // Rescaled gaps put the last request exactly at the span end.
        let span = s.last_submit().saturating_since(s.first_submit());
        let covered = last.saturating_since(s.first_submit());
        assert!(covered.as_secs_f64() > span.as_secs_f64() * 0.99);
    }
}
