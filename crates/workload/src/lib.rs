//! # dynp-workload — parallel job workloads for scheduler evaluation
//!
//! The paper evaluates the self-tuning dynP scheduler on four synthetic job
//! sets "based on traces from the Parallel Workload Archive" (CTC, KTH,
//! LANL, SDSC). This crate is the workload substrate:
//!
//! * [`job`] — the job model: a job is (submission time, width = requested
//!   processors, length = estimated run time) plus the actual run time
//!   needed by the simulation, exactly as defined in §4.2 of the paper;
//! * [`swf`] — reader/writer for the Standard Workload Format used by the
//!   Parallel Workload Archive, so real traces can be dropped in;
//! * [`dist`] — distribution toolbox (clamped lognormal, hyperexponential,
//!   log-uniform, weighted discrete, user-estimate accuracy mixtures);
//! * [`regime`] — regime-switching user-session model: the temporal
//!   non-uniformity (interactive bursts, batch phases, parameter studies)
//!   that policy switching exploits;
//! * [`model`] — the synthetic generator assembling regimes into job sets
//!   with a calibrated mean interarrival time;
//! * [`lublin`] — a Lublin–Feitelson-style parametric model with a
//!   sinusoidal daily arrival cycle, as an alternative input family;
//! * [`traces`] — models calibrated to the published Table 2 statistics of
//!   the four traces;
//! * [`multi`] — multi-cluster workload streams: merges per-cluster job
//!   sets into one global arrival order with an origin map, the input of
//!   the federation routing layer;
//! * [`reservation`] — advance-reservation request streams: a synthetic
//!   Poisson generator calibrated to a target booked-area fraction, plus
//!   SWF `;RESERVATION` directive support in [`swf`];
//! * [`fault`] — deterministic fault-injection traces: seeded node
//!   outage renewal processes plus per-job crash/overrun draws and the
//!   retry/backoff policy the RMS applies to failed attempts;
//! * [`transform`] — the shrinking-factor workload scaling of §4.2 plus
//!   job-set utilities;
//! * [`stats`] — trace statistics (regenerates Table 2 for our inputs).

pub mod dist;
pub mod fault;
pub mod job;
pub mod lublin;
pub mod model;
pub mod multi;
pub mod regime;
pub mod reservation;
pub mod stats;
pub mod swf;
pub mod traces;
pub mod transform;

pub use fault::{FaultKind, FaultModel, FaultPlan, NodeOutage, RetryPolicy};
pub use job::{Job, JobId, JobSet};
pub use model::TraceModel;
pub use multi::MultiClusterWorkload;
pub use reservation::{ReservationModel, ReservationRequest};
pub use stats::TraceStats;
pub use traces::{ctc, kth, lanl, sdsc, standard_models};
pub use transform::shrink;
