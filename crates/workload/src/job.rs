//! The job model of §4.2: "a job is defined by the submission time, the
//! number of requested resources (= width), and the estimated run time
//! (= length). … Additionally, for the simulation the actual run time is
//! required."

use dynp_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a job within a [`JobSet`]; dense, starting at 0, usable
/// as a vector index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A rigid parallel batch job.
///
/// The planning-based RMS schedules on the *estimate* (run time estimates
/// are mandatory in planning systems); the simulation releases resources
/// after the *actual* run time. Jobs are killed at their estimate, so
/// `actual <= estimate` is an invariant (enforced by [`Job::new`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Dense identifier within the owning job set.
    pub id: JobId,
    /// Submission (arrival) time.
    pub submit: SimTime,
    /// Number of requested processors ("width"). At least 1.
    pub width: u32,
    /// Estimated (user-requested) run time ("length"). At least 1 ms.
    pub estimate: SimDuration,
    /// Actual run time; `0 < actual <= estimate`.
    pub actual: SimDuration,
}

impl Job {
    /// Creates a job, clamping fields to the model invariants:
    /// `width >= 1`, `estimate >= 1 ms`, `1 ms <= actual <= estimate`.
    pub fn new(
        id: JobId,
        submit: SimTime,
        width: u32,
        estimate: SimDuration,
        actual: SimDuration,
    ) -> Self {
        let estimate = estimate.max(SimDuration::from_millis(1));
        let actual = actual.max(SimDuration::from_millis(1)).min(estimate);
        Job {
            id,
            submit,
            width: width.max(1),
            estimate,
            actual,
        }
    }

    /// The job's area: actual run time (seconds) × width. SLDwA weights
    /// jobs by this quantity.
    pub fn area(&self) -> f64 {
        self.actual.as_secs_f64() * self.width as f64
    }

    /// The job's *planned* area: estimated run time (seconds) × width —
    /// what the planner reserves.
    pub fn estimated_area(&self) -> f64 {
        self.estimate.as_secs_f64() * self.width as f64
    }

    /// Ratio estimate/actual for this job (≥ 1 by the invariant).
    pub fn overestimation(&self) -> f64 {
        self.estimate.as_secs_f64() / self.actual.as_secs_f64()
    }

    /// Appends the job's exact field values to a checkpoint buffer.
    pub fn encode_into(&self, w: &mut dynp_des::ByteWriter) {
        w.u32(self.id.0);
        w.u64(self.submit.as_millis());
        w.u32(self.width);
        w.u64(self.estimate.as_millis());
        w.u64(self.actual.as_millis());
    }

    /// Decodes a job written by [`Job::encode_into`]. Fields are restored
    /// verbatim (no re-clamping): the encoded job already satisfied the
    /// invariants, and restoring must be bit-identical.
    pub fn decode_from(r: &mut dynp_des::ByteReader<'_>) -> Result<Self, dynp_des::CodecError> {
        Ok(Job {
            id: JobId(r.u32()?),
            submit: SimTime::from_millis(r.u64()?),
            width: r.u32()?,
            estimate: SimDuration::from_millis(r.u64()?),
            actual: SimDuration::from_millis(r.u64()?),
        })
    }
}

/// A job set: one simulation input, jobs sorted by submission time.
///
/// The paper generates "ten synthetic job sets, with 10,000 jobs each …
/// for each trace".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSet {
    /// Human-readable origin, e.g. `"CTC"` or `"CTC/set3"`.
    pub name: String,
    /// Number of processors of the machine this set targets.
    pub machine_size: u32,
    /// Jobs in nondecreasing submission order, ids dense `0..n`.
    jobs: Vec<Job>,
}

impl JobSet {
    /// Builds a job set; jobs are sorted by (submit, id) and re-numbered
    /// densely so `jobs[i].id == JobId(i)`.
    ///
    /// # Panics
    /// Panics if any job is wider than the machine.
    pub fn new(name: impl Into<String>, machine_size: u32, mut jobs: Vec<Job>) -> Self {
        assert!(machine_size >= 1, "machine must have at least 1 processor");
        jobs.sort_by_key(|j| (j.submit, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            assert!(
                j.width <= machine_size,
                "job {} wider ({}) than machine ({machine_size})",
                j.id,
                j.width
            );
            j.id = JobId(i as u32);
        }
        JobSet {
            name: name.into(),
            machine_size,
            jobs,
        }
    }

    /// All jobs, sorted by submission time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job lookup by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the set has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submission time of the first job ([`SimTime::ZERO`] when empty).
    pub fn first_submit(&self) -> SimTime {
        self.jobs.first().map_or(SimTime::ZERO, |j| j.submit)
    }

    /// Submission time of the last job ([`SimTime::ZERO`] when empty).
    pub fn last_submit(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.submit)
    }

    /// Total actual area of all jobs (processor-seconds of real work).
    pub fn total_area(&self) -> f64 {
        self.jobs.iter().map(Job::area).sum()
    }

    /// Offered load: total area / (machine size × submission span). A
    /// rough lower bound on the utilization a scheduler can reach before
    /// saturation.
    pub fn offered_load(&self) -> f64 {
        let span = self
            .last_submit()
            .saturating_since(self.first_submit())
            .as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_area() / (self.machine_size as f64 * span)
    }

    /// Consumes the set and returns its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64, act_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(act_s),
        )
    }

    #[test]
    fn new_clamps_invariants() {
        let job = Job::new(
            JobId(0),
            SimTime::ZERO,
            0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(99),
        );
        assert_eq!(job.width, 1);
        assert_eq!(job.actual, job.estimate); // actual clamped to estimate
        let zero = Job::new(
            JobId(1),
            SimTime::ZERO,
            4,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(zero.estimate.as_millis(), 1);
        assert_eq!(zero.actual.as_millis(), 1);
    }

    #[test]
    fn area_is_runtime_times_width() {
        let job = j(0, 0, 8, 100, 50);
        assert_eq!(job.area(), 400.0);
        assert_eq!(job.estimated_area(), 800.0);
        assert_eq!(job.overestimation(), 2.0);
    }

    #[test]
    fn jobset_sorts_and_renumbers() {
        let set = JobSet::new(
            "t",
            64,
            vec![j(7, 30, 1, 5, 5), j(2, 10, 2, 5, 5), j(5, 20, 4, 5, 5)],
        );
        let submits: Vec<u64> = set
            .jobs()
            .iter()
            .map(|x| x.submit.as_millis() / 1000)
            .collect();
        assert_eq!(submits, vec![10, 20, 30]);
        for (i, job) in set.jobs().iter().enumerate() {
            assert_eq!(job.id, JobId(i as u32));
            assert_eq!(set.job(job.id), job);
        }
    }

    #[test]
    fn jobset_sort_is_stable_for_equal_submits() {
        let set = JobSet::new(
            "t",
            8,
            vec![j(0, 5, 1, 1, 1), j(1, 5, 2, 1, 1), j(2, 5, 3, 1, 1)],
        );
        let widths: Vec<u32> = set.jobs().iter().map(|x| x.width).collect();
        assert_eq!(widths, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn jobset_rejects_oversized_jobs() {
        let _ = JobSet::new("t", 4, vec![j(0, 0, 5, 1, 1)]);
    }

    #[test]
    fn offered_load_formula() {
        // Two width-2 jobs of 50s each, submitted 100s apart, machine 4:
        // area = 200, span = 100, load = 200 / (4*100) = 0.5.
        let set = JobSet::new("t", 4, vec![j(0, 0, 2, 50, 50), j(1, 100, 2, 50, 50)]);
        assert!((set.offered_load() - 0.5).abs() < 1e-12);
        assert_eq!(set.total_area(), 200.0);
    }

    #[test]
    fn empty_set_is_benign() {
        let set = JobSet::new("t", 4, vec![]);
        assert!(set.is_empty());
        assert_eq!(set.offered_load(), 0.0);
        assert_eq!(set.first_submit(), SimTime::ZERO);
    }
}
