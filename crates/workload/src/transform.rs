//! Workload transforms, foremost the paper's *shrinking factor*.
//!
//! §4.2: "We multiply every submission time by the shrinking factor. With
//! shrinking factors smaller than one, jobs are submitted with shorter
//! interarrival times and the workload to be processed is increased." The
//! key property — and the reason the paper picks this of the three
//! possible ways to increase load — is that it "does not change the
//! outlook (i.e. area) of all processed jobs".

use crate::job::{Job, JobId, JobSet};
use dynp_des::SimTime;

/// Scales every submission time by `factor` (> 0). Factors below one
/// compress arrivals and increase the offered load by `1/factor`; run
/// times, widths — and hence job areas — are untouched.
///
/// # Panics
/// Panics if `factor` is not strictly positive.
pub fn shrink(set: &JobSet, factor: f64) -> JobSet {
    assert!(factor > 0.0, "shrinking factor must be positive");
    let jobs = set
        .jobs()
        .iter()
        .map(|j| Job {
            submit: SimTime::from_secs_f64(j.submit.as_secs_f64() * factor),
            ..*j
        })
        .collect();
    JobSet::new(format!("{}@{factor}", set.name), set.machine_size, jobs)
}

/// Keeps only the first `n` jobs (by submission order).
pub fn truncate(set: &JobSet, n: usize) -> JobSet {
    let jobs = set.jobs().iter().take(n).copied().collect();
    JobSet::new(set.name.clone(), set.machine_size, jobs)
}

/// Shifts all submission times so the first job arrives at time zero.
pub fn rebase(set: &JobSet) -> JobSet {
    let t0 = set.first_submit();
    let jobs = set
        .jobs()
        .iter()
        .map(|j| Job {
            submit: SimTime::from_millis(j.submit.as_millis() - t0.as_millis()),
            ..*j
        })
        .collect();
    JobSet::new(set.name.clone(), set.machine_size, jobs)
}

/// Concatenates two job sets for the same machine size, offsetting the
/// second set's submissions to start `gap_secs` after the first set's
/// last submission. Useful for building phase-change workloads in
/// examples and tests.
///
/// # Panics
/// Panics if the machine sizes differ.
pub fn concat(a: &JobSet, b: &JobSet, gap_secs: f64) -> JobSet {
    assert_eq!(
        a.machine_size, b.machine_size,
        "cannot concatenate sets for different machines"
    );
    let offset = a.last_submit().as_secs_f64() + gap_secs;
    let mut jobs: Vec<Job> = a.jobs().to_vec();
    for j in b.jobs() {
        jobs.push(Job {
            id: JobId(jobs.len() as u32),
            submit: SimTime::from_secs_f64(j.submit.as_secs_f64() + offset),
            ..*j
        });
    }
    JobSet::new(format!("{}+{}", a.name, b.name), a.machine_size, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use proptest::prelude::*;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64, act_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(act_s),
        )
    }

    fn sample_set() -> JobSet {
        JobSet::new(
            "s",
            32,
            vec![
                j(0, 100, 2, 600, 300),
                j(1, 250, 8, 1_200, 1_200),
                j(2, 900, 1, 60, 60),
            ],
        )
    }

    #[test]
    fn shrink_scales_submits_only() {
        let set = sample_set();
        let s = shrink(&set, 0.6);
        assert_eq!(s.len(), set.len());
        for (a, b) in set.jobs().iter().zip(s.jobs()) {
            assert_eq!(b.submit.as_secs_f64(), a.submit.as_secs_f64() * 0.6);
            assert_eq!(a.width, b.width);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.actual, b.actual);
        }
        assert_eq!(s.name, "s@0.6");
    }

    #[test]
    fn shrink_by_one_is_identity_on_times() {
        let set = sample_set();
        let s = shrink(&set, 1.0);
        for (a, b) in set.jobs().iter().zip(s.jobs()) {
            assert_eq!(a.submit, b.submit);
        }
    }

    #[test]
    fn shrink_increases_offered_load_inversely() {
        let set = sample_set();
        let s = shrink(&set, 0.5);
        assert!((s.offered_load() - set.offered_load() * 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn shrink_rejects_zero() {
        let _ = shrink(&sample_set(), 0.0);
    }

    #[test]
    fn truncate_takes_prefix() {
        let set = sample_set();
        let t = truncate(&set, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[1].submit, SimTime::from_secs(250));
    }

    #[test]
    fn rebase_moves_first_submit_to_zero() {
        let set = sample_set();
        let r = rebase(&set);
        assert_eq!(r.first_submit(), SimTime::ZERO);
        assert_eq!(
            r.jobs()[1].submit,
            SimTime::from_secs(150) // 250 - 100
        );
    }

    #[test]
    fn concat_offsets_second_set() {
        let a = sample_set();
        let b = sample_set();
        let c = concat(&a, &b, 1_000.0);
        assert_eq!(c.len(), 6);
        // First job of b lands at last_submit(a) + gap + its own submit.
        assert_eq!(c.jobs()[3].submit.as_secs_f64(), 900.0 + 1_000.0 + 100.0);
    }

    proptest! {
        /// The defining property from the paper: shrinking changes no job
        /// area and scales the total submission span by the factor.
        #[test]
        fn shrink_preserves_areas(
            submits in proptest::collection::vec(0u64..500_000, 1..50),
            factor in 0.1f64..1.5,
        ) {
            let jobs: Vec<Job> = submits
                .iter()
                .enumerate()
                .map(|(i, &s)| j(i as u32, s, (i as u32 % 7) + 1, 100 + i as u64, 50 + i as u64))
                .collect();
            let set = JobSet::new("p", 8, jobs);
            let shrunk = shrink(&set, factor);
            prop_assert!((shrunk.total_area() - set.total_area()).abs() < 1e-9);
            // Submission span scales by the factor (up to ms rounding per job).
            let span0 = set.last_submit().as_secs_f64() - set.first_submit().as_secs_f64();
            let span1 = shrunk.last_submit().as_secs_f64() - shrunk.first_submit().as_secs_f64();
            prop_assert!((span1 - span0 * factor).abs() < 0.01, "{span1} vs {}", span0 * factor);
            // Order of jobs is preserved.
            let ids0: Vec<u32> = set.jobs().iter().map(|x| x.width).collect();
            let ids1: Vec<u32> = shrunk.jobs().iter().map(|x| x.width).collect();
            prop_assert_eq!(ids0, ids1);
        }
    }
}
