//! Trace statistics — the quantities the paper reports in its Table 2.

use crate::job::JobSet;
use serde::{Deserialize, Serialize};

/// min / mean / max summary of one column.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Smallest observed value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl ColumnStats {
    fn measure(values: impl Iterator<Item = f64>) -> ColumnStats {
        let mut n = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            n += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            return ColumnStats::default();
        }
        ColumnStats {
            min,
            mean: sum / n as f64,
            max,
        }
    }
}

/// The Table-2 statistics of one job set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceStats {
    /// Job-set name.
    pub name: String,
    /// Number of jobs.
    pub jobs: usize,
    /// Machine size (available resources).
    pub machine_size: u32,
    /// Requested resources (width).
    pub width: ColumnStats,
    /// Estimated run time, seconds.
    pub estimate: ColumnStats,
    /// Actual run time, seconds.
    pub actual: ColumnStats,
    /// Average overestimation factor: mean(estimate) / mean(actual),
    /// exactly as Table 2 defines it (ratio of the column averages).
    pub overestimation_factor: f64,
    /// Interarrival time, seconds.
    pub interarrival: ColumnStats,
    /// Offered load: total area / (machine × submission span).
    pub offered_load: f64,
}

impl TraceStats {
    /// Measures a job set.
    pub fn measure(set: &JobSet) -> TraceStats {
        let jobs = set.jobs();
        let width = ColumnStats::measure(jobs.iter().map(|j| j.width as f64));
        let estimate = ColumnStats::measure(jobs.iter().map(|j| j.estimate.as_secs_f64()));
        let actual = ColumnStats::measure(jobs.iter().map(|j| j.actual.as_secs_f64()));
        let interarrival = ColumnStats::measure(
            jobs.windows(2)
                .map(|w| w[1].submit.saturating_since(w[0].submit).as_secs_f64()),
        );
        TraceStats {
            name: set.name.clone(),
            jobs: jobs.len(),
            machine_size: set.machine_size,
            width,
            estimate,
            actual,
            overestimation_factor: if actual.mean > 0.0 {
                estimate.mean / actual.mean
            } else {
                0.0
            },
            interarrival,
            offered_load: set.offered_load(),
        }
    }

    /// Formats the statistics as two Table-2-style rows (resources block
    /// and run-times block).
    pub fn table2_rows(&self) -> String {
        format!(
            "{:<6} {:>7} | width {:>5.0}/{:>7.2}/{:>6.0} of {:>5} | est [s] {:>6.0}/{:>8.0}/{:>8.0} | actual [s] {:>6.0}/{:>8.0}/{:>8.0} | overest {:>5.3} | interarr [s] {:>3.0}/{:>6.0}/{:>8.0} | load {:>5.3}",
            self.name,
            self.jobs,
            self.width.min,
            self.width.mean,
            self.width.max,
            self.machine_size,
            self.estimate.min,
            self.estimate.mean,
            self.estimate.max,
            self.actual.min,
            self.actual.mean,
            self.actual.max,
            self.overestimation_factor,
            self.interarrival.min,
            self.interarrival.mean,
            self.interarrival.max,
            self.offered_load,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};
    use dynp_des::{SimDuration, SimTime};

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64, act_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(act_s),
        )
    }

    #[test]
    fn measures_hand_checked_values() {
        let set = JobSet::new(
            "t",
            16,
            vec![
                j(0, 0, 2, 100, 50),
                j(1, 10, 4, 200, 100),
                j(2, 40, 6, 300, 150),
            ],
        );
        let s = TraceStats::measure(&set);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.width.min, 2.0);
        assert_eq!(s.width.mean, 4.0);
        assert_eq!(s.width.max, 6.0);
        assert_eq!(s.estimate.mean, 200.0);
        assert_eq!(s.actual.mean, 100.0);
        assert!((s.overestimation_factor - 2.0).abs() < 1e-12);
        // gaps: 10, 30 → min 10, mean 20, max 30
        assert_eq!(s.interarrival.min, 10.0);
        assert_eq!(s.interarrival.mean, 20.0);
        assert_eq!(s.interarrival.max, 30.0);
    }

    #[test]
    fn empty_set_yields_defaults() {
        let set = JobSet::new("t", 4, vec![]);
        let s = TraceStats::measure(&set);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.width.mean, 0.0);
        assert_eq!(s.overestimation_factor, 0.0);
    }

    #[test]
    fn table2_rows_render() {
        let set = JobSet::new("t", 4, vec![j(0, 0, 1, 60, 30)]);
        let row = TraceStats::measure(&set).table2_rows();
        assert!(row.contains("overest"));
        assert!(row.starts_with("t"));
    }
}
