//! Standard Workload Format (SWF) I/O.
//!
//! The Parallel Workload Archive — the source of the paper's CTC, KTH,
//! LANL and SDSC inputs — distributes traces in SWF: one job per line,
//! 18 whitespace-separated integer fields, with `;` header comments. This
//! module reads and writes the format so the harness can run on real
//! archive traces instead of (or alongside) the synthetic models.
//!
//! Field map used here (1-based SWF field numbers):
//!
//! | # | SWF field            | use                                    |
//! |---|----------------------|----------------------------------------|
//! | 1 | job number           | ignored (ids are re-assigned densely)  |
//! | 2 | submit time (s)      | [`Job::submit`]                        |
//! | 4 | run time (s)         | [`Job::actual`]                        |
//! | 5 | allocated processors | fallback width                         |
//! | 8 | requested processors | [`Job::width`] (preferred)             |
//! | 9 | requested time (s)   | [`Job::estimate`]                      |
//!
//! Jobs with unknown (`-1`) width or no usable run time are skipped —
//! the archive's own tooling does the same. When the requested time is
//! unknown the actual run time is used as the estimate (a perfect
//! estimate), matching common simulator practice.
//!
//! ## Reservation directives
//!
//! SWF has no reservation record, so this module carries advance
//! reservations in comment lines (standard SWF readers ignore them):
//!
//! ```text
//! ;RESERVATION <submit> <start> <duration> <width> [cancel_at]
//! ```
//!
//! All times are integer seconds. [`read_swf_with_reservations`] parses
//! these into a [`ReservationRequest`] stream interleaved with the jobs;
//! the plain [`read_swf`] skips them like any other comment.
//!
//! ## Fractional seconds (session logs)
//!
//! Archive traces carry integer seconds, but the service daemon's
//! session logs record live submissions whose instants land between
//! second boundaries. Job time fields are therefore read as (possibly
//! fractional) seconds and kept at millisecond resolution, and the
//! writer emits a fractional field (3 decimals) exactly when the value
//! is not a whole second — so files written from integer-second data are
//! byte-identical to before, while session logs round-trip at full
//! `SimTime` fidelity.

use crate::job::{Job, JobId, JobSet};
use crate::reservation::ReservationRequest;
use dynp_des::{SimDuration, SimTime};
use std::io::{self, BufRead, Write};

/// Prefix marking a reservation directive comment line.
const RESERVATION_TAG: &str = ";RESERVATION";

/// Largest seconds value that survives the scale to millisecond ticks.
/// Anything beyond is a corrupt field, not a real timestamp — accepting
/// it would overflow the `SimTime` multiply.
const MAX_SECS: u64 = u64::MAX / 1000;

/// Formats `ms` as SWF seconds: a plain integer when whole (the archive
/// format, byte-identical to the previous writer), otherwise with
/// exactly 3 decimals so the millisecond value survives the round trip.
fn fmt_secs(ms: u64) -> String {
    if ms.is_multiple_of(1000) {
        format!("{}", ms / 1000)
    } else {
        format!("{}.{:03}", ms / 1000, ms % 1000)
    }
}

/// Converts a non-negative seconds field to millisecond ticks, rounding
/// to the nearest millisecond. `None` when out of range.
fn secs_to_ms(v: f64) -> Option<u64> {
    if !(0.0..=MAX_SECS as f64).contains(&v) {
        return None;
    }
    Some((v * 1000.0).round() as u64)
}

/// Errors raised while parsing an SWF stream.
#[derive(Debug)]
pub enum SwfError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A non-comment line had fewer than 9 fields or a non-numeric field.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "I/O error: {e}"),
            SwfError::Malformed { line, reason } => {
                write!(f, "malformed SWF line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

impl From<io::Error> for SwfError {
    fn from(e: io::Error) -> Self {
        SwfError::Io(e)
    }
}

/// Parses an SWF stream into a job set for a machine of `machine_size`
/// processors. Jobs wider than the machine are clamped to it (archive
/// traces occasionally exceed the configured partition).
pub fn read_swf(
    reader: impl BufRead,
    name: impl Into<String>,
    machine_size: u32,
) -> Result<JobSet, SwfError> {
    read_swf_impl(reader, name, machine_size, None)
}

/// Like [`read_swf`], but also parses `;RESERVATION` directive lines into
/// an advance-reservation request stream (sorted by submission time, ids
/// re-assigned densely in that order).
pub fn read_swf_with_reservations(
    reader: impl BufRead,
    name: impl Into<String>,
    machine_size: u32,
) -> Result<(JobSet, Vec<ReservationRequest>), SwfError> {
    let mut reservations = Vec::new();
    let set = read_swf_impl(reader, name, machine_size, Some(&mut reservations))?;
    Ok((set, reservations))
}

fn parse_reservation(
    trimmed: &str,
    machine_size: u32,
    lineno: usize,
) -> Result<ReservationRequest, SwfError> {
    let fields: Vec<&str> = trimmed[RESERVATION_TAG.len()..]
        .split_whitespace()
        .collect();
    if fields.len() < 4 || fields.len() > 5 {
        return Err(SwfError::Malformed {
            line: lineno + 1,
            reason: format!(
                "reservation directive needs 4-5 fields, got {}",
                fields.len()
            ),
        });
    }
    let parse = |idx: usize| -> Result<u64, SwfError> {
        fields[idx].parse::<u64>().map_err(|_| SwfError::Malformed {
            line: lineno + 1,
            reason: format!(
                "reservation field {} is not a non-negative integer: {:?}",
                idx + 1,
                fields[idx]
            ),
        })
    };
    let secs = |idx: usize| -> Result<u64, SwfError> {
        let v = parse(idx)?;
        if v > MAX_SECS {
            return Err(SwfError::Malformed {
                line: lineno + 1,
                reason: format!("reservation field {} out of range: {v}", idx + 1),
            });
        }
        Ok(v)
    };
    let submit = secs(0)?;
    let start = secs(1)?;
    let duration = secs(2)?;
    let width = u32::try_from(parse(3)?).map_err(|_| SwfError::Malformed {
        line: lineno + 1,
        reason: format!("reservation width out of range: {:?}", fields[3]),
    })?;
    let cancel_at = if fields.len() == 5 {
        Some(SimTime::from_secs(secs(4)?))
    } else {
        None
    };
    if width == 0 || width > machine_size || duration == 0 || start < submit {
        return Err(SwfError::Malformed {
            line: lineno + 1,
            reason: format!("unusable reservation directive: {trimmed:?}"),
        });
    }
    Ok(ReservationRequest {
        id: 0, // re-assigned after the submit-order sort
        submit: SimTime::from_secs(submit),
        start: SimTime::from_secs(start),
        duration: SimDuration::from_secs(duration),
        width,
        cancel_at,
    })
}

fn read_swf_impl(
    reader: impl BufRead,
    name: impl Into<String>,
    machine_size: u32,
    mut reservations: Option<&mut Vec<ReservationRequest>>,
) -> Result<JobSet, SwfError> {
    let mut jobs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            if let Some(out) = reservations.as_deref_mut() {
                if trimmed.starts_with(RESERVATION_TAG) {
                    out.push(parse_reservation(trimmed, machine_size, lineno)?);
                }
            }
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 9 {
            return Err(SwfError::Malformed {
                line: lineno + 1,
                reason: format!("expected >= 9 fields, got {}", fields.len()),
            });
        }
        let parse = |idx: usize| -> Result<f64, SwfError> {
            fields[idx].parse::<f64>().map_err(|_| SwfError::Malformed {
                line: lineno + 1,
                reason: format!("field {} is not numeric: {:?}", idx + 1, fields[idx]),
            })
        };
        let submit = parse(1)?;
        let run = parse(3)?;
        let alloc = parse(4)? as i64;
        let req_procs = parse(7)? as i64;
        let req_time = parse(8)?;

        let width = if req_procs > 0 { req_procs } else { alloc };
        if width <= 0 || run < 0.0 || submit < 0.0 {
            continue; // unusable record, skip like the archive tools do
        }
        let out_of_range = |what: &str, value: f64| SwfError::Malformed {
            line: lineno + 1,
            reason: format!("{what} out of range: {value}"),
        };
        // Times keep millisecond resolution: archive traces only ever
        // carry whole seconds, session logs carry live instants.
        let actual_ms = secs_to_ms(run)
            .ok_or_else(|| out_of_range("run time", run))?
            .max(1);
        let estimate_ms = if req_time > 0.0 {
            secs_to_ms(req_time).ok_or_else(|| out_of_range("requested time", req_time))?
        } else {
            actual_ms
        };
        let submit_ms = secs_to_ms(submit).ok_or_else(|| out_of_range("submit time", submit))?;
        // Clamp before narrowing: a field wider than the machine (or
        // even u32) is the documented clamp case, never a silent wrap.
        let width = (width as u64).min(machine_size as u64) as u32;
        jobs.push(Job::new(
            JobId(jobs.len() as u32),
            SimTime::from_millis(submit_ms),
            width,
            SimDuration::from_millis(estimate_ms),
            SimDuration::from_millis(actual_ms),
        ));
    }
    if let Some(out) = reservations {
        out.sort_by_key(|r| r.submit);
        for (i, r) in out.iter_mut().enumerate() {
            r.id = i as u32;
        }
    }
    Ok(JobSet::new(name, machine_size, jobs))
}

/// Writes a job set as SWF. Fields this model does not carry (user, group,
/// queue, …) are emitted as `-1`, as the format prescribes.
pub fn write_swf(set: &JobSet, mut writer: impl Write) -> io::Result<()> {
    write_swf_with_reservations(set, &[], &mut writer)
}

/// Writes a job set as SWF with the reservation stream as `;RESERVATION`
/// directive lines in the header (ignored by plain SWF readers).
pub fn write_swf_with_reservations(
    set: &JobSet,
    reservations: &[ReservationRequest],
    mut writer: impl Write,
) -> io::Result<()> {
    writeln!(writer, "; generated by dynp-workload")?;
    writeln!(writer, "; MaxProcs: {}", set.machine_size)?;
    writeln!(writer, "; Jobs: {}", set.len())?;
    for r in reservations {
        write!(
            writer,
            "{RESERVATION_TAG} {} {} {} {}",
            r.submit.as_millis() / 1000,
            r.start.as_millis() / 1000,
            r.duration.as_millis() / 1000,
            r.width,
        )?;
        match r.cancel_at {
            Some(c) => writeln!(writer, " {}", c.as_millis() / 1000)?,
            None => writeln!(writer)?,
        }
    }
    for job in set.jobs() {
        writeln!(writer, "{}", swf_job_line(job))?;
    }
    Ok(())
}

/// Renders one job as an SWF record line (no trailing newline): the
/// 18-field layout `write_swf` emits, with fractional seconds exactly
/// where the millisecond value demands them. Exposed so incremental
/// writers — the service daemon's session log appends one line per
/// accepted submission — produce files byte-identical to a
/// [`write_swf`] of the same jobs.
pub fn swf_job_line(job: &Job) -> String {
    // job, submit, wait, run, alloc, cpu, mem, reqproc, reqtime,
    // reqmem, status, uid, gid, exe, queue, partition, prec, think
    format!(
        "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1",
        job.id.0 + 1,
        fmt_secs(job.submit.as_millis()),
        fmt_secs(job.actual.as_millis()),
        job.width,
        job.width,
        fmt_secs(job.estimate.as_millis()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
; Sample SWF header
; MaxProcs: 128
1 0 10 100 4 -1 -1 4 200 -1 1 5 5 -1 1 -1 -1 -1
2 50 0 3600 -1 -1 -1 16 7200 -1 1 5 5 -1 1 -1 -1 -1
3 60 0 -1 8 -1 -1 8 100 -1 0 5 5 -1 1 -1 -1 -1
4 70 0 500 32 -1 -1 -1 -1 -1 1 5 5 -1 1 -1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_unusable_records() {
        let set = read_swf(BufReader::new(SAMPLE.as_bytes()), "sample", 128).unwrap();
        // job 3 has run time -1 → skipped; jobs 1, 2, 4 survive.
        assert_eq!(set.len(), 3);
        let j0 = &set.jobs()[0];
        assert_eq!(j0.submit, SimTime::from_secs(0));
        assert_eq!(j0.width, 4);
        assert_eq!(j0.actual, SimDuration::from_secs(100));
        assert_eq!(j0.estimate, SimDuration::from_secs(200));
        // job 4 has no requested processors → falls back to allocated (32),
        // and no requested time → estimate = actual.
        let j2 = &set.jobs()[2];
        assert_eq!(j2.width, 32);
        assert_eq!(j2.estimate, j2.actual);
    }

    #[test]
    fn actual_clamped_to_estimate_on_underestimating_traces() {
        // run time 7200 > requested 3600: planning RMS kills at estimate.
        let line = "1 0 0 7200 4 -1 -1 4 3600 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let set = read_swf(BufReader::new(line.as_bytes()), "t", 64).unwrap();
        assert_eq!(set.jobs()[0].actual, SimDuration::from_secs(3600));
    }

    #[test]
    fn width_clamps_to_machine() {
        let line = "1 0 0 10 512 -1 -1 512 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let set = read_swf(BufReader::new(line.as_bytes()), "t", 128).unwrap();
        assert_eq!(set.jobs()[0].width, 128);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let bad = "1 2 3\n";
        let err = read_swf(BufReader::new(bad.as_bytes()), "t", 4).unwrap_err();
        match err {
            SwfError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn non_numeric_field_is_an_error() {
        let bad = "1 abc 0 10 4 -1 -1 4 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        assert!(read_swf(BufReader::new(bad.as_bytes()), "t", 4).is_err());
    }

    const SAMPLE_WITH_RES: &str = "\
; Sample SWF header
;RESERVATION 100 4000 1800 16
;RESERVATION 40 7200 3600 8 1000
1 0 10 100 4 -1 -1 4 200 -1 1 5 5 -1 1 -1 -1 -1
";

    #[test]
    fn reservation_directives_parse_and_sort_by_submit() {
        let (set, res) =
            read_swf_with_reservations(BufReader::new(SAMPLE_WITH_RES.as_bytes()), "r", 128)
                .unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(res.len(), 2);
        // sorted by submit, ids re-assigned densely
        assert_eq!(res[0].id, 0);
        assert_eq!(res[0].submit, SimTime::from_secs(40));
        assert_eq!(res[0].width, 8);
        assert_eq!(res[0].cancel_at, Some(SimTime::from_secs(1000)));
        assert_eq!(res[1].submit, SimTime::from_secs(100));
        assert_eq!(res[1].start, SimTime::from_secs(4000));
        assert_eq!(res[1].duration, SimDuration::from_secs(1800));
        assert_eq!(res[1].cancel_at, None);
    }

    #[test]
    fn plain_reader_ignores_reservation_directives() {
        let set = read_swf(BufReader::new(SAMPLE_WITH_RES.as_bytes()), "r", 128).unwrap();
        assert_eq!(set.len(), 1);
        // even a malformed directive is just a comment to the plain reader
        let bad = ";RESERVATION nonsense\n1 0 10 100 4 -1 -1 4 200 -1 1 5 5 -1 1 -1 -1 -1\n";
        assert!(read_swf(BufReader::new(bad.as_bytes()), "r", 128).is_ok());
        assert!(read_swf_with_reservations(BufReader::new(bad.as_bytes()), "r", 128).is_err());
    }

    #[test]
    fn bad_reservation_directive_is_an_error() {
        for bad in [
            ";RESERVATION 10 5 60 4\n",    // starts before submission
            ";RESERVATION 10 20 0 4\n",    // zero duration
            ";RESERVATION 10 20 60 0\n",   // zero width
            ";RESERVATION 10 20 60 999\n", // wider than the machine
            ";RESERVATION 10 20 60\n",     // too few fields
        ] {
            assert!(
                read_swf_with_reservations(BufReader::new(bad.as_bytes()), "r", 128).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn reservations_round_trip() {
        let (set, res) =
            read_swf_with_reservations(BufReader::new(SAMPLE_WITH_RES.as_bytes()), "r", 128)
                .unwrap();
        let mut buf = Vec::new();
        write_swf_with_reservations(&set, &res, &mut buf).unwrap();
        let (set2, res2) =
            read_swf_with_reservations(BufReader::new(buf.as_slice()), "r", 128).unwrap();
        assert_eq!(set.len(), set2.len());
        assert_eq!(res, res2);
    }

    #[test]
    fn fractional_seconds_round_trip_at_millisecond_fidelity() {
        let jobs = vec![
            Job::new(
                JobId(0),
                SimTime::from_millis(1_234),
                4,
                SimDuration::from_millis(90_500),
                SimDuration::from_millis(60_001),
            ),
            Job::new(
                JobId(1),
                SimTime::from_millis(2_000),
                8,
                SimDuration::from_millis(3_600_000),
                SimDuration::from_millis(1),
            ),
        ];
        let set = JobSet::new("session", 64, jobs);
        let mut buf = Vec::new();
        write_swf(&set, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // Fractional only where needed: whole seconds stay integers.
        assert!(text.contains("1.234"), "fractional submit lost: {text}");
        assert!(
            text.contains(" 2 "),
            "whole-second submit gained a fraction"
        );
        let again = read_swf(BufReader::new(buf.as_slice()), "session", 64).unwrap();
        assert_eq!(set.len(), again.len());
        for (a, b) in set.jobs().iter().zip(again.jobs()) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.actual, b.actual);
        }
    }

    #[test]
    fn fmt_secs_matches_integer_writer_on_whole_seconds() {
        assert_eq!(fmt_secs(0), "0");
        assert_eq!(fmt_secs(1000), "1");
        assert_eq!(fmt_secs(1), "0.001");
        assert_eq!(fmt_secs(1500), "1.500");
        assert_eq!(fmt_secs(59_999), "59.999");
    }

    #[test]
    fn round_trip_preserves_jobs() {
        let set = read_swf(BufReader::new(SAMPLE.as_bytes()), "sample", 128).unwrap();
        let mut buf = Vec::new();
        write_swf(&set, &mut buf).unwrap();
        let again = read_swf(BufReader::new(buf.as_slice()), "sample", 128).unwrap();
        assert_eq!(set.len(), again.len());
        for (a, b) in set.jobs().iter().zip(again.jobs()) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.width, b.width);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.actual, b.actual);
        }
    }
}
