//! Distribution toolbox for synthetic workload generation.
//!
//! `rand_distr` supplies the primitive samplers (exponential, lognormal,
//! uniform); this module adds the workload-specific composites the
//! generator needs: clamped/log-uniform variants, hyperexponential
//! interarrivals (bursty sessions have strongly bimodal gaps — see the
//! huge max interarrival times in the paper's Table 2), weighted discrete
//! choices (users request *round* run-time estimates and power-of-two
//! widths), and the run-time accuracy model linking actual run times to
//! estimates via the published overestimation factor.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

/// A distribution over positive durations (seconds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DurationDist {
    /// Always the same value.
    Constant(f64),
    /// Exponential with the given mean.
    Exponential {
        /// Mean in seconds.
        mean: f64,
    },
    /// Two-phase hyperexponential: with probability `p_short` draw from an
    /// exponential of mean `mean_short`, otherwise of mean `mean_long`.
    /// Produces the bursty, heavy-tailed gaps seen in arrival traces.
    Hyperexponential {
        /// Probability of the short phase.
        p_short: f64,
        /// Mean of the short phase (seconds).
        mean_short: f64,
        /// Mean of the long phase (seconds).
        mean_long: f64,
    },
    /// `exp(U(ln min, ln max))` — every order of magnitude equally likely.
    LogUniform {
        /// Lower bound (seconds), > 0.
        min: f64,
        /// Upper bound (seconds), > min.
        max: f64,
    },
    /// Lognormal specified by its median and shape, clamped into
    /// `[min, max]`.
    ClampedLogNormal {
        /// Median of the unclamped distribution (seconds).
        median: f64,
        /// Shape parameter σ of ln X.
        sigma: f64,
        /// Lower clamp (seconds).
        min: f64,
        /// Upper clamp (seconds).
        max: f64,
    },
    /// Weighted choice among fixed values — models users picking round
    /// estimates (10 min, 1 h, 4 h, …). Weights need not be normalized.
    Weighted(Vec<(f64, f64)>),
}

impl DurationDist {
    /// Draws one value (seconds).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            DurationDist::Constant(v) => *v,
            DurationDist::Exponential { mean } => {
                let e = Exp::new(1.0 / mean).expect("mean must be positive");
                e.sample(rng)
            }
            DurationDist::Hyperexponential {
                p_short,
                mean_short,
                mean_long,
            } => {
                let mean = if rng.gen::<f64>() < *p_short {
                    *mean_short
                } else {
                    *mean_long
                };
                Exp::new(1.0 / mean)
                    .expect("mean must be positive")
                    .sample(rng)
            }
            DurationDist::LogUniform { min, max } => {
                let (lo, hi) = (min.ln(), max.ln());
                (rng.gen::<f64>() * (hi - lo) + lo).exp()
            }
            DurationDist::ClampedLogNormal {
                median,
                sigma,
                min,
                max,
            } => {
                let d = LogNormal::new(median.ln(), *sigma).expect("bad lognormal");
                d.sample(rng).clamp(*min, *max)
            }
            DurationDist::Weighted(items) => weighted_choice(items, rng),
        }
    }

    /// The exact or approximate mean of the distribution (clamping
    /// effects ignored for the lognormal). Used only for calibration
    /// reporting, never inside the generator.
    pub fn mean_hint(&self) -> f64 {
        match self {
            DurationDist::Constant(v) => *v,
            DurationDist::Exponential { mean } => *mean,
            DurationDist::Hyperexponential {
                p_short,
                mean_short,
                mean_long,
            } => p_short * mean_short + (1.0 - p_short) * mean_long,
            DurationDist::LogUniform { min, max } => (max - min) / (max / min).ln(),
            DurationDist::ClampedLogNormal { median, sigma, .. } => {
                median * (sigma * sigma / 2.0).exp()
            }
            DurationDist::Weighted(items) => {
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                items.iter().map(|(v, w)| v * w).sum::<f64>() / total
            }
        }
    }
}

/// A distribution over job widths (requested processors).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WidthDist {
    /// Always the same width.
    Constant(u32),
    /// Weighted choice among fixed widths (unnormalized weights). The
    /// natural model: production traces are dominated by a handful of
    /// power-of-two sizes.
    Weighted(Vec<(u32, f64)>),
    /// Log-uniform integer in `[min, max]`, optionally snapped to the
    /// nearest power of two with probability `pow2_snap`.
    LogUniform {
        /// Smallest width, ≥ 1.
        min: u32,
        /// Largest width, ≥ min.
        max: u32,
        /// Probability of snapping the draw to the nearest power of two.
        pow2_snap: f64,
    },
}

impl WidthDist {
    /// Draws one width, clamped into `[1, machine_size]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, machine_size: u32) -> u32 {
        let w = match self {
            WidthDist::Constant(w) => *w,
            WidthDist::Weighted(items) => {
                let items_f: Vec<(f64, f64)> = items.iter().map(|&(v, w)| (v as f64, w)).collect();
                weighted_choice(&items_f, rng).round() as u32
            }
            WidthDist::LogUniform {
                min,
                max,
                pow2_snap,
            } => {
                let (lo, hi) = ((*min as f64).ln(), (*max as f64 + 1.0).ln());
                let raw = (rng.gen::<f64>() * (hi - lo) + lo).exp();
                let mut w = raw.floor() as u32;
                if rng.gen::<f64>() < *pow2_snap {
                    w = nearest_power_of_two(w);
                }
                w.clamp(*min, *max)
            }
        };
        w.clamp(1, machine_size)
    }

    /// Approximate mean width (ignores machine clamping).
    pub fn mean_hint(&self) -> f64 {
        match self {
            WidthDist::Constant(w) => *w as f64,
            WidthDist::Weighted(items) => {
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                items.iter().map(|(v, w)| *v as f64 * w).sum::<f64>() / total
            }
            WidthDist::LogUniform { min, max, .. } => {
                let (a, b) = (*min as f64, *max as f64);
                if a >= b {
                    a
                } else {
                    (b - a) / (b / a).ln()
                }
            }
        }
    }
}

/// Run-time accuracy model: `actual = estimate × r` with
/// `r = 1` (job runs into its estimate and is killed) with probability
/// `exact_prob`, else `r ~ U(low, high)`.
///
/// The paper's Table 2 reports the *average overestimation factor*
/// `avg(estimate) / avg(actual)`; with `r` independent of the estimate the
/// factor equals `1 / E[r]`, which [`AccuracyModel::from_overestimation`]
/// inverts.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Probability the job runs exactly to its estimate.
    pub exact_prob: f64,
    /// Lower bound of the uniform part of `r`.
    pub low: f64,
    /// Upper bound of the uniform part of `r`.
    pub high: f64,
}

impl AccuracyModel {
    /// Builds a model with mean ratio `1 / factor`, using `exact_prob`
    /// mass at `r = 1` and a uniform component centered to hit the mean.
    ///
    /// # Panics
    /// Panics if the requested factor is unreachable with the given
    /// `exact_prob` (e.g. factor < 1).
    pub fn from_overestimation(factor: f64, exact_prob: f64) -> Self {
        assert!(factor >= 1.0, "overestimation factor must be >= 1");
        assert!((0.0..1.0).contains(&exact_prob));
        let target = 1.0 / factor;
        // mean = exact_prob·1 + (1-exact_prob)·(low+high)/2  ⇒ solve for
        // the uniform midpoint.
        let mid = (target - exact_prob) / (1.0 - exact_prob);
        assert!(
            mid > 0.0 && mid < 1.0,
            "exact_prob {exact_prob} too large for factor {factor}"
        );
        // Spread the uniform component as wide as the unit interval allows
        // around the midpoint.
        let half = mid.min(1.0 - mid).min(mid * 0.95);
        AccuracyModel {
            exact_prob,
            low: mid - half,
            high: mid + half,
        }
    }

    /// Draws one ratio `r ∈ (0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.exact_prob {
            1.0
        } else {
            rng.gen::<f64>() * (self.high - self.low) + self.low
        }
    }

    /// Exact mean of `r`.
    pub fn mean(&self) -> f64 {
        self.exact_prob + (1.0 - self.exact_prob) * (self.low + self.high) / 2.0
    }

    /// The overestimation factor this model produces on average.
    pub fn overestimation_factor(&self) -> f64 {
        1.0 / self.mean()
    }
}

/// Weighted choice among `(value, weight)` pairs; weights need not sum
/// to 1.
///
/// # Panics
/// Panics if `items` is empty or the total weight is not positive.
pub fn weighted_choice<R: Rng + ?Sized>(items: &[(f64, f64)], rng: &mut R) -> f64 {
    assert!(!items.is_empty(), "weighted choice over empty set");
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.gen::<f64>() * total;
    for &(v, w) in items {
        if x < w {
            return v;
        }
        x -= w;
    }
    items.last().unwrap().0 // floating-point slack lands on the last item
}

/// Rounds to the nearest power of two (ties go up); 0 maps to 1.
pub fn nearest_power_of_two(x: u32) -> u32 {
    if x <= 1 {
        return 1;
    }
    let lower = 1u32 << (31 - x.leading_zeros());
    let upper = lower << 1;
    if (x - lower) < (upper - x) {
        lower
    } else {
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sample_mean(d: &DurationDist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = DurationDist::Exponential { mean: 100.0 };
        let m = sample_mean(&d, 50_000);
        assert!((m - 100.0).abs() / 100.0 < 0.05, "mean {m}");
    }

    #[test]
    fn hyperexponential_mean_matches_hint() {
        let d = DurationDist::Hyperexponential {
            p_short: 0.8,
            mean_short: 10.0,
            mean_long: 1000.0,
        };
        let hint = d.mean_hint();
        assert!((hint - 208.0).abs() < 1e-9);
        let m = sample_mean(&d, 100_000);
        assert!((m - hint).abs() / hint < 0.08, "mean {m} vs hint {hint}");
    }

    #[test]
    fn log_uniform_stays_in_bounds() {
        let d = DurationDist::LogUniform {
            min: 10.0,
            max: 1000.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((10.0..=1000.0).contains(&x));
        }
        let m = sample_mean(&d, 50_000);
        let hint = d.mean_hint(); // (1000-10)/ln(100) ≈ 215
        assert!((m - hint).abs() / hint < 0.08, "mean {m} vs {hint}");
    }

    #[test]
    fn clamped_lognormal_respects_clamps() {
        let d = DurationDist::ClampedLogNormal {
            median: 100.0,
            sigma: 2.0,
            min: 5.0,
            max: 5000.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((5.0..=5000.0).contains(&x));
        }
    }

    #[test]
    fn weighted_duration_hits_only_listed_values() {
        let d = DurationDist::Weighted(vec![(60.0, 1.0), (3600.0, 3.0)]);
        let mut r = rng();
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            match d.sample(&mut r) {
                x if (x - 60.0).abs() < f64::EPSILON => counts[0] += 1,
                x if (x - 3600.0).abs() < f64::EPSILON => counts[1] += 1,
                other => panic!("unexpected value {other}"),
            }
        }
        // 1:3 weights → roughly 25%/75%.
        assert!((counts[0] as f64 / 10_000.0 - 0.25).abs() < 0.03);
        assert!((d.mean_hint() - (60.0 * 0.25 + 3600.0 * 0.75)).abs() < 1e-9);
    }

    #[test]
    fn width_weighted_mean_hint_is_exact() {
        let d = WidthDist::Weighted(vec![(1, 1.0), (4, 1.0), (16, 2.0)]);
        assert!((d.mean_hint() - (1.0 + 4.0 + 32.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn width_clamps_to_machine() {
        let d = WidthDist::Constant(512);
        let mut r = rng();
        assert_eq!(d.sample(&mut r, 128), 128);
    }

    #[test]
    fn log_uniform_width_in_bounds_and_snappable() {
        let d = WidthDist::LogUniform {
            min: 1,
            max: 300,
            pow2_snap: 1.0,
        };
        let mut r = rng();
        for _ in 0..5_000 {
            let w = d.sample(&mut r, 1024);
            assert!((1..=300).contains(&w));
            // with snap=1 every unclamped draw is a power of two unless
            // the clamp moved it; 256 is the largest pow2 ≤ 300
            assert!(w.is_power_of_two() || w == 300);
        }
    }

    #[test]
    fn nearest_power_of_two_cases() {
        assert_eq!(nearest_power_of_two(0), 1);
        assert_eq!(nearest_power_of_two(1), 1);
        assert_eq!(nearest_power_of_two(3), 4); // tie 2/4 goes up
        assert_eq!(nearest_power_of_two(5), 4);
        assert_eq!(nearest_power_of_two(6), 8); // tie goes up
        assert_eq!(nearest_power_of_two(100), 128);
        assert_eq!(nearest_power_of_two(96), 128); // tie 64/128 goes up
    }

    #[test]
    fn accuracy_model_inverts_overestimation_factor() {
        for &(factor, exact) in &[(2.22, 0.1), (1.544, 0.3), (2.36, 0.1), (1.1, 0.5)] {
            let m = AccuracyModel::from_overestimation(factor, exact);
            assert!(
                (m.overestimation_factor() - factor).abs() / factor < 1e-9,
                "factor {factor}: model gives {}",
                m.overestimation_factor()
            );
            assert!(m.low > 0.0 && m.high <= 1.0, "bounds {m:?}");
        }
    }

    #[test]
    fn accuracy_samples_in_unit_interval_with_exact_mass() {
        let m = AccuracyModel::from_overestimation(2.0, 0.2);
        let mut r = rng();
        let mut exact = 0u32;
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = m.sample(&mut r);
            assert!(x > 0.0 && x <= 1.0);
            if x == 1.0 {
                exact += 1;
            }
            sum += x;
        }
        assert!((exact as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn weighted_choice_rejects_empty() {
        let mut r = rng();
        let _ = weighted_choice(&[], &mut r);
    }
}
