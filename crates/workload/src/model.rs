//! The synthetic job-set generator.
//!
//! A [`TraceModel`] assembles the regime chain, the shared run-time
//! accuracy model and a calibrated mean interarrival time into a complete
//! generator. `generate` produces one job set; `generate_sets` produces
//! the paper's "ten synthetic job sets, with 10,000 jobs each".
//!
//! ## Arrival calibration
//!
//! The paper's absolute utilization numbers at shrinking factor 1.0 encode
//! the *offered load* of the original job sets. We anchor our models the
//! same way: [`TraceModel::mean_interarrival_secs`] is chosen per trace so
//! that `mean job area / (machine × mean interarrival)` equals the
//! paper's measured utilization at factor 1.0 (see `DESIGN.md` §4.2).
//! To make that anchor exact per generated set — the burst structure of
//! the regimes is preserved, only the overall rate is pinned — every
//! set's arrival gaps are rescaled by a single factor after sampling so
//! their mean equals the target.

use crate::dist::AccuracyModel;
use crate::job::{Job, JobId, JobSet};
use crate::regime::{Regime, RegimeChain};
use dynp_des::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A complete synthetic workload model for one machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceModel {
    /// Trace name ("CTC", …).
    pub name: String,
    /// Processors on the modeled machine.
    pub machine_size: u32,
    /// User-session regimes (see [`crate::regime`]).
    pub regimes: Vec<Regime>,
    /// Shared run-time accuracy model (actual = estimate × r).
    pub accuracy: AccuracyModel,
    /// Target mean interarrival time in seconds (exact per generated set).
    pub mean_interarrival_secs: f64,
    /// Smallest allowed estimate in seconds (queue minimum).
    pub min_estimate_secs: f64,
    /// Largest allowed estimate in seconds (queue run-time cap).
    pub max_estimate_secs: f64,
}

impl TraceModel {
    /// The mean interarrival time that yields `target_load` offered load
    /// given the expected job area — the calibration rule from DESIGN.md.
    pub fn interarrival_for_load(
        machine_size: u32,
        mean_width: f64,
        mean_actual_secs: f64,
        target_load: f64,
    ) -> f64 {
        assert!(target_load > 0.0 && target_load < 1.0);
        mean_width * mean_actual_secs / (machine_size as f64 * target_load)
    }

    /// Generates one job set of `n_jobs` jobs. Deterministic in
    /// `(model, n_jobs, seed)`.
    pub fn generate(&self, n_jobs: usize, seed: u64) -> JobSet {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(&self.name));
        let mut chain = RegimeChain::start(&self.regimes, &mut rng);

        let mut widths = Vec::with_capacity(n_jobs);
        let mut estimates = Vec::with_capacity(n_jobs);
        let mut actuals = Vec::with_capacity(n_jobs);
        let mut gaps = Vec::with_capacity(n_jobs);

        for _ in 0..n_jobs {
            let regime = chain.current();
            let width = regime.width.sample(&mut rng, self.machine_size);
            let est = regime
                .estimate
                .sample(&mut rng)
                .clamp(self.min_estimate_secs, self.max_estimate_secs);
            let r = self.accuracy.sample(&mut rng);
            let actual = (est * r).max(1.0).min(est);
            // Gap *before* this job; exponential within the regime,
            // scaled by the regime's arrival intensity.
            let lambda_mean = self.mean_interarrival_secs * regime.arrival_scale;
            let gap = -lambda_mean * (1.0 - rng.gen::<f64>()).ln();
            widths.push(width);
            estimates.push(est);
            actuals.push(actual);
            gaps.push(gap);
            chain.step(&mut rng);
        }

        // Pin the mean gap to the calibrated target (burst structure is
        // preserved; only the global rate is rescaled).
        let observed: f64 = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        if observed > 0.0 {
            let k = self.mean_interarrival_secs / observed;
            for g in &mut gaps {
                *g *= k;
            }
        }

        let mut jobs = Vec::with_capacity(n_jobs);
        let mut t = 0.0f64;
        for i in 0..n_jobs {
            t += gaps[i];
            jobs.push(Job::new(
                JobId(i as u32),
                SimTime::from_secs_f64(t),
                widths[i],
                SimDuration::from_secs_f64(estimates[i]),
                SimDuration::from_secs_f64(actuals[i]),
            ));
        }
        JobSet::new(self.name.clone(), self.machine_size, jobs)
    }

    /// Generates `n_sets` independent sets of `n_jobs` each, named
    /// `"<trace>/set<i>"`, with decorrelated seeds derived from
    /// `base_seed`. The paper uses 10 sets of 10,000 jobs.
    pub fn generate_sets(&self, n_jobs: usize, n_sets: usize, base_seed: u64) -> Vec<JobSet> {
        (0..n_sets)
            .map(|i| {
                let seed = base_seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut set = self.generate(n_jobs, seed);
                set.name = format!("{}/set{i}", self.name);
                set
            })
            .collect()
    }

    /// Predicted mean job area (processor-seconds) from the regime
    /// mixture — used by calibration reports.
    pub fn predicted_mean_area(&self) -> f64 {
        let fractions = RegimeChain::stationary_job_fractions(&self.regimes);
        let mean_r = self.accuracy.mean();
        self.regimes
            .iter()
            .zip(&fractions)
            .map(|(r, &f)| {
                let est = r
                    .estimate
                    .mean_hint()
                    .clamp(self.min_estimate_secs, self.max_estimate_secs);
                f * r.width.mean_hint() * est * mean_r
            })
            .sum()
    }

    /// Predicted offered load at shrinking factor 1.0.
    pub fn predicted_offered_load(&self) -> f64 {
        self.predicted_mean_area() / (self.machine_size as f64 * self.mean_interarrival_secs)
    }
}

/// Tiny stable string hash (FNV-1a) to decorrelate per-trace RNG streams
/// without pulling in a hashing crate.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{DurationDist, WidthDist};
    use crate::regime::three_regime;

    fn toy_model() -> TraceModel {
        TraceModel {
            name: "TOY".into(),
            machine_size: 64,
            regimes: three_regime(
                (
                    2.0,
                    15.0,
                    WidthDist::Weighted(vec![(1, 3.0), (2, 1.0)]),
                    DurationDist::LogUniform {
                        min: 30.0,
                        max: 600.0,
                    },
                    0.3,
                ),
                (
                    1.0,
                    6.0,
                    WidthDist::Weighted(vec![(8, 1.0), (16, 1.0)]),
                    DurationDist::LogUniform {
                        min: 3_600.0,
                        max: 36_000.0,
                    },
                    2.5,
                ),
                (
                    0.7,
                    25.0,
                    WidthDist::Constant(4),
                    DurationDist::Weighted(vec![(300.0, 1.0), (900.0, 1.0)]),
                    0.05,
                ),
            ),
            accuracy: AccuracyModel::from_overestimation(2.0, 0.15),
            mean_interarrival_secs: 120.0,
            min_estimate_secs: 10.0,
            max_estimate_secs: 36_000.0,
        }
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let m = toy_model();
        let a = m.generate(500, 7);
        let b = m.generate(500, 7);
        assert_eq!(a.jobs(), b.jobs());
        let c = m.generate(500, 8);
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn generated_jobs_respect_invariants() {
        let m = toy_model();
        let set = m.generate(2_000, 3);
        assert_eq!(set.len(), 2_000);
        let mut last_submit = SimTime::ZERO;
        for j in set.jobs() {
            assert!(j.width >= 1 && j.width <= m.machine_size);
            assert!(j.actual <= j.estimate);
            assert!(j.actual.as_millis() >= 1);
            assert!(j.estimate.as_secs_f64() <= m.max_estimate_secs + 1e-6);
            assert!(j.estimate.as_secs_f64() >= m.min_estimate_secs - 1e-6);
            assert!(j.submit >= last_submit);
            last_submit = j.submit;
        }
    }

    #[test]
    fn mean_interarrival_is_pinned() {
        let m = toy_model();
        let set = m.generate(5_000, 11);
        let jobs = set.jobs();
        let span = jobs.last().unwrap().submit.as_secs_f64();
        // First gap included: total span / n ≈ target (rounding to ms
        // introduces sub-second noise only).
        let mean_gap = span / jobs.len() as f64;
        assert!(
            (mean_gap - 120.0).abs() < 1.0,
            "mean gap {mean_gap} should be ≈ 120"
        );
    }

    #[test]
    fn different_sets_differ_but_share_statistics() {
        let m = toy_model();
        let sets = m.generate_sets(4_000, 4, 99);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].name, "TOY/set0");
        assert_ne!(sets[0].jobs(), sets[1].jobs());
        // Heavy-tailed batch sessions make per-set loads noisy; the sets
        // should still agree to within a small constant factor.
        let loads: Vec<f64> = sets.iter().map(|s| s.offered_load()).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        for &l in &loads {
            assert!(
                l > mean * 0.4 && l < mean * 2.5,
                "offered loads should be same order: {loads:?}"
            );
        }
    }

    #[test]
    fn predicted_offered_load_close_to_measured() {
        let m = toy_model();
        let set = m.generate(20_000, 5);
        let predicted = m.predicted_offered_load();
        let measured = set.offered_load();
        assert!(
            (predicted - measured).abs() / predicted < 0.25,
            "predicted {predicted:.3} vs measured {measured:.3}"
        );
    }

    #[test]
    fn interarrival_for_load_inverts_offered_load() {
        let ia = TraceModel::interarrival_for_load(430, 10.72, 10_958.0, 0.76);
        // load = width×actual/(machine×ia)
        let load = 10.72 * 10_958.0 / (430.0 * ia);
        assert!((load - 0.76).abs() < 1e-12);
    }
}
