//! Regime-switching user-session model.
//!
//! The paper's introduction motivates dynP with *temporally non-uniform*
//! workloads: "some users primarily submit parallel and long running jobs,
//! whilst others submit hundreds of short and sequential jobs … Hundreds of
//! jobs for a parameter study might be submitted in one go via a script."
//! A stationary i.i.d. generator would erase exactly the structure that
//! policy switching exploits, so the synthetic generator is a Markov chain
//! over *regimes*: each regime describes one class of user activity
//! (interactive work, long batch jobs, scripted parameter studies) with its
//! own width, run-time and arrival-intensity distributions. The chain
//! stays in a regime for a geometrically distributed number of consecutive
//! jobs, producing sessions.

use crate::dist::{AccuracyModel, DurationDist, WidthDist};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One class of user activity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Regime {
    /// Descriptive name ("interactive", "batch", …).
    pub name: String,
    /// Relative probability of entering this regime at a switch point
    /// (unnormalized).
    pub weight: f64,
    /// Expected number of consecutive jobs drawn from this regime
    /// (geometric sojourn), ≥ 1.
    pub mean_session_jobs: f64,
    /// Width distribution of this regime's jobs.
    pub width: WidthDist,
    /// Estimated-run-time distribution (seconds).
    pub estimate: DurationDist,
    /// Multiplier on the global mean interarrival time while this regime
    /// is active (< 1 = burst, > 1 = sparse).
    pub arrival_scale: f64,
}

/// The Markov regime process: picks the regime for each successive job.
#[derive(Clone, Debug)]
pub struct RegimeChain<'a> {
    regimes: &'a [Regime],
    current: usize,
}

impl<'a> RegimeChain<'a> {
    /// Starts the chain in a regime sampled from the entry weights.
    ///
    /// # Panics
    /// Panics if `regimes` is empty or the total weight is not positive.
    pub fn start<R: Rng + ?Sized>(regimes: &'a [Regime], rng: &mut R) -> Self {
        assert!(!regimes.is_empty(), "at least one regime is required");
        let current = pick_weighted(regimes, rng);
        RegimeChain { regimes, current }
    }

    /// The regime the next job is drawn from.
    pub fn current(&self) -> &Regime {
        &self.regimes[self.current]
    }

    /// Advances the chain by one job: with probability
    /// `1 / mean_session_jobs` the session ends and a fresh regime is
    /// sampled from the entry weights (possibly the same one).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let stay = 1.0 - 1.0 / self.current().mean_session_jobs.max(1.0);
        if rng.gen::<f64>() >= stay {
            self.current = pick_weighted(self.regimes, rng);
        }
    }

    /// The stationary probability of each regime *per job*, i.e. entry
    /// weight × mean session length, normalized. Used by calibration code
    /// to predict aggregate workload statistics.
    pub fn stationary_job_fractions(regimes: &[Regime]) -> Vec<f64> {
        let raw: Vec<f64> = regimes
            .iter()
            .map(|r| r.weight * r.mean_session_jobs.max(1.0))
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    }
}

fn pick_weighted<R: Rng + ?Sized>(regimes: &[Regime], rng: &mut R) -> usize {
    let total: f64 = regimes.iter().map(|r| r.weight).sum();
    assert!(total > 0.0, "regime weights must sum to a positive value");
    let mut x = rng.gen::<f64>() * total;
    for (i, r) in regimes.iter().enumerate() {
        if x < r.weight {
            return i;
        }
        x -= r.weight;
    }
    regimes.len() - 1
}

/// Convenience constructor for the common three-regime session structure.
///
/// * `interactive` — short, narrow jobs arriving densely,
/// * `batch` — long, wide jobs arriving sparsely,
/// * `study` — scripted bursts of near-identical mid-size jobs.
///
/// Returns the regimes with the supplied distributions; trace models tune
/// weights and distributions per machine (see [`crate::traces`]).
pub fn three_regime(
    interactive: (f64, f64, WidthDist, DurationDist, f64),
    batch: (f64, f64, WidthDist, DurationDist, f64),
    study: (f64, f64, WidthDist, DurationDist, f64),
) -> Vec<Regime> {
    let mk =
        |name: &str,
         (weight, sess, width, est, scale): (f64, f64, WidthDist, DurationDist, f64)| {
            Regime {
                name: name.to_string(),
                weight,
                mean_session_jobs: sess,
                width,
                estimate: est,
                arrival_scale: scale,
            }
        };
    vec![
        mk("interactive", interactive),
        mk("batch", batch),
        mk("study", study),
    ]
}

/// Per-regime accuracy is usually shared; this helper binds one
/// [`AccuracyModel`] for the whole trace (the paper reports a single
/// overestimation factor per trace).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SharedAccuracy(pub AccuracyModel);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_regimes() -> Vec<Regime> {
        three_regime(
            (
                2.0,
                10.0,
                WidthDist::Constant(1),
                DurationDist::Constant(60.0),
                0.3,
            ),
            (
                1.0,
                5.0,
                WidthDist::Constant(32),
                DurationDist::Constant(36_000.0),
                2.0,
            ),
            (
                0.5,
                30.0,
                WidthDist::Constant(4),
                DurationDist::Constant(600.0),
                0.05,
            ),
        )
    }

    #[test]
    fn chain_produces_sessions_with_expected_lengths() {
        let regimes = toy_regimes();
        let mut rng = StdRng::seed_from_u64(7);
        let mut chain = RegimeChain::start(&regimes, &mut rng);
        // Walk 100k jobs, recording session lengths per regime.
        let mut lengths: Vec<Vec<u32>> = vec![Vec::new(); 3];
        let mut cur = chain.current().name.clone();
        let mut run = 0u32;
        for _ in 0..100_000 {
            chain.step(&mut rng);
            run += 1;
            if chain.current().name != cur {
                let idx = regimes.iter().position(|r| r.name == cur).unwrap();
                lengths[idx].push(run);
                run = 0;
                cur = chain.current().name.clone();
            }
        }
        // Observed mean session length should be near the configured
        // one. Note a session "ends" when the resampled regime differs,
        // so observed length ≈ mean_session_jobs / P(switch to another),
        // which is ≥ the configured mean; just check the ordering.
        let mean = |v: &Vec<u32>| v.iter().sum::<u32>() as f64 / v.len() as f64;
        let (mi, mb, ms) = (mean(&lengths[0]), mean(&lengths[1]), mean(&lengths[2]));
        assert!(
            ms > mi,
            "study sessions ({ms:.1}) should outlast interactive ({mi:.1})"
        );
        assert!(
            mi > mb,
            "interactive sessions ({mi:.1}) should outlast batch ({mb:.1})"
        );
    }

    #[test]
    fn stationary_fractions_weight_by_session_length() {
        let regimes = toy_regimes();
        let f = RegimeChain::stationary_job_fractions(&regimes);
        assert_eq!(f.len(), 3);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // weights×sojourn = 20, 5, 15 → fractions 0.5, 0.125, 0.375
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 0.125).abs() < 1e-12);
        assert!((f[2] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn chain_visits_all_regimes() {
        let regimes = toy_regimes();
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = RegimeChain::start(&regimes, &mut rng);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            let idx = regimes
                .iter()
                .position(|r| r.name == chain.current().name)
                .unwrap();
            seen[idx] = true;
            chain.step(&mut rng);
        }
        assert!(
            seen.iter().all(|&s| s),
            "all regimes should occur: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one regime")]
    fn empty_regime_list_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RegimeChain::start(&[], &mut rng);
    }
}
