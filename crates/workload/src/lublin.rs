//! A Lublin–Feitelson-style statistical workload model.
//!
//! Besides the trace-calibrated models of [`crate::traces`], the harness
//! ships the de-facto standard *parametric* model of the parallel
//! workload literature (Lublin & Feitelson, JPDC 2003), in a simplified
//! but faithful-in-structure form:
//!
//! * a fraction of jobs is serial; parallel widths are drawn log-uniform
//!   with strong emphasis on powers of two;
//! * actual run times follow a two-component lognormal mixture (the
//!   "hyper" distribution separating short and long jobs);
//! * user estimates multiply the actual run time by an overestimation
//!   factor ≥ 1 (exact for a fraction of jobs, log-uniform otherwise) —
//!   the shape Mu'alem & Feitelson measured on real traces;
//! * arrivals form a nonhomogeneous Poisson process with a sinusoidal
//!   **daily cycle** (the day/night pattern the dynP line of work's
//!   motivation builds on).
//!
//! The exact published parameter values target specific 1990s machines;
//! the defaults here are round numbers in the published ranges. All
//! parameters are public — calibrate at will.

use crate::job::{Job, JobId, JobSet};
use dynp_des::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Seconds per day, the period of the diurnal arrival cycle.
pub const DAY_SECS: f64 = 86_400.0;

/// The parametric workload model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LublinModel {
    /// Model name used for generated job sets.
    pub name: String,
    /// Processors on the machine.
    pub machine_size: u32,
    /// Fraction of serial (width 1) jobs.
    pub serial_fraction: f64,
    /// Probability that a parallel width snaps to a power of two.
    pub pow2_fraction: f64,
    /// Actual run time: lognormal of the SHORT component (median s, σ).
    pub short_runtime: (f64, f64),
    /// Actual run time: lognormal of the LONG component (median s, σ).
    pub long_runtime: (f64, f64),
    /// Probability a job belongs to the short component.
    pub p_short: f64,
    /// Run times are clamped to [1, this] seconds (queue limit).
    pub max_runtime_secs: f64,
    /// Fraction of jobs whose estimate equals the actual run time.
    pub exact_estimate_fraction: f64,
    /// Maximum overestimation factor (log-uniform in [1, this]).
    pub max_overestimation: f64,
    /// Mean interarrival time in seconds.
    pub mean_interarrival_secs: f64,
    /// Daily-cycle amplitude in [0, 1): 0 = homogeneous arrivals,
    /// 0.8 = strong day/night contrast.
    pub diurnal_amplitude: f64,
}

impl Default for LublinModel {
    fn default() -> Self {
        LublinModel {
            name: "LUBLIN".into(),
            machine_size: 128,
            serial_fraction: 0.25,
            pow2_fraction: 0.75,
            short_runtime: (120.0, 1.4),
            long_runtime: (5_400.0, 1.2),
            p_short: 0.45,
            max_runtime_secs: 129_600.0, // 36 h
            exact_estimate_fraction: 0.15,
            max_overestimation: 20.0,
            mean_interarrival_secs: 600.0,
            diurnal_amplitude: 0.6,
        }
    }
}

impl LublinModel {
    /// Arrival intensity multiplier at time `t` (mean 1 over a day):
    /// `1 + a·sin(2πt/day)` — peak mid-"day", trough mid-"night".
    pub fn intensity(&self, t_secs: f64) -> f64 {
        1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * t_secs / DAY_SECS).sin()
    }

    fn sample_width<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if rng.gen::<f64>() < self.serial_fraction {
            return 1;
        }
        // Log-uniform in [2, machine], optionally snapped to a power of
        // two (Lublin–Feitelson use a two-stage uniform in log space).
        let lo = 2f64.ln();
        let hi = (self.machine_size as f64 + 1.0).ln();
        let raw = (rng.gen::<f64>() * (hi - lo) + lo).exp();
        let mut w = raw.floor() as u32;
        if rng.gen::<f64>() < self.pow2_fraction {
            w = crate::dist::nearest_power_of_two(w);
        }
        w.clamp(2, self.machine_size)
    }

    fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (median, sigma) = if rng.gen::<f64>() < self.p_short {
            self.short_runtime
        } else {
            self.long_runtime
        };
        let d = LogNormal::new(median.ln(), sigma).expect("bad lognormal parameters");
        d.sample(rng).clamp(1.0, self.max_runtime_secs)
    }

    fn sample_overestimation<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.exact_estimate_fraction {
            1.0
        } else {
            // Log-uniform factor in [1, max] — most mass near small
            // factors, a tail of wild guesses.
            (rng.gen::<f64>() * self.max_overestimation.ln()).exp()
        }
    }

    /// Generates `n_jobs` jobs. Deterministic in `(model, n_jobs, seed)`.
    pub fn generate(&self, n_jobs: usize, seed: u64) -> JobSet {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4C55_424C_494E); // "LUBLIN"
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut t = 0.0f64;
        for i in 0..n_jobs {
            // Nonhomogeneous Poisson by intensity-scaled gaps: a gap with
            // operational mean 1 is stretched by the local intensity.
            let unit_gap = -(1.0 - rng.gen::<f64>()).ln();
            t += unit_gap * self.mean_interarrival_secs / self.intensity(t);

            let width = self.sample_width(&mut rng);
            let actual = self.sample_runtime(&mut rng);
            let estimate = (actual * self.sample_overestimation(&mut rng))
                .min(self.max_runtime_secs.max(actual));
            jobs.push(Job::new(
                JobId(i as u32),
                SimTime::from_secs_f64(t),
                width,
                SimDuration::from_secs_f64(estimate),
                SimDuration::from_secs_f64(actual),
            ));
        }
        JobSet::new(self.name.clone(), self.machine_size, jobs)
    }

    /// Generates `n_sets` independent sets named `"<name>/set<i>"`.
    pub fn generate_sets(&self, n_jobs: usize, n_sets: usize, base_seed: u64) -> Vec<JobSet> {
        (0..n_sets)
            .map(|i| {
                let seed = base_seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut set = self.generate(n_jobs, seed);
                set.name = format!("{}/set{i}", self.name);
                set
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let m = LublinModel::default();
        assert_eq!(m.generate(200, 1).jobs(), m.generate(200, 1).jobs());
        assert_ne!(m.generate(200, 1).jobs(), m.generate(200, 2).jobs());
    }

    #[test]
    fn serial_fraction_is_respected() {
        let m = LublinModel {
            serial_fraction: 0.4,
            ..LublinModel::default()
        };
        let set = m.generate(20_000, 3);
        let serial = set.jobs().iter().filter(|j| j.width == 1).count() as f64;
        let frac = serial / set.len() as f64;
        assert!((frac - 0.4).abs() < 0.02, "serial fraction {frac}");
    }

    #[test]
    fn widths_emphasize_powers_of_two() {
        let m = LublinModel {
            pow2_fraction: 1.0,
            serial_fraction: 0.0,
            ..LublinModel::default()
        };
        let set = m.generate(5_000, 4);
        for j in set.jobs() {
            assert!(
                j.width.is_power_of_two() || j.width == m.machine_size,
                "width {}",
                j.width
            );
        }
    }

    #[test]
    fn estimates_are_never_below_actuals() {
        let set = LublinModel::default().generate(5_000, 5);
        for j in set.jobs() {
            assert!(j.estimate >= j.actual);
        }
        // And a recognizable share is exact.
        let exact =
            set.jobs().iter().filter(|j| j.estimate == j.actual).count() as f64 / set.len() as f64;
        assert!(exact > 0.10, "exact-estimate share {exact}");
    }

    #[test]
    fn runtime_mixture_has_two_modes() {
        let set = LublinModel::default().generate(20_000, 6);
        let short = set
            .jobs()
            .iter()
            .filter(|j| j.actual.as_secs_f64() < 600.0)
            .count() as f64
            / set.len() as f64;
        // p_short 0.45 with short median 120 s: a large bucket below
        // 10 min AND a large bucket above it.
        assert!(short > 0.25 && short < 0.65, "short share {short}");
    }

    #[test]
    fn mean_interarrival_is_close_to_target() {
        let m = LublinModel::default();
        let set = m.generate(30_000, 7);
        let span = set.last_submit().saturating_since(set.first_submit());
        let mean = span.as_secs_f64() / (set.len() - 1) as f64;
        assert!(
            (mean - m.mean_interarrival_secs).abs() / m.mean_interarrival_secs < 0.05,
            "mean gap {mean}"
        );
    }

    #[test]
    fn diurnal_cycle_shows_up_in_arrival_counts() {
        let m = LublinModel {
            diurnal_amplitude: 0.8,
            mean_interarrival_secs: 60.0,
            ..LublinModel::default()
        };
        let set = m.generate(40_000, 8);
        // Count arrivals in the "day" half-period [0, 12h) vs the
        // "night" half [12h, 24h) of each cycle.
        let (mut day, mut night) = (0u64, 0u64);
        for j in set.jobs() {
            let phase = j.submit.as_secs_f64() % DAY_SECS;
            if phase < DAY_SECS / 2.0 {
                day += 1;
            } else {
                night += 1;
            }
        }
        let ratio = day as f64 / night as f64;
        assert!(ratio > 1.5, "day/night arrival ratio {ratio}");
    }

    #[test]
    fn homogeneous_when_amplitude_zero() {
        let m = LublinModel {
            diurnal_amplitude: 0.0,
            mean_interarrival_secs: 60.0,
            ..LublinModel::default()
        };
        assert_eq!(m.intensity(0.0), 1.0);
        assert_eq!(m.intensity(DAY_SECS / 4.0), 1.0);
        let set = m.generate(40_000, 9);
        let (mut day, mut night) = (0u64, 0u64);
        for j in set.jobs() {
            let phase = j.submit.as_secs_f64() % DAY_SECS;
            if phase < DAY_SECS / 2.0 {
                day += 1;
            } else {
                night += 1;
            }
        }
        let ratio = day as f64 / night as f64;
        assert!((ratio - 1.0).abs() < 0.1, "homogeneous ratio {ratio}");
    }

    #[test]
    fn sets_are_simulatable() {
        // Smoke: the model's output runs through the whole job-set API.
        let set = LublinModel {
            machine_size: 64,
            ..LublinModel::default()
        }
        .generate(300, 10);
        assert_eq!(set.len(), 300);
        assert!(set.offered_load() > 0.0);
        for j in set.jobs() {
            assert!(j.width >= 1 && j.width <= 64);
        }
    }
}
