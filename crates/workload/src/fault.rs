//! Deterministic fault-injection models.
//!
//! A planning-based RMS lives on an imperfect machine: nodes fail and
//! come back, jobs crash, runtime estimates are overrun. This module
//! produces the *offered* fault load for one simulation run — exactly as
//! [`crate::reservation::ReservationModel`] produces the offered booking
//! pressure — so that a chaos run stays fully reproducible:
//!
//! * [`NodeOutage`] — one node-loss interval `[down_at, up_at)`;
//! * [`FaultKind`] — a per-job failure (mid-run crash or walltime
//!   overrun) applied to the job's *first* execution attempt;
//! * [`RetryPolicy`] — bounded retries with exponential backoff on the
//!   resubmission instant; a job whose retry budget is exhausted ends in
//!   the typed `Lost` terminal state (tracked by the RMS state);
//! * [`FaultModel`] — the seeded generator: per-node alternating renewal
//!   processes (Weibull/exponential up-times, exponential repair times)
//!   plus independent per-job crash/overrun draws;
//! * [`FaultPlan`] — the generated, fully deterministic fault trace the
//!   simulation driver replays.
//!
//! What the faults *do* to the schedule — eviction, capacity shrinking,
//! schedule repair, reservation downgrades — is the RMS side's business
//! (`dynp-rms` / the `dynp-sim` driver); this module only decides *when*
//! and *where* lightning strikes.

use crate::job::JobSet;
use dynp_des::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One node-loss interval: the node is unavailable over `[down_at, up_at)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// Node index in `0..machine_size`.
    pub node: u32,
    /// Instant the node fails.
    pub down_at: SimTime,
    /// Instant the node returns to service (strictly after `down_at`).
    pub up_at: SimTime,
}

impl NodeOutage {
    /// Length of the outage.
    pub fn downtime(&self) -> SimDuration {
        self.up_at.saturating_since(self.down_at)
    }
}

/// A per-job failure, applied to the job's first execution attempt only
/// (retried attempts run clean — the model is of *transient* failures).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The job crashes after `fraction` (in `(0, 1)`) of its actual run
    /// time has elapsed.
    Crash {
        /// Elapsed fraction of the actual run time at the crash instant.
        fraction: f64,
    },
    /// The job overruns its runtime estimate and is walltime-killed at
    /// `start + estimate` (the planning RMS's hard limit).
    Overrun,
}

impl FaultKind {
    /// Trace/report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Overrun => "overrun",
        }
    }
}

/// Bounded-retry policy with exponential backoff: after the `n`-th failed
/// attempt (1-based) the job is resubmitted `backoff × factor^(n−1)`
/// later, until `max_retries` resubmissions have been spent; the next
/// failure makes the job `Lost`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of resubmissions after the initial attempt.
    pub max_retries: u32,
    /// Backoff delay after the first failure.
    pub backoff: SimDuration,
    /// Multiplier applied to the delay on every further failure.
    pub factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_secs(300),
            factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// True when a job that has failed `failures` times (1-based count of
    /// failed attempts) has exhausted its budget and becomes `Lost`.
    pub fn exhausted(&self, failures: u32) -> bool {
        failures > self.max_retries
    }

    /// Resubmission delay after the `failures`-th failure (1-based):
    /// `backoff × factor^(failures−1)`, exponential backoff.
    pub fn delay_after(&self, failures: u32) -> SimDuration {
        debug_assert!(failures >= 1);
        let scale = self.factor.powi(failures.saturating_sub(1).min(30) as i32);
        SimDuration::from_secs_f64(self.backoff.as_secs_f64() * scale)
    }
}

/// The deterministic fault trace one run replays: node outages in
/// chronological order plus the per-job first-attempt failures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node-loss intervals, sorted by `down_at` (ties by node).
    pub outages: Vec<NodeOutage>,
    /// `(dense job id, fault)` pairs, sorted by job id.
    pub job_faults: Vec<(u32, FaultKind)>,
    /// Retry policy applied to every failed attempt.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no outages, no job faults. A run driven by it is
    /// bit-identical to a fault-free run.
    pub fn none() -> Self {
        FaultPlan {
            outages: Vec::new(),
            job_faults: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.job_faults.is_empty()
    }

    /// The fault planned for a job's first attempt, if any.
    pub fn fault_of(&self, job: u32) -> Option<FaultKind> {
        self.job_faults
            .binary_search_by_key(&job, |(id, _)| *id)
            .ok()
            .map(|i| self.job_faults[i].1)
    }

    /// Largest number of simultaneously down nodes anywhere in the plan.
    pub fn max_concurrent_down(&self) -> u32 {
        let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(self.outages.len() * 2);
        for o in &self.outages {
            events.push((o.down_at, 1));
            events.push((o.up_at, -1));
        }
        // Up before down at equal instants: `[down_at, up_at)` intervals.
        events.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as u32
    }
}

/// Seeded fault-trace generator, calibrated against a job set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Mean (shape 1) or scale (shape ≠ 1) of the per-node up-time
    /// distribution in seconds; `<= 0` disables node outages.
    pub mtbf_secs: f64,
    /// Mean repair time in seconds (exponential).
    pub mttr_secs: f64,
    /// Weibull shape of the up-time distribution; `1.0` is exponential,
    /// `< 1` models infant-mortality-heavy failure processes.
    pub weibull_shape: f64,
    /// Probability a job crashes mid-run on its first attempt.
    pub crash_prob: f64,
    /// Probability a job overruns its estimate on its first attempt.
    pub overrun_prob: f64,
    /// Retry/backoff policy for failed attempts.
    pub retry: RetryPolicy,
}

impl FaultModel {
    /// A representative chaos mix: exponential node failures at the given
    /// MTBF/MTTR, the given crash probability, and half as many overruns.
    pub fn typical(mtbf_secs: f64, mttr_secs: f64, crash_prob: f64) -> Self {
        FaultModel {
            mtbf_secs,
            mttr_secs,
            weibull_shape: 1.0,
            crash_prob,
            overrun_prob: crash_prob / 2.0,
            retry: RetryPolicy::default(),
        }
    }

    /// True when the model can never inject a fault.
    pub fn is_disabled(&self) -> bool {
        self.mtbf_secs <= 0.0 && self.crash_prob <= 0.0 && self.overrun_prob <= 0.0
    }

    fn sample_uptime(&self, rng: &mut StdRng) -> f64 {
        // Inverse-transform Weibull: scale × (−ln(1−u))^(1/shape);
        // shape 1 degenerates to the exponential.
        let e = -(1.0 - rng.gen::<f64>()).ln();
        if (self.weibull_shape - 1.0).abs() < 1e-9 {
            self.mtbf_secs * e
        } else {
            self.mtbf_secs * e.powf(1.0 / self.weibull_shape)
        }
    }

    fn sample_repair(&self, rng: &mut StdRng) -> f64 {
        (-self.mttr_secs * (1.0 - rng.gen::<f64>()).ln()).max(1.0)
    }

    /// Generates the fault trace for `set`: per-node alternating renewal
    /// processes over the submission span (plus a drain tail), capped so
    /// that at most `machine_size − 1` nodes are ever down at once (the
    /// planner requires capacity ≥ 1), and independent per-job
    /// crash/overrun draws. Deterministic in `(model, set, seed)`.
    pub fn generate(&self, set: &JobSet, seed: u64) -> FaultPlan {
        if self.is_disabled() || set.is_empty() {
            return FaultPlan {
                retry: self.retry,
                ..FaultPlan::none()
            };
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E6F_6465_4C6F_7373); // "NodeLoss"
        let machine = set.machine_size;
        let t0 = set.first_submit().as_secs_f64();
        let span = set
            .last_submit()
            .saturating_since(set.first_submit())
            .as_secs_f64()
            .max(1.0);
        // Outages cover the drain phase after the last submission too.
        let horizon = t0 + span * 1.5 + self.mttr_secs.max(0.0);

        let mut outages: Vec<NodeOutage> = Vec::new();
        if self.mtbf_secs > 0.0 && machine > 1 {
            for node in 0..machine {
                let mut t = t0 + self.sample_uptime(&mut rng);
                while t < horizon {
                    let repair = self.sample_repair(&mut rng);
                    outages.push(NodeOutage {
                        node,
                        down_at: SimTime::from_secs_f64(t),
                        up_at: SimTime::from_secs_f64(t + repair),
                    });
                    t += repair + self.sample_uptime(&mut rng);
                }
            }
            outages.sort_by_key(|o| (o.down_at, o.node));
            // Capacity floor: drop outages that would take the last node;
            // the planner's profile requires at least one processor.
            let mut accepted: Vec<NodeOutage> = Vec::new();
            for o in outages {
                let active = accepted.iter().filter(|a| a.up_at > o.down_at).count() as u32;
                if active + 1 < machine {
                    accepted.push(o);
                }
            }
            outages = accepted;
        }

        let mut job_faults: Vec<(u32, FaultKind)> = Vec::new();
        for job in set.jobs() {
            let u = rng.gen::<f64>();
            if u < self.crash_prob {
                let fraction = 0.05 + 0.90 * rng.gen::<f64>();
                job_faults.push((job.id.0, FaultKind::Crash { fraction }));
            } else if u < self.crash_prob + self.overrun_prob {
                job_faults.push((job.id.0, FaultKind::Overrun));
            }
        }

        FaultPlan {
            outages,
            job_faults,
            retry: self.retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces;

    fn set() -> JobSet {
        traces::kth().generate(300, 13)
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let s = set();
        let m = FaultModel::typical(50_000.0, 3_600.0, 0.05);
        let a = m.generate(&s, 3);
        let b = m.generate(&s, 3);
        assert_eq!(a, b);
        let c = m.generate(&s, 4);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn disabled_model_gives_an_empty_plan() {
        let m = FaultModel::typical(0.0, 3_600.0, 0.0);
        assert!(m.is_disabled());
        let plan = m.generate(&set(), 1);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn outages_are_ordered_and_well_formed() {
        let s = set();
        let m = FaultModel::typical(20_000.0, 7_200.0, 0.0);
        let plan = m.generate(&s, 9);
        assert!(!plan.outages.is_empty());
        let mut last = SimTime::ZERO;
        for o in &plan.outages {
            assert!(o.node < s.machine_size);
            assert!(o.up_at > o.down_at, "empty outage {o:?}");
            assert!(o.down_at >= last, "outages out of order");
            last = o.down_at;
        }
    }

    #[test]
    fn concurrent_outages_never_take_the_whole_machine() {
        let s = set();
        // Brutally unreliable nodes: MTBF on the order of the repair time.
        let m = FaultModel::typical(4_000.0, 8_000.0, 0.0);
        let plan = m.generate(&s, 5);
        assert!(plan.max_concurrent_down() < s.machine_size);
        assert!(plan.max_concurrent_down() >= 1, "cap test needs pressure");
    }

    #[test]
    fn job_faults_are_sorted_and_probabilities_roughly_hold() {
        let s = set();
        let m = FaultModel::typical(0.0, 0.0, 0.2);
        let plan = m.generate(&s, 21);
        assert!(plan.outages.is_empty());
        let mut last = None;
        let mut crashes = 0usize;
        for &(id, kind) in &plan.job_faults {
            assert!(Some(id) > last, "job faults not strictly sorted");
            last = Some(id);
            if let FaultKind::Crash { fraction } = kind {
                assert!(fraction > 0.0 && fraction < 1.0);
                crashes += 1;
            }
        }
        // 20% crash + 10% overrun over 300 jobs: allow wide slack.
        let total = plan.job_faults.len();
        assert!(
            (30..=150).contains(&total),
            "implausible fault count {total}"
        );
        assert!(crashes >= total / 4);
        assert_eq!(plan.fault_of(u32::MAX), None);
        let &(first, kind) = plan.job_faults.first().unwrap();
        assert_eq!(plan.fault_of(first), Some(kind));
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let r = RetryPolicy::default();
        assert_eq!(r.delay_after(1), SimDuration::from_secs(300));
        assert_eq!(r.delay_after(2), SimDuration::from_secs(600));
        assert_eq!(r.delay_after(3), SimDuration::from_secs(1_200));
        assert!(!r.exhausted(3));
        assert!(r.exhausted(4));
    }
}
