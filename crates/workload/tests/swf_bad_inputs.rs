//! SWF parser robustness corpus: every fixture under `tests/fixtures/`
//! is a hostile or degenerate input, and the parser must answer each
//! with a typed [`SwfError`] (carrying the offending line number) or a
//! documented skip — never a panic, wrap, or silent mis-parse.

use dynp_workload::swf::{read_swf, read_swf_with_reservations, SwfError};
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn fixture(name: &str) -> BufReader<File> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    BufReader::new(File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display())))
}

/// Asserts the fixture fails with `Malformed` at the given 1-based line.
fn assert_malformed_at(name: &str, line: usize) {
    match read_swf(fixture(name), name, 128) {
        Err(SwfError::Malformed { line: l, reason }) => {
            assert_eq!(l, line, "{name}: wrong line in {reason:?}")
        }
        other => panic!("{name}: expected Malformed, got {other:?}"),
    }
}

#[test]
fn truncated_record_reports_its_line() {
    assert_malformed_at("truncated_record.swf", 2);
}

#[test]
fn non_numeric_field_reports_its_line() {
    assert_malformed_at("non_numeric_field.swf", 1);
}

#[test]
fn out_of_range_timestamps_are_rejected_not_wrapped() {
    // Values that would overflow the seconds → milliseconds scale.
    assert_malformed_at("huge_timestamp.swf", 2);
    assert_malformed_at("huge_estimate.swf", 1);
}

#[test]
fn reservation_directive_corpus_is_rejected_with_line_numbers() {
    for name in [
        "reservation_width_overflow.swf",
        "reservation_huge_time.swf",
        "reservation_too_few_fields.swf",
        "reservation_non_numeric.swf",
    ] {
        match read_swf_with_reservations(fixture(name), name, 128) {
            Err(SwfError::Malformed { line, .. }) => assert_eq!(line, 1, "{name}"),
            other => panic!("{name}: expected Malformed, got {other:?}"),
        }
        // The plain reader treats directives as comments: same file, no
        // reservations requested, no error.
        assert!(read_swf(fixture(name), name, 128).is_ok(), "{name}");
    }
}

#[test]
fn invalid_utf8_is_a_typed_io_error() {
    match read_swf(fixture("binary_garbage.swf"), "garbage", 128) {
        Err(SwfError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn well_formed_but_unusable_records_are_skipped_not_errors() {
    let set =
        read_swf(fixture("all_records_skipped.swf"), "skips", 128).expect("skips are not errors");
    assert_eq!(set.len(), 0);
}
