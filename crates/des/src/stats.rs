//! Online statistics for simulation output analysis.
//!
//! Simulations of 10,000-job workloads produce too many samples to keep
//! around; these accumulators summarize streams in O(1) space:
//!
//! * [`OnlineStats`] — count / mean / variance (Welford) / min / max,
//! * [`TimeWeighted`] — integral-based time average of a piecewise-constant
//!   signal (e.g. queue length, busy processors),
//! * [`Histogram`] — fixed-boundary histogram with quantile estimates.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance plus min/max (Welford's
/// algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance; 0 when fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// integrates `value × dt` between changes. Typical uses: mean queue
/// length, mean busy processors (hence utilization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Creates an accumulator whose signal is `initial` at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            integral: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics (debug) if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_time, "time went backwards");
        let dt = now.saturating_since(self.last_time).as_secs_f64();
        self.integral += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    /// Adds `delta` to the current signal value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    /// The signal value after the last update.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Integral of the signal from `start` to `now`.
    pub fn integral_until(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_time).as_secs_f64();
        self.integral + self.last_value * dt
    }

    /// Time average of the signal over `[start, now]`; 0 over an empty
    /// interval.
    pub fn average_until(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.integral_until(now) / span
        }
    }
}

/// Exact time-weighted accumulator for an integer-valued step signal.
///
/// The snapshotable twin of [`TimeWeighted`]: the integral is kept as an
/// exact `value × milliseconds` count in a `u128`, so the accumulator is
/// `Hash + Eq` and two runs that saw the same updates are bit-identical —
/// no floating-point summation-order drift. Floats only appear in the
/// final [`TimeWeightedCount::average_until`] division. Used for driver
/// signals that live on the snapshot path (queue length, busy processors).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWeightedCount {
    last_time: SimTime,
    last_value: u64,
    /// Exact integral: Σ value·dt in value-milliseconds.
    integral_vms: u128,
    start: SimTime,
}

impl TimeWeightedCount {
    /// Creates an accumulator whose signal is `initial` at time `start`.
    pub fn new(start: SimTime, initial: u64) -> Self {
        TimeWeightedCount {
            last_time: start,
            last_value: initial,
            integral_vms: 0,
            start,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics (debug) if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: u64) {
        debug_assert!(now >= self.last_time, "time went backwards");
        let dt_ms = now.saturating_since(self.last_time).as_millis();
        self.integral_vms += self.last_value as u128 * dt_ms as u128;
        self.last_time = now;
        self.last_value = value;
    }

    /// The signal value after the last update.
    pub fn current(&self) -> u64 {
        self.last_value
    }

    /// Exact integral of the signal from `start` to `now`, in
    /// value-milliseconds.
    pub fn integral_vms_until(&self, now: SimTime) -> u128 {
        let dt_ms = now.saturating_since(self.last_time).as_millis();
        self.integral_vms + self.last_value as u128 * dt_ms as u128
    }

    /// Time average of the signal over `[start, now]`; 0 over an empty
    /// interval. The single lossy step: one `u128 → f64` division.
    pub fn average_until(&self, now: SimTime) -> f64 {
        let span_ms = now.saturating_since(self.start).as_millis();
        if span_ms == 0 {
            0.0
        } else {
            self.integral_vms_until(now) as f64 / span_ms as f64
        }
    }

    /// Appends the accumulator's exact state to a checkpoint buffer. The
    /// fields are private by design (the integral must only grow through
    /// [`TimeWeightedCount::set`]), so the durable codec lives here.
    pub fn encode_into(&self, w: &mut crate::codec::ByteWriter) {
        w.u64(self.last_time.as_millis());
        w.u64(self.last_value);
        w.u128(self.integral_vms);
        w.u64(self.start.as_millis());
    }

    /// Decodes state written by [`TimeWeightedCount::encode_into`].
    pub fn decode_from(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        Ok(TimeWeightedCount {
            last_time: SimTime::from_millis(r.u64()?),
            last_value: r.u64()?,
            integral_vms: r.u128()?,
            start: SimTime::from_millis(r.u64()?),
        })
    }
}

/// Histogram over caller-supplied bucket boundaries with quantile queries.
///
/// An observation `x` lands in bucket `i` when
/// `bounds[i-1] <= x < bounds[i]`; values past the last bound land in the
/// overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram; `bounds` must be strictly increasing.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Creates log-spaced bounds: `base, base·ratio, base·ratio², …`
    /// (`n` bounds). Suited to heavy-tailed quantities like slowdowns.
    pub fn logarithmic(base: f64, ratio: f64, n: usize) -> Self {
        assert!(base > 0.0 && ratio > 1.0 && n > 0);
        let bounds = (0..n).map(|i| base * ratio.powi(i as i32)).collect();
        Histogram::new(bounds)
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b <= x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing quantile `q` (0 ≤ q ≤ 1); a
    /// coarse quantile estimate. `None` when empty or when the quantile
    /// falls in the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_mean_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn time_weighted_average_of_step_signal() {
        // Signal: 0 on [0,10), 4 on [10,20), 2 on [20,40).
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0);
        tw.set(SimTime::from_secs(20), 2.0);
        let avg = tw.average_until(SimTime::from_secs(40));
        // (0*10 + 4*10 + 2*20) / 40 = 80/40 = 2.0
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(5), 2.0); // now 3
        tw.add(SimTime::from_secs(10), -3.0); // now 0
        assert_eq!(tw.current(), 0.0);
        // (1*5 + 3*5 + 0*10)/20 = 20/20 = 1
        assert!((tw.average_until(SimTime::from_secs(20)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_count_matches_float_twin() {
        // Signal: 0 on [0,10), 4 on [10,20), 2 on [20,40).
        let mut tw = TimeWeightedCount::new(SimTime::ZERO, 0);
        tw.set(SimTime::from_secs(10), 4);
        tw.set(SimTime::from_secs(20), 2);
        assert_eq!(tw.current(), 2);
        assert_eq!(
            tw.integral_vms_until(SimTime::from_secs(40)),
            (4 * 10_000 + 2 * 20_000) as u128
        );
        assert!((tw.average_until(SimTime::from_secs(40)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.average_until(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_count_is_hashable_state() {
        let mut a = TimeWeightedCount::new(SimTime::from_secs(1), 3);
        let mut b = a.clone();
        assert_eq!(a, b);
        a.set(SimTime::from_secs(2), 5);
        assert_ne!(a, b);
        b.set(SimTime::from_secs(2), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 0.9, 1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::logarithmic(1.0, 2.0, 10);
        for i in 0..100 {
            h.push(i as f64);
        }
        // Median of 0..99 is ~49.5; the bucket bound just above it is 64.
        assert_eq!(h.quantile_bound(0.5), Some(64.0));
        assert_eq!(h.quantile_bound(0.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }
}
