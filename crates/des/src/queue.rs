//! Pending-event-set implementations.
//!
//! The event queue is the hot data structure of any discrete-event
//! simulator. Two backends are provided behind the [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap` of
//!   `(time, sequence, event)` triples. O(log n) push/pop, excellent
//!   constants, the default.
//! * [`CalendarQueue`] — R. Brown's calendar queue (CACM 1988): an array of
//!   day-buckets over a year of simulated time, giving amortized O(1)
//!   push/pop when event times are roughly uniform, with automatic resize
//!   when the population doubles/halves.
//!
//! Both deliver same-time events in strict insertion (FIFO) order; a
//! property test asserts the two backends produce identical sequences.

use crate::time::SimTime;

/// First sequence number handed to ordinary [`EventQueue::push`] calls.
/// Ranks below this are reserved for [`EventQueue::push_seeded`]: an
/// exogenous event stream (job arrivals, reservation requests, outages)
/// can be injected in chunks — e.g. one federation epoch at a time — and
/// still tie-break against handler-scheduled events exactly as if the
/// whole stream had been seeded up front.
pub const SEEDED_SEQ_LIMIT: u64 = 1 << 32;

/// A priority queue of timestamped events, delivering events in
/// nondecreasing time order and FIFO order among equal times.
pub trait EventQueue<E> {
    /// Inserts `event` to fire at `time`.
    fn push(&mut self, time: SimTime, event: E);
    /// Inserts `event` to fire at `time` with an explicit tie-break rank
    /// below every [`EventQueue::push`]-assigned one. Ranks must be
    /// unique per (time, rank) pair — the caller owns that invariant.
    ///
    /// # Panics
    /// Panics if `rank >= SEEDED_SEQ_LIMIT`.
    fn push_seeded(&mut self, time: SimTime, rank: u64, event: E);
    /// Removes and returns the earliest event, if any.
    fn pop(&mut self) -> Option<(SimTime, E)>;
    /// The timestamp of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary heap backend
// ---------------------------------------------------------------------------

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // surfaces first. seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Binary-heap pending event set with stable FIFO tie-breaking.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: SEEDED_SEQ_LIMIT,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: SEEDED_SEQ_LIMIT,
        }
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// The sequence number the next [`EventQueue::push`] would receive.
    /// Part of the queue's observable state: it decides FIFO ranks of
    /// *future* pushes, so snapshots must carry it.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// All pending entries as `(time, seq, event)`, sorted by
    /// `(time, seq)` — a canonical, order-independent view of the queue
    /// suitable for hashing and snapshotting.
    pub fn entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        out.sort_by_key(|(t, s, _)| (*t, *s));
        out
    }

    /// Rebuilds a queue from a canonical entry list plus the dynamic
    /// sequence counter — the inverse of [`BinaryHeapQueue::entries`].
    /// Entries keep their exact sequence numbers, so tie-breaking after
    /// a restore is bit-identical to the snapshotted run.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (SimTime, u64, E)>,
        next_seq: u64,
    ) -> Self {
        let heap = entries
            .into_iter()
            .map(|(time, seq, event)| HeapEntry { time, seq, event })
            .collect();
        BinaryHeapQueue { heap, next_seq }
    }

    /// The entries tied at the earliest pending instant, as
    /// `(seq, &event)` in FIFO (sequence) order. Index `n` of this list
    /// is the event [`BinaryHeapQueue::pop_nth_tied`]`(n)` would deliver.
    pub fn tied_head(&self) -> Vec<(u64, &E)> {
        let Some(t0) = self.peek_time() else {
            return Vec::new();
        };
        let mut tied: Vec<(u64, &E)> = self
            .heap
            .iter()
            .filter(|e| e.time == t0)
            .map(|e| (e.seq, &e.event))
            .collect();
        tied.sort_by_key(|(s, _)| *s);
        tied
    }

    /// Removes and returns the `n`-th (by FIFO rank) of the events tied
    /// at the earliest pending instant; the other tied events keep their
    /// original sequence numbers. `pop_nth_tied(0)` is exactly
    /// [`EventQueue::pop`]. Returns `None` when empty or when `n` is out
    /// of range — the queue is left untouched in that case.
    ///
    /// This is the model checker's branching primitive: exploring every
    /// `n` at a tied instant enumerates every delivery interleaving the
    /// FIFO rule forbids the plain simulator from seeing.
    pub fn pop_nth_tied(&mut self, n: usize) -> Option<(SimTime, E)> {
        let t0 = self.peek_time()?;
        let mut tied: Vec<HeapEntry<E>> = Vec::new();
        while self.heap.peek().is_some_and(|e| e.time == t0) {
            tied.push(self.heap.pop().expect("peek said non-empty"));
        }
        if n >= tied.len() {
            // Out of range: put everything back unchanged.
            for e in tied {
                self.heap.push(e);
            }
            return None;
        }
        // Heap pops drain ties in seq order, so index n is the n-th rank.
        let chosen = tied.swap_remove(n);
        for e in tied {
            self.heap.push(e);
        }
        Some((chosen.time, chosen.event))
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, event });
    }

    fn push_seeded(&mut self, time: SimTime, rank: u64, event: E) {
        assert!(
            rank < SEEDED_SEQ_LIMIT,
            "seeded rank {rank} collides with the dynamic sequence space"
        );
        self.heap.push(HeapEntry {
            time,
            seq: rank,
            event,
        });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue backend
// ---------------------------------------------------------------------------

struct CalEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// Calendar-queue pending event set (Brown 1988).
///
/// Events are hashed into buckets by `(time / bucket_width) % n_buckets`.
/// Dequeue scans from the bucket containing the current "year position"
/// forward, taking the earliest event whose time falls within the current
/// year; when the population grows past 2× or shrinks below ½× the bucket
/// count, the calendar is rebuilt with a new width estimated from a sample
/// of inter-event gaps.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<CalEntry<E>>>,
    /// Width of one bucket ("day length") in milliseconds.
    bucket_width: u64,
    /// Index of the bucket the last dequeue position falls in.
    last_bucket: usize,
    /// Start time (ms) of `last_bucket`'s current day.
    bucket_top: u64,
    /// Timestamp of the last popped event; dequeues never go backward.
    last_time: u64,
    len: usize,
    next_seq: u64,
    resize_enabled: bool,
}

const CAL_MIN_BUCKETS: usize = 4;

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar queue with default geometry.
    pub fn new() -> Self {
        Self::with_geometry(CAL_MIN_BUCKETS, 1_000)
    }

    /// Creates a calendar with `n_buckets` buckets of `bucket_width_ms`
    /// milliseconds each. Geometry adapts automatically afterwards.
    pub fn with_geometry(n_buckets: usize, bucket_width_ms: u64) -> Self {
        let n = n_buckets.max(CAL_MIN_BUCKETS).next_power_of_two();
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            bucket_width: bucket_width_ms.max(1),
            last_bucket: 0,
            bucket_top: bucket_width_ms.max(1),
            last_time: 0,
            len: 0,
            next_seq: SEEDED_SEQ_LIMIT,
            resize_enabled: true,
        }
    }

    fn bucket_index(&self, time_ms: u64) -> usize {
        ((time_ms / self.bucket_width) as usize) & (self.buckets.len() - 1)
    }

    fn insert_entry(&mut self, entry: CalEntry<E>) {
        let idx = self.bucket_index(entry.time.as_millis());
        let bucket = &mut self.buckets[idx];
        // Keep each bucket sorted by (time, seq) so dequeues take the head.
        let pos = bucket
            .binary_search_by(|probe| (probe.time, probe.seq).cmp(&(entry.time, entry.seq)))
            .unwrap_or_else(|p| p);
        bucket.insert(pos, entry);
        self.len += 1;
    }

    /// Estimates a new bucket width from the spread of pending events and
    /// rebuilds the calendar with `new_size` buckets.
    fn resize(&mut self, new_size: usize) {
        let new_size = new_size.max(CAL_MIN_BUCKETS).next_power_of_two();
        let mut entries: Vec<CalEntry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        entries.sort_by_key(|a| (a.time, a.seq));

        // Average gap between consecutive distinct event times, over a
        // sample from the front of the queue (Brown's heuristic).
        let sample = entries.len().min(64);
        let mut gaps = 0u64;
        let mut n_gaps = 0u64;
        for w in entries[..sample].windows(2) {
            let g = w[1].time.as_millis() - w[0].time.as_millis();
            if g > 0 {
                gaps += g;
                n_gaps += 1;
            }
        }
        let avg_gap = gaps.checked_div(n_gaps).unwrap_or(0);
        self.bucket_width = (avg_gap * 3).max(1);

        self.buckets = (0..new_size).map(|_| Vec::new()).collect();
        self.len = 0;
        // Reposition the dequeue cursor at the last popped time.
        self.last_bucket = self.bucket_index(self.last_time);
        self.bucket_top = (self.last_time / self.bucket_width + 1) * self.bucket_width;
        for e in entries {
            self.insert_entry(e);
        }
    }

    fn maybe_grow(&mut self) {
        if self.resize_enabled && self.len > 2 * self.buckets.len() {
            let target = self.buckets.len() * 2;
            self.resize_enabled = false;
            self.resize(target);
            self.resize_enabled = true;
        }
    }

    fn maybe_shrink(&mut self) {
        if self.resize_enabled
            && self.buckets.len() > CAL_MIN_BUCKETS
            && self.len < self.buckets.len() / 2
        {
            let target = self.buckets.len() / 2;
            self.resize_enabled = false;
            self.resize(target);
            self.resize_enabled = true;
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_entry(CalEntry { time, seq, event });
        self.maybe_grow();
    }

    fn push_seeded(&mut self, time: SimTime, rank: u64, event: E) {
        assert!(
            rank < SEEDED_SEQ_LIMIT,
            "seeded rank {rank} collides with the dynamic sequence space"
        );
        self.insert_entry(CalEntry {
            time,
            seq: rank,
            event,
        });
        self.maybe_grow();
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        loop {
            // Scan one "year": starting at the cursor bucket, take the
            // first event that belongs to the current day of each bucket.
            let mut i = self.last_bucket;
            let mut top = self.bucket_top;
            for _ in 0..n {
                if let Some(head) = self.buckets[i].first() {
                    if head.time.as_millis() < top {
                        let entry = self.buckets[i].remove(0);
                        self.len -= 1;
                        self.last_bucket = i;
                        self.bucket_top = top;
                        self.last_time = entry.time.as_millis();
                        self.maybe_shrink();
                        return Some((entry.time, entry.event));
                    }
                }
                i = (i + 1) & (n - 1);
                top += self.bucket_width;
            }
            // Nothing due this year: jump directly to the globally
            // earliest event (standard calendar-queue fallback).
            let mut best: Option<(u64, u64, usize)> = None;
            for (bi, b) in self.buckets.iter().enumerate() {
                if let Some(head) = b.first() {
                    let key = (head.time.as_millis(), head.seq, bi);
                    if best.is_none_or(|b0| (key.0, key.1) < (b0.0, b0.1)) {
                        best = Some(key);
                    }
                }
            }
            let (t, _, bi) = best.expect("len > 0 but no event found");
            self.last_bucket = bi;
            self.bucket_top = (t / self.bucket_width + 1) * self.bucket_width;
            let _ = self.last_bucket; // cursor repositioned; loop re-scans
                                      // Re-run the scan; it will now find the event in bucket `bi`.
            continue;
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .filter_map(|b| b.first().map(|e| (e.time, e.seq)))
            .min()
            .map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            out.push((t.as_millis(), e));
        }
        out
    }

    #[test]
    fn binary_heap_orders_by_time() {
        let mut q = BinaryHeapQueue::new();
        q.push(SimTime::from_millis(30), 3u32);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn binary_heap_is_fifo_on_ties() {
        let mut q = BinaryHeapQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_millis(7), i);
        }
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_queue_orders_by_time() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(5_000), 2u32);
        q.push(SimTime::from_millis(100), 1);
        q.push(SimTime::from_millis(1_000_000), 3);
        assert_eq!(drain(&mut q), vec![(100, 1), (5_000, 2), (1_000_000, 3)]);
    }

    #[test]
    fn calendar_queue_is_fifo_on_ties() {
        let mut q = CalendarQueue::new();
        for i in 0..50u32 {
            q.push(SimTime::from_millis(42), i);
        }
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_ranks_win_equal_time_ties() {
        // A seeded event injected *after* dynamic pushes still drains
        // first at its instant — exactly as if it had been seeded before
        // the simulation started.
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new();
        for q in [&mut heap as &mut dyn EventQueue<u32>, &mut cal] {
            q.push(SimTime::from_millis(5), 10u32);
            q.push(SimTime::from_millis(5), 11);
            q.push_seeded(SimTime::from_millis(5), 1, 1);
            q.push_seeded(SimTime::from_millis(5), 0, 0);
            let mut order = Vec::new();
            while let Some((_, e)) = q.pop() {
                order.push(e);
            }
            assert_eq!(order, vec![0, 1, 10, 11]);
        }
    }

    #[test]
    #[should_panic(expected = "collides with the dynamic sequence space")]
    fn seeded_rank_must_stay_below_limit() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        q.push_seeded(SimTime::ZERO, SEEDED_SEQ_LIMIT, 0);
    }

    #[test]
    fn calendar_queue_survives_resize_cycles() {
        let mut q = CalendarQueue::with_geometry(4, 10);
        for i in 0..500u32 {
            q.push(SimTime::from_millis((i as u64 * 37) % 10_000), i);
        }
        assert_eq!(q.len(), 500);
        let out = drain(&mut q);
        assert_eq!(out.len(), 500);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn interleaved_push_pop_never_goes_backward() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(10), 0u32);
        q.push(SimTime::from_millis(20), 1);
        let (t0, _) = q.pop().unwrap();
        q.push(SimTime::from_millis(15), 2);
        let (t1, e1) = q.pop().unwrap();
        assert!(t1 >= t0);
        assert_eq!(e1, 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(9), 1u32);
        q.push(SimTime::from_millis(3), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    fn empty_queues_return_none() {
        let mut b: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        let mut c: CalendarQueue<u32> = CalendarQueue::new();
        assert!(b.pop().is_none());
        assert!(c.pop().is_none());
        assert!(b.is_empty() && c.is_empty());
        assert_eq!(b.peek_time(), None);
        assert_eq!(c.peek_time(), None);
    }

    proptest! {
        /// The calendar queue must produce the exact same event sequence as
        /// the binary heap (including FIFO among equal times) for any mix
        /// of pushes and pops.
        #[test]
        fn backends_are_equivalent(ops in proptest::collection::vec(
            prop_oneof![
                (0u64..100_000).prop_map(Some), // push at time t
                Just(None),                     // pop
            ],
            1..200,
        )) {
            let mut heap = BinaryHeapQueue::new();
            let mut cal = CalendarQueue::with_geometry(4, 50);
            // Dequeues must be monotone: track the floor for pushes so the
            // op sequence itself stays causal (a real simulator never
            // schedules in the past).
            let mut floor = 0u64;
            let mut id = 0u32;
            for op in ops {
                match op {
                    Some(t) => {
                        let t = floor + t;
                        heap.push(SimTime::from_millis(t), id);
                        cal.push(SimTime::from_millis(t), id);
                        id += 1;
                    }
                    None => {
                        let a = heap.pop();
                        let b = cal.pop();
                        prop_assert_eq!(a.map(|(t, e)| (t.as_millis(), e)),
                                        b.map(|(t, e)| (t.as_millis(), e)));
                        if let Some((t, _)) = a {
                            floor = t.as_millis();
                        }
                    }
                }
                prop_assert_eq!(heap.len(), cal.len());
            }
            // Drain both and compare the tails.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                prop_assert_eq!(a.map(|(t, e)| (t.as_millis(), e)),
                                b.map(|(t, e)| (t.as_millis(), e)));
                if a.is_none() { break; }
            }
        }
    }
}
