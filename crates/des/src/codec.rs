//! Hand-rolled binary codec primitives: fixed-width little-endian
//! writers/readers plus a CRC-32 checksum.
//!
//! The crash-safe service mode (journal segments, checkpoints, snapshot
//! files) needs an explicit, versioned on-disk format. The vendored serde
//! derives are no-ops by design, so every durable format in the workspace
//! is written by hand against these two types. The rules:
//!
//! * every integer is little-endian and fixed-width — no varints, so a
//!   record's length is a pure function of its type and the reader can
//!   detect truncation exactly;
//! * strings and byte blobs are length-prefixed (`u32`);
//! * a [`ByteReader`] never panics on malformed input — every decode
//!   error is the typed [`CodecError`], because journal readers must
//!   survive torn tails and bit flips gracefully.
//!
//! [`crc32`] is the IEEE 802.3 polynomial (the zlib/PNG one), computed
//! over raw bytes with a lazily built 256-entry table. It is a
//! corruption *detector*, not a cryptographic MAC — the threat model is
//! torn writes and bit rot, not an adversary.

use std::fmt;

/// A decode failure: the input is shorter than the format requires, or a
/// field holds a value the format forbids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-field: `needed` more bytes were
    /// required at `offset`.
    Truncated {
        /// Byte offset the failed read started at.
        offset: usize,
        /// Bytes the field still required.
        needed: usize,
    },
    /// A field held a value outside its domain (unknown enum tag,
    /// non-UTF-8 string, length overflowing the input).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, needed } => {
                write!(
                    f,
                    "truncated input: {needed} more bytes needed at offset {offset}"
                )
            }
            CodecError::Invalid { what } => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends fixed-width little-endian values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The buffer written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a `usize` as a `u64` (the formats are 64-bit regardless of
    /// host width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes raw bytes with no length prefix (magics, pre-framed
    /// payloads).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Reads fixed-width little-endian values off a byte slice, returning
/// typed errors instead of panicking on malformed input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is invalid.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what: "bool" }),
        }
    }

    /// Reads a `u64` into a `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid { what: "usize" })
    }

    /// Reads a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Invalid {
            what: "utf-8 string",
        })
    }

    /// Reads exactly `n` raw bytes (magics, pre-framed payloads).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) of `data` —
/// the zlib/PNG checksum. Table-driven, built once per process.
pub fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 7);
        w.u128(u128::MAX / 3);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        w.usize(123_456);
        w.str("dynP — self-tuning");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.str().unwrap(), "dynP — self-tuning");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        match r.u64() {
            Err(CodecError::Truncated {
                offset: 0,
                needed: 3,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        // A length prefix pointing past the end is truncation too.
        let mut w = ByteWriter::new();
        w.u32(1000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn invalid_values_are_typed() {
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.bool(), Err(CodecError::Invalid { what: "bool" }));
        let mut w = ByteWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.str(),
            Err(CodecError::Invalid {
                what: "utf-8 string"
            })
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"journal record payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
