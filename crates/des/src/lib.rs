//! # dynp-des — deterministic discrete-event simulation kernel
//!
//! This crate is the simulation substrate for the dynP reproduction. The
//! paper evaluates the self-tuning dynP scheduler "with means of a discrete
//! event simulation environment"; this crate provides that environment:
//!
//! * [`SimTime`] / [`SimDuration`] — integer millisecond simulation time
//!   with exact, total ordering (no floating-point drift in event order),
//! * [`queue::EventQueue`] — the pending-event-set abstraction with two
//!   backends: a binary heap ([`queue::BinaryHeapQueue`]) and a classic
//!   dynamically-resizing calendar queue ([`queue::CalendarQueue`]),
//! * [`Engine`] — the event loop: schedule events, pop them in
//!   (time, insertion-order) order, advance the clock monotonically,
//! * [`stats`] — online statistics (Welford mean/variance, min/max,
//!   time-weighted averages, logarithmic histograms) used to summarize
//!   simulation output without storing every sample.
//!
//! Determinism is a design requirement: two events scheduled for the same
//! time are always delivered in insertion (FIFO) order, regardless of the
//! queue backend, so simulation results are exactly reproducible.
//!
//! ```
//! use dynp_des::{Engine, SimTime, SimDuration};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_at(SimTime::from_secs(5), "world");
//! engine.schedule_at(SimTime::from_secs(1), "hello");
//! let mut seen = Vec::new();
//! engine.run(|eng, ev| {
//!     seen.push((eng.now(), ev));
//! });
//! assert_eq!(seen[0], (SimTime::from_secs(1), "hello"));
//! assert_eq!(seen[1], (SimTime::from_secs(5), "world"));
//! ```

pub mod clock;
pub mod codec;
pub mod engine;
pub mod queue;
pub mod stats;
pub mod time;

pub use clock::{EventClock, ReplaySource, Tick, WallClockSource};
pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use engine::{Engine, EngineSnapshot};
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue, SEEDED_SEQ_LIMIT};
pub use stats::{Histogram, OnlineStats, TimeWeighted, TimeWeightedCount};
pub use time::{SimDuration, SimTime};
