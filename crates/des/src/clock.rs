//! Clock abstraction: the same event-loop body driven by either the
//! virtual DES clock or the wall clock.
//!
//! The simulation driver ([`dynp-sim`'s shard core]) never cared *where*
//! events come from — it only reads the current time, handles the event,
//! and schedules follow-ups. [`EventClock`] captures exactly that contract,
//! and two sources implement it:
//!
//! * [`Engine`] — the existing discrete-event queue: time jumps directly
//!   to the next pending event (batch simulation, replay);
//! * [`WallClockSource`] — a live source: timer events fire when the wall
//!   clock reaches their instant, and *external* items (service
//!   submissions, control commands) are injected over a channel and
//!   stamped with the wall time at which they are dequeued.
//!
//! This is the digital-twin split: a daemon runs the driver on a
//! [`WallClockSource`]; replaying the daemon's recorded submissions on an
//! [`Engine`] reproduces the exact same schedule, because both sources
//! present the same `(time, event)` sequence to the same handler.
//!
//! ## Stamp discipline (the replay guarantee)
//!
//! The DES driver seeds exogenous arrivals *before* any dynamic event
//! exists, so at equal instants an arrival dispatches before a completion.
//! The wall source reproduces that order by construction: after a timer
//! event at `t` is dispatched, every later external item is stamped at
//! least `t + 1 ms`. An external item therefore never ties with an
//! already-dispatched timer, and sorting the recorded stamps (the replay)
//! yields exactly the live dispatch order.

use crate::engine::{Engine, EngineSnapshot};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

/// The clock-and-scheduling contract the event-loop body runs against.
///
/// Implemented by the virtual-clock [`Engine`] and the live
/// [`WallClockSource`]; handlers written against this trait run unchanged
/// in batch simulation, replay, and daemon mode.
pub trait EventClock<E> {
    /// The current time (of the event being handled).
    fn now(&self) -> SimTime;

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — a scheduling bug, not a runtime
    /// condition.
    fn schedule_at(&mut self, time: SimTime, event: E);

    /// Number of events dispatched so far.
    fn processed(&self) -> u64;

    /// Number of timer events still pending.
    fn pending(&self) -> usize;
}

impl<E, Q: EventQueue<E>> EventClock<E> for Engine<E, Q> {
    fn now(&self) -> SimTime {
        Engine::now(self)
    }

    fn schedule_at(&mut self, time: SimTime, event: E) {
        Engine::schedule_at(self, time, event)
    }

    fn processed(&self) -> u64 {
        Engine::processed(self)
    }

    fn pending(&self) -> usize {
        Engine::pending(self)
    }
}

/// One dispatch from a [`WallClockSource`]: either an internal timer
/// event (scheduled earlier via [`EventClock::schedule_at`]) or an
/// external item injected over the channel. The dispatch time is read
/// from the source's [`EventClock::now`].
#[derive(Debug, PartialEq, Eq)]
pub enum Tick<E, X> {
    /// A scheduled event whose instant the wall clock reached.
    Timer(E),
    /// An injected item, stamped at dequeue.
    External(X),
}

/// A live event source: timers fire at wall-clock instants, external
/// items arrive over an [`std::sync::mpsc`] channel.
///
/// Simulation time is wall time since construction, scaled by `speedup`
/// (sim milliseconds per wall millisecond) — `speedup > 1` runs
/// second-scale workloads in millisecond wall time, which keeps live
/// tests and smoke runs fast without changing any schedule arithmetic.
///
/// When every sender is dropped — or [`WallClockSource::begin_drain`] is
/// called — the source stops sleeping and fast-forwards through the
/// remaining timers in instant order, exactly like a DES engine running
/// dry. Stamps stay monotone throughout, so a drained run is still a
/// valid (replayable) event sequence.
pub struct WallClockSource<E, X> {
    timers: BinaryHeapQueue<E>,
    rx: Receiver<X>,
    epoch: Instant,
    /// Simulation instant the epoch corresponds to — zero for a fresh
    /// source, the recovered clock for a resumed one.
    base: SimTime,
    speedup: u64,
    now: SimTime,
    /// Earliest stamp the next external item may carry; bumped past every
    /// dispatched timer so externals never tie with a dispatched timer.
    min_external: SimTime,
    processed: u64,
    draining: bool,
}

impl<E, X> WallClockSource<E, X> {
    /// Creates a live source over `rx` with the given time scale
    /// (`speedup` sim milliseconds per wall millisecond; 0 is treated
    /// as 1).
    pub fn new(rx: Receiver<X>, speedup: u64) -> Self {
        WallClockSource {
            timers: BinaryHeapQueue::new(),
            rx,
            epoch: Instant::now(),
            base: SimTime::ZERO,
            speedup: speedup.max(1),
            now: SimTime::ZERO,
            min_external: SimTime::ZERO,
            processed: 0,
            draining: false,
        }
    }

    /// Resumes a live source from recovered state: the pending timers,
    /// clock, dynamic tie-break counter (`snap.next_seq` — it decides
    /// future equal-instant ordering, so it must survive a restart) and
    /// the external stamp floor. The wall clock is re-anchored so that
    /// "now" on the wall equals `snap.now` in simulation time; timers in
    /// the recovered future fire at their original instants.
    pub fn resume(
        rx: Receiver<X>,
        speedup: u64,
        snap: &EngineSnapshot<E>,
        min_external: SimTime,
    ) -> Self
    where
        E: Clone,
    {
        WallClockSource {
            timers: BinaryHeapQueue::from_entries(snap.entries.iter().cloned(), snap.next_seq),
            rx,
            epoch: Instant::now(),
            base: snap.now,
            speedup: speedup.max(1),
            now: snap.now,
            min_external: min_external.max(snap.now),
            processed: snap.processed,
            draining: false,
        }
    }

    /// Captures the timer queue and clock as an [`EngineSnapshot`] — the
    /// checkpointable half of the source (the channel and wall anchor are
    /// reconstructed by [`WallClockSource::resume`]).
    pub fn engine_snapshot(&self) -> EngineSnapshot<E>
    where
        E: Clone,
    {
        EngineSnapshot {
            now: self.now,
            processed: self.processed,
            next_seq: self.timers.next_seq(),
            entries: self.timers.entries(),
        }
    }

    /// The earliest stamp the next external item may carry (see the stamp
    /// discipline above). Checkpoints persist it so a resumed source
    /// stamps externals exactly as the uninterrupted one would.
    pub fn min_external(&self) -> SimTime {
        self.min_external
    }

    /// The wall clock mapped into simulation time.
    fn wall_now(&self) -> SimTime {
        self.base.saturating_add(SimDuration::from_millis(
            self.epoch.elapsed().as_millis() as u64 * self.speedup,
        ))
    }

    /// Wall-clock wait until simulation instant `t`, `None` when `t` is
    /// already due.
    fn wait_for(&self, t: SimTime) -> Option<Duration> {
        let target =
            Duration::from_millis(t.saturating_since(self.base).as_millis() / self.speedup);
        target
            .checked_sub(self.epoch.elapsed())
            .filter(|d| !d.is_zero())
    }

    /// Stops waiting on the wall clock: remaining timers dispatch
    /// immediately in instant order and the channel is no longer polled.
    /// Used for graceful shutdown — in-flight events drain at full speed.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// True once the source is in drain mode.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Drains any externals still sitting in the channel (used after
    /// [`WallClockSource::begin_drain`] so late clients get an answer
    /// instead of a hang).
    pub fn drain_externals(&mut self) -> Vec<X> {
        let mut out = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(x) => out.push(x),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return out,
            }
        }
    }

    fn dispatch_timer(&mut self) -> Option<Tick<E, X>> {
        let (t, e) = self.timers.pop()?;
        self.now = self.now.max(t);
        self.min_external = self
            .min_external
            .max(t.saturating_add(SimDuration::from_millis(1)));
        self.processed += 1;
        Some(Tick::Timer(e))
    }

    fn dispatch_external(&mut self, x: X) -> Tick<E, X> {
        // Cap the stamp at the earliest pending timer: the channel wait
        // can race just past a timer's deadline, and an external stamped
        // *beyond* a not-yet-dispatched timer would force that timer to
        // fire late (handlers assert exact instants — a completion fires
        // at precisely its scheduled end). Capping is replay-exact: at
        // equal instants the DES replay dispatches seeded arrivals before
        // dynamic timers, which is precisely the live order here. The cap
        // never undercuts `min_external` — while the source is waiting on
        // the channel, every *dispatched* timer lies strictly before the
        // earliest pending one.
        let cap = self.timers.peek_time().unwrap_or(SimTime::MAX);
        self.now = self
            .wall_now()
            .min(cap)
            .max(self.min_external)
            .max(self.now);
        self.processed += 1;
        Tick::External(x)
    }

    /// Blocks until the next dispatch: the earliest pending timer once
    /// the wall clock reaches it, or an external item, whichever comes
    /// first. Returns `None` when the source has run dry (drain mode or
    /// all senders dropped, and no timers pending).
    pub fn next_tick(&mut self) -> Option<Tick<E, X>> {
        loop {
            if self.draining {
                return self.dispatch_timer();
            }
            match self.timers.peek_time() {
                Some(t) => match self.wait_for(t) {
                    // The timer is due; externals still in the channel are
                    // stamped later anyway, so timer-first is the live
                    // order AND the replay order.
                    None => return self.dispatch_timer(),
                    Some(wait) => match self.rx.recv_timeout(wait) {
                        Ok(x) => return Some(self.dispatch_external(x)),
                        Err(RecvTimeoutError::Timeout) => return self.dispatch_timer(),
                        Err(RecvTimeoutError::Disconnected) => self.draining = true,
                    },
                },
                None => match self.rx.recv() {
                    Ok(x) => return Some(self.dispatch_external(x)),
                    Err(_) => return None,
                },
            }
        }
    }
}

impl<E, X> EventClock<E> for WallClockSource<E, X> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        self.timers.push(time, event);
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn pending(&self) -> usize {
        self.timers.len()
    }
}

/// A virtual replay of a wall-clock session: pending timers plus a
/// journal of externally recorded `(stamp, item)` dispatches.
///
/// Recovery replays a journal suffix through the same driver loop the
/// live daemon ran, and must reproduce the live dispatch order exactly.
/// The live order is: a pending timer at `t` fires before any external
/// stamped after `t`, and an external stamped *at* `t` (the cap — see
/// [`WallClockSource`]) fired before that timer. So the replay loop is:
/// dispatch every pending timer strictly before the next journal stamp
/// ([`ReplaySource::pop_timer_before`]), then the external itself
/// ([`ReplaySource::note_external`]). Timers equal to the stamp stay
/// pending until after the external, which is precisely the live order.
///
/// After the journal runs dry the source either drains (pop with
/// `limit = None`) or converts back into a live
/// [`WallClockSource::resume`] via [`ReplaySource::into_snapshot`].
pub struct ReplaySource<E> {
    timers: BinaryHeapQueue<E>,
    now: SimTime,
    min_external: SimTime,
    processed: u64,
}

impl<E: Clone> ReplaySource<E> {
    /// A replay source over recovered timers and clock. `min_external`
    /// restores the stamp floor the checkpointed live source carried.
    pub fn from_snapshot(snap: &EngineSnapshot<E>, min_external: SimTime) -> Self {
        ReplaySource {
            timers: BinaryHeapQueue::from_entries(snap.entries.iter().cloned(), snap.next_seq),
            now: snap.now,
            min_external,
            processed: snap.processed,
        }
    }

    /// An empty replay source starting at time zero — the from-genesis
    /// replay of a complete journal.
    pub fn fresh() -> Self {
        ReplaySource {
            timers: BinaryHeapQueue::new(),
            now: SimTime::ZERO,
            min_external: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Pops the earliest pending timer if its instant lies strictly
    /// before `limit` (or unconditionally when `limit` is `None` — the
    /// drain phase after the journal's last record), advancing the clock
    /// and the external stamp floor exactly as the live source did.
    pub fn pop_timer_before(&mut self, limit: Option<SimTime>) -> Option<E> {
        let t = self.timers.peek_time()?;
        if let Some(limit) = limit {
            if t >= limit {
                return None;
            }
        }
        let (t, e) = self.timers.pop().expect("peek said non-empty");
        self.now = self.now.max(t);
        self.min_external = self
            .min_external
            .max(t.saturating_add(SimDuration::from_millis(1)));
        self.processed += 1;
        Some(e)
    }

    /// Advances the clock to a journaled external's recorded stamp and
    /// counts the dispatch. The caller then applies the external's effect
    /// (submit, cancel) against this source.
    pub fn note_external(&mut self, stamp: SimTime) {
        debug_assert!(stamp >= self.now, "journal stamps must be monotone");
        self.now = self.now.max(stamp);
        self.processed += 1;
    }

    /// Converts the replayed state back into the checkpointable form —
    /// the input to [`WallClockSource::resume`] when the daemon goes live
    /// again after recovery. Returns the engine half and the external
    /// stamp floor.
    pub fn into_snapshot(self) -> (EngineSnapshot<E>, SimTime) {
        (
            EngineSnapshot {
                now: self.now,
                processed: self.processed,
                next_seq: self.timers.next_seq(),
                entries: self.timers.entries(),
            },
            self.min_external,
        )
    }
}

impl<E: Clone> EventClock<E> for ReplaySource<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        self.timers.push(time, event);
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn pending(&self) -> usize {
        self.timers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn engine_satisfies_the_clock_contract() {
        fn drive<C: EventClock<u32>>(clk: &mut C) {
            clk.schedule_at(SimTime::from_secs(1), 7);
            assert_eq!(clk.pending(), 1);
        }
        let mut eng: Engine<u32> = Engine::new();
        drive(&mut eng);
        let (t, e) = eng.step().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(1), 7));
    }

    #[test]
    fn timers_fire_in_instant_order_under_speedup() {
        let (_tx, rx) = mpsc::channel::<()>();
        let mut src: WallClockSource<u32, ()> = WallClockSource::new(rx, 1000);
        // Sim seconds 2, 1, 3 → wall milliseconds; fires in 1, 2, 3 order.
        src.schedule_at(SimTime::from_secs(2), 2);
        src.schedule_at(SimTime::from_secs(1), 1);
        src.schedule_at(SimTime::from_secs(3), 3);
        let mut order = Vec::new();
        for _ in 0..3 {
            match src.next_tick().unwrap() {
                Tick::Timer(v) => {
                    assert!(src.now() >= SimTime::from_secs(v as u64));
                    order.push(v);
                }
                Tick::External(_) => panic!("no externals sent"),
            }
        }
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(src.processed(), 3);
    }

    #[test]
    fn externals_are_stamped_after_dispatched_timers() {
        let (tx, rx) = mpsc::channel::<&'static str>();
        let mut src: WallClockSource<u32, &'static str> = WallClockSource::new(rx, 1000);
        src.schedule_at(SimTime::from_millis(1), 9);
        assert!(matches!(src.next_tick(), Some(Tick::Timer(9))));
        let t_timer = src.now();
        tx.send("hello").unwrap();
        match src.next_tick().unwrap() {
            Tick::External(x) => {
                assert_eq!(x, "hello");
                // Strictly after the dispatched timer: never a tie.
                assert!(src.now() > t_timer);
            }
            Tick::Timer(_) => panic!("no timer pending"),
        }
    }

    #[test]
    fn external_interrupts_a_far_timer() {
        let (tx, rx) = mpsc::channel::<u8>();
        let mut src: WallClockSource<u32, u8> = WallClockSource::new(rx, 1);
        // 1000 sim seconds = 1000 wall seconds away at speedup 1.
        src.schedule_at(SimTime::from_secs(1000), 1);
        tx.send(42).unwrap();
        let start = Instant::now();
        assert!(matches!(src.next_tick(), Some(Tick::External(42))));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "slept to the timer"
        );
        assert_eq!(src.pending(), 1);
    }

    #[test]
    fn drain_fast_forwards_remaining_timers() {
        let (tx, rx) = mpsc::channel::<()>();
        let mut src: WallClockSource<u32, ()> = WallClockSource::new(rx, 1);
        // Hours of sim time; drain must not sleep through them.
        for s in [7200u64, 3600, 10800] {
            src.schedule_at(SimTime::from_secs(s), s as u32);
        }
        src.begin_drain();
        let start = Instant::now();
        let mut order = Vec::new();
        while let Some(Tick::Timer(v)) = src.next_tick() {
            order.push(v);
        }
        assert_eq!(order, vec![3600, 7200, 10800]);
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(src.now(), SimTime::from_secs(10800));
        drop(tx);
    }

    #[test]
    fn dropped_senders_end_the_source() {
        let (tx, rx) = mpsc::channel::<()>();
        let mut src: WallClockSource<u32, ()> = WallClockSource::new(rx, 1000);
        src.schedule_at(SimTime::from_secs(1), 5);
        drop(tx);
        assert!(matches!(src.next_tick(), Some(Tick::Timer(5))));
        assert!(src.next_tick().is_none());
    }

    #[test]
    fn stamps_are_monotone_across_mixed_dispatches() {
        let (tx, rx) = mpsc::channel::<u8>();
        let mut src: WallClockSource<u32, u8> = WallClockSource::new(rx, 1000);
        src.schedule_at(SimTime::from_millis(5), 0);
        src.schedule_at(SimTime::from_millis(50), 1);
        tx.send(0).unwrap();
        let mut last = SimTime::ZERO;
        for _ in 0..3 {
            let _ = src.next_tick().unwrap();
            assert!(src.now() >= last);
            last = src.now();
        }
    }

    #[test]
    fn external_stamps_never_pass_pending_timers() {
        // Race regression: the channel wait can return an external just
        // after a timer's wall deadline; the external's stamp must be
        // capped at that timer's instant, or the timer would fire "late"
        // (driver handlers assert exact completion instants). Each timer
        // carries its scheduled instant as payload, so a stamp overrun
        // shows up as a dispatch-time mismatch.
        let (tx, rx) = mpsc::channel::<u8>();
        let mut src: WallClockSource<u64, u8> = WallClockSource::new(rx, 100);
        let sender = std::thread::spawn(move || {
            for _ in 0..200 {
                if tx.send(1).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        src.schedule_at(SimTime::from_millis(3), 3);
        let mut timers = 0u32;
        while timers < 2000 {
            match src.next_tick() {
                Some(Tick::Timer(at_ms)) => {
                    assert_eq!(
                        src.now(),
                        SimTime::from_millis(at_ms),
                        "timer dispatched off its instant"
                    );
                    timers += 1;
                    let next = src.now().saturating_add(SimDuration::from_millis(3));
                    src.schedule_at(next, next.as_millis());
                }
                Some(Tick::External(_)) => {}
                None => break,
            }
        }
        sender.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn wall_source_rejects_past_schedules() {
        let (_tx, rx) = mpsc::channel::<()>();
        let mut src: WallClockSource<u32, ()> = WallClockSource::new(rx, 1000);
        src.schedule_at(SimTime::from_millis(1), 0);
        let _ = src.next_tick();
        let past = SimTime::ZERO;
        src.schedule_at(past, 1);
    }

    #[test]
    fn replay_source_orders_timers_against_journal_stamps() {
        // Timers at 5 and 10; journal externals stamped 7 and 10. Live
        // order was: timer(5), ext(7), ext(10) — capped at the pending
        // timer, so dispatched before it — then timer(10).
        let mut src: ReplaySource<u32> = ReplaySource::fresh();
        src.schedule_at(SimTime::from_millis(5), 5);
        src.schedule_at(SimTime::from_millis(10), 10);
        let mut order: Vec<String> = Vec::new();
        for stamp_ms in [7u64, 10] {
            let stamp = SimTime::from_millis(stamp_ms);
            while let Some(t) = src.pop_timer_before(Some(stamp)) {
                order.push(format!("timer{t}@{}", src.now().as_millis()));
            }
            src.note_external(stamp);
            order.push(format!("ext@{}", src.now().as_millis()));
        }
        while let Some(t) = src.pop_timer_before(None) {
            order.push(format!("timer{t}@{}", src.now().as_millis()));
        }
        assert_eq!(order, vec!["timer5@5", "ext@7", "ext@10", "timer10@10"]);
        assert_eq!(src.processed(), 4);
        // The stamp floor advanced past the last dispatched timer.
        let (snap, min_external) = src.into_snapshot();
        assert_eq!(min_external, SimTime::from_millis(11));
        assert_eq!(snap.processed, 4);
        assert!(snap.entries.is_empty());
    }

    #[test]
    fn resumed_wall_source_continues_the_recovered_clock() {
        // Build a snapshot mid-run: one timer pending at sim 2.5 s,
        // clock at 2 s, and resume it at speedup 10 (50 ms of wall time
        // to the timer). The timer must fire at its original instant and
        // externals must stamp at/after the recovered floor.
        let snap = EngineSnapshot {
            now: SimTime::from_secs(2),
            processed: 3,
            next_seq: crate::queue::SEEDED_SEQ_LIMIT + 9,
            entries: vec![(
                SimTime::from_millis(2500),
                crate::queue::SEEDED_SEQ_LIMIT + 4,
                55u32,
            )],
        };
        let (tx, rx) = mpsc::channel::<&'static str>();
        let mut src: WallClockSource<u32, &'static str> =
            WallClockSource::resume(rx, 10, &snap, SimTime::from_millis(2001));
        assert_eq!(src.now(), SimTime::from_secs(2));
        assert_eq!(src.processed(), 3);
        assert_eq!(src.pending(), 1);
        tx.send("post-recovery").unwrap();
        match src.next_tick().unwrap() {
            Tick::External(x) => {
                assert_eq!(x, "post-recovery");
                // Stamped at/after the recovered floor, never past the
                // pending timer.
                assert!(src.now() >= SimTime::from_millis(2001));
                assert!(src.now() <= SimTime::from_millis(2500));
            }
            Tick::Timer(_) => panic!("timer fired before the queued external"),
        }
        assert!(matches!(src.next_tick(), Some(Tick::Timer(55))));
        assert_eq!(src.now(), SimTime::from_millis(2500));
        // The resumed snapshot round-trips.
        let snap2 = src.engine_snapshot();
        assert_eq!(snap2.next_seq, crate::queue::SEEDED_SEQ_LIMIT + 9);
        assert!(snap2.entries.is_empty());
        assert_eq!(src.min_external(), SimTime::from_millis(2501));
    }
}
