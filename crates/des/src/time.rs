//! Simulation time: integer milliseconds with exact ordering.
//!
//! Workload traces record times in whole seconds, but the *shrinking
//! factor* transform of the paper multiplies submission times by factors
//! such as 0.7, producing fractional seconds. Millisecond resolution keeps
//! the transform exact enough while staying in integer arithmetic, so event
//! ordering is total and reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Milliseconds per second, the scaling factor between trace seconds and
/// internal ticks.
pub const MILLIS_PER_SEC: u64 = 1_000;

/// An absolute instant on the simulation clock, in milliseconds since the
/// start of the simulation (time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// horizon sentinel by the capacity profile.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds (the unit used in workload
    /// traces).
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Raw milliseconds since time zero.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since time zero as a float (for metric computation and
    /// reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later
    /// (saturating, never panics).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration (sticks at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// millisecond; negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// True for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to the
    /// nearest millisecond (used by the shrinking-factor transform).
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative scale factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_conversion_round_trips() {
        let t = SimTime::from_secs(42);
        assert_eq!(t.as_millis(), 42_000);
        assert_eq!(t.as_secs_f64(), 42.0);
    }

    #[test]
    fn fractional_seconds_round_to_nearest_millisecond() {
        assert_eq!(SimTime::from_secs_f64(1.0005).as_millis(), 1001);
        assert_eq!(SimTime::from_secs_f64(1.0004).as_millis(), 1000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn negative_float_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_identities() {
        let a = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(a + d - d, a);
        assert_eq!((a + d) - a, d);
        assert_eq!(d + d - d, d);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        let d = SimDuration::from_millis(1000);
        assert_eq!(d.scale(0.6).as_millis(), 600);
        assert_eq!(SimDuration::from_millis(3).scale(0.5).as_millis(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn ordering_is_total_and_matches_millis() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(6);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_millis(1))
            .is_none());
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_millis(1)),
            SimTime::MAX
        );
    }
}
