//! The event loop: a clock plus a pending event set.

use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine.
///
/// The engine owns the simulation clock and the pending event set. Events
/// are any user type `E`; handlers receive `&mut Engine` so they can
/// schedule follow-up events. The clock only moves forward, jumping
/// directly to the timestamp of each dequeued event.
///
/// The queue backend defaults to [`BinaryHeapQueue`] but any
/// [`EventQueue`] works (see [`CalendarQueue`](crate::CalendarQueue)).
pub struct Engine<E, Q: EventQueue<E> = BinaryHeapQueue<E>> {
    queue: Q,
    now: SimTime,
    processed: u64,
    _marker: std::marker::PhantomData<E>,
}

impl<E> Engine<E, BinaryHeapQueue<E>> {
    /// Creates an engine with the default binary-heap queue, clock at zero.
    pub fn new() -> Self {
        Engine::with_queue(BinaryHeapQueue::new())
    }
}

impl<E> Default for Engine<E, BinaryHeapQueue<E>> {
    fn default() -> Self {
        Self::new()
    }
}

/// A value snapshot of an [`Engine`] over the default binary-heap queue.
///
/// Pending entries are stored in canonical `(time, seq)` order with their
/// exact sequence numbers, and `next_seq` carries the dynamic tie-break
/// counter — so a restored engine delivers every future event, including
/// ties against events pushed *after* the restore, bit-identically to the
/// snapshotted run. `Hash`/`Eq` make the snapshot usable directly as a
/// model-checker state fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineSnapshot<E> {
    /// Simulation clock at snapshot time.
    pub now: SimTime,
    /// Events processed so far (bookkeeping, not semantic state).
    pub processed: u64,
    /// Next dynamic sequence number the queue would assign.
    pub next_seq: u64,
    /// Pending entries sorted by `(time, seq)`.
    pub entries: Vec<(SimTime, u64, E)>,
}

impl<E: Clone> Engine<E, BinaryHeapQueue<E>> {
    /// Captures the engine's full state as a value.
    pub fn snapshot(&self) -> EngineSnapshot<E> {
        EngineSnapshot {
            now: self.now,
            processed: self.processed,
            next_seq: self.queue.next_seq(),
            entries: self.queue.entries(),
        }
    }

    /// Restores the engine to a previously captured snapshot. The clock
    /// may move backward — that is the point.
    pub fn restore(&mut self, snap: &EngineSnapshot<E>) {
        self.now = snap.now;
        self.processed = snap.processed;
        self.queue = BinaryHeapQueue::from_entries(snap.entries.iter().cloned(), snap.next_seq);
    }

    /// The events tied at the earliest pending instant, cloned in FIFO
    /// (sequence-rank) order. Index `n` is what [`Engine::step_nth`]`(n)`
    /// would deliver; index 0 is the plain [`Engine::step`] choice.
    pub fn tied_events(&self) -> Vec<E> {
        self.queue
            .tied_head()
            .into_iter()
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Pops the `n`-th (by FIFO rank) event tied at the earliest pending
    /// instant, advancing the clock to its timestamp. The remaining tied
    /// events keep their ranks. `step_nth(0)` ≡ [`Engine::step`].
    pub fn step_nth(&mut self, n: usize) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop_nth_tied(n)?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }
}

impl<E, Q: EventQueue<E>> Engine<E, Q> {
    /// Creates an engine over a caller-supplied queue backend.
    pub fn with_queue(queue: Q) -> Self {
        Engine {
            queue,
            now: SimTime::ZERO,
            processed: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — a scheduling bug, not a runtime
    /// condition.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        self.queue.push(time, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let t = self.now + delay;
        self.queue.push(t, event);
    }

    /// Schedules `event` at `time` with an explicit tie-break `rank` that
    /// beats every dynamically scheduled event at the same instant (see
    /// [`EventQueue::push_seeded`]). Exogenous streams injected in chunks
    /// keep the FIFO position they would have had if seeded up front.
    ///
    /// # Panics
    /// Panics if `time` is in the past or `rank` is outside the seeded
    /// sequence space.
    pub fn schedule_seeded(&mut self, time: SimTime, rank: u64, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        self.queue.push_seeded(time, rank, event);
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Returns `None` when the simulation has run dry.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Runs until the queue is empty, invoking `handler` for every event.
    /// The handler may schedule further events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, E)) {
        while let Some((_, e)) = self.step() {
            handler(self, e);
        }
    }

    /// Runs until the queue is empty or the clock passes `horizon`
    /// (exclusive). Events at or beyond the horizon stay in the queue and
    /// the clock is left at the last processed event.
    pub fn run_until(&mut self, horizon: SimTime, mut handler: impl FnMut(&mut Self, E)) {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (_, e) = self.step().expect("peek said non-empty");
            handler(self, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::CalendarQueue;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Pong(u32),
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(10), Ev::Ping(1));
        eng.schedule_at(SimTime::from_secs(3), Ev::Ping(0));
        let mut times = Vec::new();
        eng.run(|e, _| times.push(e.now().as_millis()));
        assert_eq!(times, vec![3_000, 10_000]);
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Ping(3));
        let mut log = Vec::new();
        eng.run(|e, ev| match ev {
            Ev::Ping(n) => {
                log.push(format!("ping{n}@{}", e.now().as_millis()));
                if n > 0 {
                    e.schedule_in(SimDuration::from_secs(2), Ev::Ping(n - 1));
                }
                e.schedule_in(SimDuration::from_secs(1), Ev::Pong(n));
            }
            Ev::Pong(n) => log.push(format!("pong{n}@{}", e.now().as_millis())),
        });
        assert_eq!(
            log,
            vec![
                "ping3@1000",
                "pong3@2000",
                "ping2@3000",
                "pong2@4000",
                "ping1@5000",
                "pong1@6000",
                "ping0@7000",
                "pong0@8000",
            ]
        );
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Ping(0));
        eng.run(|e, _| {
            e.schedule_at(SimTime::from_secs(1), Ev::Ping(9));
        });
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut eng: Engine<Ev> = Engine::new();
        for s in [1u64, 2, 3, 4, 5] {
            eng.schedule_at(SimTime::from_secs(s), Ev::Ping(s as u32));
        }
        let mut count = 0;
        eng.run_until(SimTime::from_secs(3), |_, _| count += 1);
        assert_eq!(count, 2); // events at 1s and 2s; 3s is exclusive
        assert_eq!(eng.pending(), 3);
        assert_eq!(eng.now(), SimTime::from_secs(2));
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime::from_secs(7), i);
        }
        let mut order = Vec::new();
        eng.run(|_, i| order.push(i));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_seeded(SimTime::from_secs(4), 0, 100);
        for i in 0..5u32 {
            eng.schedule_at(SimTime::from_secs(4), i);
        }
        eng.schedule_at(SimTime::from_secs(1), 99);
        let _ = eng.step(); // consume the event at 1s
        let snap = eng.snapshot();

        let drain = |e: &mut Engine<u32>| {
            let mut out = Vec::new();
            while let Some((t, ev)) = e.step() {
                // A post-restore push must tie-break exactly as in the
                // original run: next_seq survives the snapshot.
                if ev == 99 {
                    e.schedule_at(SimTime::from_secs(4), 500);
                }
                out.push((t.as_millis(), ev));
            }
            out
        };
        let first = drain(&mut eng);
        assert_eq!(eng.pending(), 0);
        eng.restore(&snap);
        assert_eq!(eng.now(), snap.now);
        assert_eq!(eng.snapshot(), snap);
        let second = drain(&mut eng);
        assert_eq!(first, second);
    }

    #[test]
    fn step_nth_permutes_ties_but_preserves_the_set() {
        let build = || {
            let mut e: Engine<u32> = Engine::new();
            for i in 0..4u32 {
                e.schedule_at(SimTime::from_secs(2), i);
            }
            e.schedule_at(SimTime::from_secs(9), 42);
            e
        };
        let mut eng = build();
        assert_eq!(eng.tied_events(), vec![0, 1, 2, 3]);
        // Deliver rank 2 first, then drain FIFO.
        let (_, first) = eng.step_nth(2).unwrap();
        assert_eq!(first, 2);
        assert_eq!(eng.tied_events(), vec![0, 1, 3]);
        let mut rest = Vec::new();
        while let Some((_, ev)) = eng.step() {
            rest.push(ev);
        }
        assert_eq!(rest, vec![0, 1, 3, 42]);
        // Out-of-range index leaves the queue untouched.
        let mut eng = build();
        assert!(eng.step_nth(4).is_none());
        assert_eq!(eng.pending(), 5);
        assert_eq!(eng.step_nth(0).unwrap().1, 0);
    }

    #[test]
    fn engine_works_with_calendar_backend() {
        let mut eng: Engine<u32, CalendarQueue<u32>> = Engine::with_queue(CalendarQueue::new());
        for i in (0..100u32).rev() {
            eng.schedule_at(SimTime::from_millis(i as u64 * 10), i);
        }
        let mut order = Vec::new();
        eng.run(|_, i| order.push(i));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }
}
