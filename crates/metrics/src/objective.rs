//! Evaluation of *planned* schedules — the decider's objective function.
//!
//! "The self-tuning dynP scheduler computes full schedules for each
//! available policy … These schedules are evaluated by means of a
//! performance metrics. Thereby, the performance of each policy is
//! expressed by a single value."
//!
//! All objectives are normalized so that **lower is better** (utilization
//! is negated), which keeps every decider a pure argmin.

use dynp_des::SimTime;
use dynp_rms::Schedule;
use serde::{Deserialize, Serialize};

/// The metric a planned schedule is scored with. The paper names
/// "response time, slowdown, or utilization" as candidates and evaluates
/// with the slowdown weighted by area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Planned slowdown weighted by estimated job area (default — matches
    /// the paper's SLDwA evaluation metric).
    SlowdownWeightedByArea,
    /// Plain average planned slowdown.
    AvgSlowdown,
    /// Average planned response time (seconds).
    AvgResponseTime,
    /// Planned response time weighted by width (ARTwW on the plan).
    ResponseTimeWeightedByWidth,
    /// Negated planned utilization over the plan's horizon (lower =
    /// better ⇒ higher utilization wins).
    Utilization,
}

impl Objective {
    /// All implemented objectives.
    pub const ALL: [Objective; 5] = [
        Objective::SlowdownWeightedByArea,
        Objective::AvgSlowdown,
        Objective::AvgResponseTime,
        Objective::ResponseTimeWeightedByWidth,
        Objective::Utilization,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::SlowdownWeightedByArea => "SLDwA",
            Objective::AvgSlowdown => "AvgSLD",
            Objective::AvgResponseTime => "ART",
            Objective::ResponseTimeWeightedByWidth => "ARTwW",
            Objective::Utilization => "UTIL",
        }
    }

    /// Scores a planned schedule at time `now`; lower is better. An empty
    /// schedule scores 0 for every objective (all policies tie, and the
    /// deciders then keep the running policy).
    ///
    /// Planned quantities use the *estimate* as the run time — the actual
    /// run time is unknown to the scheduler at planning time.
    pub fn evaluate(self, schedule: &Schedule, now: SimTime) -> f64 {
        if schedule.is_empty() {
            return 0.0;
        }
        match self {
            Objective::SlowdownWeightedByArea => {
                let mut num = 0.0;
                let mut den = 0.0;
                for e in &schedule.entries {
                    let est = e.job.estimate.as_secs_f64();
                    let response = e.planned_wait().as_secs_f64() + est;
                    let area = e.job.estimated_area();
                    num += area * (response / est);
                    den += area;
                }
                num / den
            }
            Objective::AvgSlowdown => {
                let sum: f64 = schedule
                    .entries
                    .iter()
                    .map(|e| {
                        let est = e.job.estimate.as_secs_f64();
                        (e.planned_wait().as_secs_f64() + est) / est
                    })
                    .sum();
                sum / schedule.len() as f64
            }
            Objective::AvgResponseTime => {
                let sum: f64 = schedule
                    .entries
                    .iter()
                    .map(|e| e.planned_wait().as_secs_f64() + e.job.estimate.as_secs_f64())
                    .sum();
                sum / schedule.len() as f64
            }
            Objective::ResponseTimeWeightedByWidth => {
                let mut num = 0.0;
                let mut den = 0.0;
                for e in &schedule.entries {
                    let response = e.planned_wait().as_secs_f64() + e.job.estimate.as_secs_f64();
                    num += e.job.width as f64 * response;
                    den += e.job.width as f64;
                }
                num / den
            }
            Objective::Utilization => {
                // Planned area over the span from now to the horizon; the
                // denser the plan packs, the higher the value. Negated so
                // lower is better.
                let span = schedule.horizon().saturating_since(now).as_secs_f64();
                if span <= 0.0 {
                    return 0.0;
                }
                let area: f64 = schedule
                    .entries
                    .iter()
                    .map(|e| e.job.estimated_area())
                    .sum();
                -(area / span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_rms::PlannedJob;
    use dynp_workload::{Job, JobId};

    fn entry(id: u32, submit_s: u64, width: u32, est_s: u64, start_s: u64) -> PlannedJob {
        PlannedJob {
            job: Job::new(
                JobId(id),
                SimTime::from_secs(submit_s),
                width,
                SimDuration::from_secs(est_s),
                SimDuration::from_secs(est_s),
            ),
            start: SimTime::from_secs(start_s),
        }
    }

    #[test]
    fn empty_schedule_scores_zero_everywhere() {
        let s = Schedule::new();
        for o in Objective::ALL {
            assert_eq!(o.evaluate(&s, SimTime::ZERO), 0.0, "{}", o.name());
        }
    }

    #[test]
    fn sldwa_on_plan_hand_computed() {
        // Job 0: submit 0, start 0, est 100, width 2 → slowdown 1, area 200.
        // Job 1: submit 0, start 100, est 50, width 1 → slowdown 3, area 50.
        let s = Schedule {
            entries: vec![entry(0, 0, 2, 100, 0), entry(1, 0, 1, 50, 100)],
        };
        let v = Objective::SlowdownWeightedByArea.evaluate(&s, SimTime::ZERO);
        let expected = (200.0 * 1.0 + 50.0 * 3.0) / 250.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn avg_metrics_hand_computed() {
        let s = Schedule {
            entries: vec![entry(0, 0, 2, 100, 0), entry(1, 0, 1, 50, 100)],
        };
        assert!(
            (Objective::AvgSlowdown.evaluate(&s, SimTime::ZERO) - (1.0 + 3.0) / 2.0).abs() < 1e-12
        );
        assert!(
            (Objective::AvgResponseTime.evaluate(&s, SimTime::ZERO) - (100.0 + 150.0) / 2.0).abs()
                < 1e-12
        );
        let artww = (2.0 * 100.0 + 1.0 * 150.0) / 3.0;
        assert!(
            (Objective::ResponseTimeWeightedByWidth.evaluate(&s, SimTime::ZERO) - artww).abs()
                < 1e-12
        );
    }

    #[test]
    fn utilization_prefers_denser_packing() {
        // Same two jobs; plan A packs them concurrently (horizon 100),
        // plan B serializes them (horizon 150).
        let a = Schedule {
            entries: vec![entry(0, 0, 2, 100, 0), entry(1, 0, 1, 50, 0)],
        };
        let b = Schedule {
            entries: vec![entry(0, 0, 2, 100, 0), entry(1, 0, 1, 50, 100)],
        };
        let va = Objective::Utilization.evaluate(&a, SimTime::ZERO);
        let vb = Objective::Utilization.evaluate(&b, SimTime::ZERO);
        assert!(
            va < vb,
            "denser plan must score lower (better): {va} vs {vb}"
        );
    }

    #[test]
    fn better_plans_score_lower_on_slowdown() {
        // Identical jobs, one plan starts the short job later.
        let early = Schedule {
            entries: vec![entry(0, 0, 1, 10, 0), entry(1, 0, 1, 100, 10)],
        };
        let late = Schedule {
            entries: vec![entry(1, 0, 1, 100, 0), entry(0, 0, 1, 10, 100)],
        };
        let ve = Objective::SlowdownWeightedByArea.evaluate(&early, SimTime::ZERO);
        let vl = Objective::SlowdownWeightedByArea.evaluate(&late, SimTime::ZERO);
        assert!(ve < vl, "{ve} vs {vl}");
    }
}
