//! A log-bucketed latency histogram for live-service measurements.
//!
//! The batch reports use [`crate::percentiles::QuantileStats`], which
//! sorts every sample — exact, but O(n) memory and only usable after the
//! run. A live daemon records millions of admission latencies and must
//! answer p50/p99/p999 while running, in constant memory, and merge
//! per-worker histograms into one. This is the classic HdrHistogram
//! layout, sized for nanosecond-to-minutes latencies:
//!
//! * values below 2⁵ land in exact unit buckets;
//! * above that, each power of two is split into 2⁵ = 32 sub-buckets,
//!   bounding the relative width of any bucket — and therefore the
//!   relative error of any reported quantile — by 1/32 ≈ 3.2 %.
//!
//! Quantiles use the same nearest-rank definition as `QuantileStats`
//! (`rank = ceil(q·n)` clamped to `[1, n]`), reporting the upper bound of
//! the bucket containing that rank, so the two views agree on exact-bucket
//! data and differ by at most one sub-bucket width elsewhere.

use serde::{Deserialize, Serialize};

/// Power-of-two range is split into `1 << SUB_BITS` sub-buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: the exact region plus 32
/// sub-buckets for each of the `64 - SUB_BITS` remaining exponents.
const BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS) as u64 * SUB_COUNT) as usize;

/// Returns the bucket index of `v`.
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    // `exp` is the position of the highest set bit, ≥ SUB_BITS here.
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) & (SUB_COUNT - 1);
    ((exp - SUB_BITS + 1) as u64 * SUB_COUNT + sub) as usize
}

/// The largest value mapping to bucket `i` — what quantiles report.
fn upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        return i;
    }
    let exp = (i / SUB_COUNT - 1) + SUB_BITS as u64;
    let sub = i % SUB_COUNT;
    let base = (SUB_COUNT + sub) << (exp - SUB_BITS as u64);
    // The bucket spans `1 << (exp - SUB_BITS)` consecutive values
    // starting at `base`.
    base + ((1u64 << (exp - SUB_BITS as u64)) - 1)
}

/// A constant-memory latency histogram with ≈3 % quantile error.
///
/// Values are unitless `u64`s; the service records microseconds. Workers
/// keep private histograms and [`LatencyHistogram::merge`] them — the
/// merged quantiles are exactly those of a single histogram fed every
/// sample, because bucket counts add.
#[derive(Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (nearest-rank, as in `QuantileStats`):
    /// the upper bound of the bucket holding the `ceil(q·n)`-th smallest
    /// sample, capped at the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        // Every value below 2^SUB_BITS has its own bucket: quantiles are
        // exact, matching the nearest-rank definition.
        assert_eq!(h.p50(), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn bucket_boundaries() {
        // The first sub-bucketed range starts exactly at 2^SUB_BITS.
        assert_eq!(index_of(31), 31);
        assert_eq!(index_of(32), 32);
        // 32..=33 share a bucket once values exceed 2^(SUB_BITS+1): the
        // exponent-6 range has granularity 2.
        assert_eq!(index_of(64), index_of(65));
        assert_ne!(index_of(64), index_of(66));
        // Power-of-two steps move to a fresh bucket range.
        for exp in SUB_BITS..63 {
            let v = 1u64 << exp;
            assert_ne!(index_of(v - 1), index_of(v), "boundary at 2^{exp}");
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn upper_bound_inverts_index() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            4095,
            1 << 20,
            u64::MAX,
        ] {
            let i = index_of(v);
            let ub = upper_bound(i);
            assert!(ub >= v, "upper_bound({i}) = {ub} < {v}");
            assert_eq!(index_of(ub), i, "upper bound of {v} left its bucket");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        // Deterministic LCG spread over [0, 10^7).
        let mut x = 12345u64;
        let mut exact = Vec::new();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 10_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = h.quantile(q);
            assert!(est >= truth, "q{q}: {est} < exact {truth}");
            let err = (est - truth) as f64 / truth.max(1) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q{q}: relative error {err}");
        }
        assert_eq!(h.quantile(1.0), *exact.last().unwrap());
    }

    #[test]
    fn merge_equals_combined_feed() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..1000u64 {
            let target = if v % 3 == 0 { &mut a } else { &mut b };
            target.record(v * 7);
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_never_exceeds_recorded_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        // A lone sample in a wide bucket: the cap keeps the report at the
        // exact value, not the bucket's upper bound.
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p999(), 1_000_003);
    }
}
