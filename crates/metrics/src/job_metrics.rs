//! Per-job metrics, straight from §4.1 of the paper.

use dynp_rms::CompletedJob;

/// The bound (seconds) used by the bounded slowdown `s⁶⁰`, "defined in
/// [Feitelson 2001] in order to exclude very short jobs, which might be
/// the result of an error".
pub const SLOWDOWN_BOUND_SECS: f64 = 60.0;

/// Job slowdown `s = response / run time = 1 + wait / run time`.
///
/// Run times are at least 1 ms by the workload invariant, so the ratio is
/// finite (short jobs produce huge slowdowns — which is exactly why the
/// paper weights by area or bounds the run time).
pub fn slowdown(response_secs: f64, runtime_secs: f64) -> f64 {
    response_secs / runtime_secs
}

/// Bounded slowdown `s⁶⁰ = max(response / max(run time, 60), 1)`.
pub fn bounded_slowdown(response_secs: f64, runtime_secs: f64) -> f64 {
    (response_secs / runtime_secs.max(SLOWDOWN_BOUND_SECS)).max(1.0)
}

/// All per-job quantities derived from one completed job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// Wait time in seconds.
    pub wait_secs: f64,
    /// Response time in seconds.
    pub response_secs: f64,
    /// Actual run time in seconds.
    pub runtime_secs: f64,
    /// Slowdown `s`.
    pub slowdown: f64,
    /// Bounded slowdown `s⁶⁰`.
    pub bounded_slowdown: f64,
    /// Area = actual run time × width (processor-seconds).
    pub area: f64,
    /// Width (requested processors).
    pub width: u32,
}

impl JobOutcome {
    /// Derives the outcome of a completed job.
    pub fn of(done: &CompletedJob) -> JobOutcome {
        let wait = done.wait_secs();
        let response = done.response_secs();
        let runtime = done.job.actual.as_secs_f64();
        JobOutcome {
            wait_secs: wait,
            response_secs: response,
            runtime_secs: runtime,
            slowdown: slowdown(response, runtime),
            bounded_slowdown: bounded_slowdown(response, runtime),
            area: done.job.area(),
            width: done.job.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::{SimDuration, SimTime};
    use dynp_workload::{Job, JobId};

    #[test]
    fn papers_worked_example() {
        // "a job that runs for 0.5 seconds and has to wait for 10 minutes,
        // suffers a slowdown of 1201. A job with the same wait time but a
        // length of 20 seconds has a slowdown of only 31."
        let s_short = slowdown(600.0 + 0.5, 0.5);
        assert!((s_short - 1_201.0).abs() < 1e-9);
        let s_long = slowdown(600.0 + 20.0, 20.0);
        assert!((s_long - 31.0).abs() < 1e-9);
        // "the 0.5 second job has a slowdown weighted by area of
        // 1201 · 0.5 = 600.5 and the 20 second job 31 · 20 = 620."
        assert!((s_short * 0.5 - 600.5).abs() < 1e-9);
        assert!((s_long * 20.0 - 620.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_one_plus_wait_over_runtime() {
        // s = response/runtime = 1 + wait/runtime
        let (wait, runtime) = (30.0, 10.0);
        assert!((slowdown(wait + runtime, runtime) - (1.0 + wait / runtime)).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_clamps_short_jobs_and_floors_at_one() {
        // 0.5s job waiting 10 min: bounded uses max(0.5, 60) = 60.
        assert!((bounded_slowdown(600.5, 0.5) - 600.5 / 60.0).abs() < 1e-12);
        // A job with zero wait has bounded slowdown exactly 1.
        assert_eq!(bounded_slowdown(10.0, 10.0), 1.0);
        // Long jobs with no wait also floor at 1.
        assert_eq!(bounded_slowdown(120.0, 120.0), 1.0);
    }

    #[test]
    fn outcome_of_completed_job() {
        let job = Job::new(
            JobId(0),
            SimTime::from_secs(100),
            4,
            SimDuration::from_secs(50),
            SimDuration::from_secs(40),
        );
        let done = dynp_rms::CompletedJob {
            job,
            start: SimTime::from_secs(160),
            end: SimTime::from_secs(200),
        };
        let o = JobOutcome::of(&done);
        assert_eq!(o.wait_secs, 60.0);
        assert_eq!(o.response_secs, 100.0);
        assert_eq!(o.runtime_secs, 40.0);
        assert!((o.slowdown - 2.5).abs() < 1e-12);
        assert!((o.bounded_slowdown - 100.0 / 60.0).abs() < 1e-12);
        assert_eq!(o.area, 160.0);
        assert_eq!(o.width, 4);
    }
}
