//! Time-series extraction from a finished simulation — the raw material
//! for utilization/queue plots and for understanding *when* a scheduler
//! wins, not just by how much.

use dynp_des::SimTime;
use dynp_rms::CompletedJob;

/// A piecewise-constant series as (change time, new value) steps, sorted
/// by time; the value holds until the next step.
pub type StepSeries = Vec<(SimTime, u32)>;

/// Builds the busy-processor series from completed-job records: +width
/// at each start, −width at each end.
pub fn busy_series(completed: &[CompletedJob]) -> StepSeries {
    let mut deltas: Vec<(SimTime, i64)> = Vec::with_capacity(completed.len() * 2);
    for d in completed {
        deltas.push((d.start, d.job.width as i64));
        deltas.push((d.end, -(d.job.width as i64)));
    }
    accumulate(deltas)
}

/// Builds the waiting-queue-length series: +1 at each submission, −1 at
/// each start.
pub fn queue_series(completed: &[CompletedJob]) -> StepSeries {
    let mut deltas: Vec<(SimTime, i64)> = Vec::with_capacity(completed.len() * 2);
    for d in completed {
        deltas.push((d.job.submit, 1));
        deltas.push((d.start, -1));
    }
    accumulate(deltas)
}

/// Merges same-time deltas and integrates them into a step series.
fn accumulate(mut deltas: Vec<(SimTime, i64)>) -> StepSeries {
    deltas.sort_by_key(|&(t, _)| t);
    let mut series = Vec::new();
    let mut level: i64 = 0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        debug_assert!(level >= 0, "series went negative at {t:?}");
        series.push((t, level.max(0) as u32));
    }
    series
}

/// The value of a step series at instant `t` (0 before the first step).
pub fn value_at(series: &StepSeries, t: SimTime) -> u32 {
    match series.partition_point(|&(st, _)| st <= t) {
        0 => 0,
        i => series[i - 1].1,
    }
}

/// Buckets the busy-processor series into average utilization per
/// `bucket_secs` window over `[start, end)`. Returns one value per
/// bucket in `[0, 1]`.
pub fn bucketed_utilization(
    machine_size: u32,
    completed: &[CompletedJob],
    start: SimTime,
    end: SimTime,
    bucket_secs: f64,
) -> Vec<f64> {
    assert!(bucket_secs > 0.0);
    let series = busy_series(completed);
    let span = end.saturating_since(start).as_secs_f64();
    let n_buckets = (span / bucket_secs).ceil() as usize;
    let mut out = vec![0.0; n_buckets];

    // Integrate the step series bucket by bucket.
    for (b, slot) in out.iter_mut().enumerate() {
        let b_start = start.as_secs_f64() + b as f64 * bucket_secs;
        let b_end = (b_start + bucket_secs).min(end.as_secs_f64());
        let mut t = b_start;
        let mut integral = 0.0;
        while t < b_end {
            let current = value_at(&series, SimTime::from_secs_f64(t)) as f64;
            // Next change after t, clipped to the bucket end.
            let idx = series.partition_point(|&(st, _)| st.as_secs_f64() <= t);
            let next = series
                .get(idx)
                .map_or(b_end, |&(st, _)| st.as_secs_f64().min(b_end));
            integral += current * (next - t);
            t = next;
        }
        let width = b_end - b_start;
        *slot = if width > 0.0 {
            integral / (machine_size as f64 * width)
        } else {
            0.0
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::{Job, JobId};

    fn done(id: u32, submit_s: u64, start_s: u64, width: u32, run_s: u64) -> CompletedJob {
        CompletedJob {
            job: Job::new(
                JobId(id),
                SimTime::from_secs(submit_s),
                width,
                SimDuration::from_secs(run_s),
                SimDuration::from_secs(run_s),
            ),
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(start_s + run_s),
        }
    }

    #[test]
    fn busy_series_steps_at_starts_and_ends() {
        // Job A: 2 procs over [0, 100); job B: 3 procs over [50, 150).
        let jobs = [done(0, 0, 0, 2, 100), done(1, 0, 50, 3, 100)];
        let s = busy_series(&jobs);
        assert_eq!(
            s,
            vec![
                (SimTime::from_secs(0), 2),
                (SimTime::from_secs(50), 5),
                (SimTime::from_secs(100), 3),
                (SimTime::from_secs(150), 0),
            ]
        );
        assert_eq!(value_at(&s, SimTime::from_secs(75)), 5);
        assert_eq!(value_at(&s, SimTime::from_secs(149)), 3);
        assert_eq!(value_at(&s, SimTime::from_secs(150)), 0);
    }

    #[test]
    fn queue_series_counts_waiting_jobs() {
        // Both submitted at 0; A starts at 0, B waits until 100.
        let jobs = [done(0, 0, 0, 2, 100), done(1, 0, 100, 2, 50)];
        let s = queue_series(&jobs);
        // t=0: +2 submits, -1 start → 1 waiting; t=100: −1 → 0.
        assert_eq!(
            s,
            vec![(SimTime::from_secs(0), 1), (SimTime::from_secs(100), 0)]
        );
    }

    #[test]
    fn value_before_first_step_is_zero() {
        let jobs = [done(0, 100, 100, 1, 10)];
        let s = busy_series(&jobs);
        assert_eq!(value_at(&s, SimTime::from_secs(50)), 0);
    }

    #[test]
    fn bucketed_utilization_hand_computed() {
        // Machine 4. One width-4 job over [0, 50) then idle to 100.
        let jobs = [done(0, 0, 0, 4, 50)];
        let u = bucketed_utilization(4, &jobs, SimTime::ZERO, SimTime::from_secs(100), 50.0);
        assert_eq!(u.len(), 2);
        assert!((u[0] - 1.0).abs() < 1e-9);
        assert!((u[1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn bucketed_utilization_splits_partial_occupancy() {
        // Machine 4; width-2 job over [25, 75): bucket [0,50) is busy
        // half the time at half the machine → 0.25; same for [50,100).
        let jobs = [done(0, 0, 25, 2, 50)];
        let u = bucketed_utilization(4, &jobs, SimTime::ZERO, SimTime::from_secs(100), 50.0);
        assert!((u[0] - 0.25).abs() < 1e-9, "{u:?}");
        assert!((u[1] - 0.25).abs() < 1e-9, "{u:?}");
    }

    #[test]
    fn empty_input_gives_empty_series() {
        assert!(busy_series(&[]).is_empty());
        assert!(queue_series(&[]).is_empty());
        let u = bucketed_utilization(4, &[], SimTime::ZERO, SimTime::from_secs(10), 5.0);
        assert_eq!(u, vec![0.0, 0.0]);
    }
}
