//! Advance-reservation admission metrics.
//!
//! The admission subsystem produces a second result axis next to the job
//! metrics: how much of the offered booking pressure was admitted
//! ([`ReservationStats::acceptance_rate`]), how much machine area the
//! honored windows actually occupied, and — combined with the job-side
//! SLDwA — what the guarantees cost the batch workload.

use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulated reservation stream.
///
/// Every field is an exact integer so the struct is `Hash + Eq` — it
/// lives on the driver's snapshot path. Areas are counted in exact
/// processor-milliseconds; the float processor-second views are derived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReservationStats {
    /// Requests offered to the admission controller.
    pub requests: u64,
    /// Requests admitted into the book.
    pub admitted: u64,
    /// Rejections because the window did not fit the free capacity.
    pub rejected_capacity: u64,
    /// Rejections because admitting would push a promised job start past
    /// its guarantee.
    pub rejected_guarantee: u64,
    /// Rejections for malformed requests (zero/oversized width, window in
    /// the past).
    pub rejected_invalid: u64,
    /// Admitted windows withdrawn by their user before they started.
    pub cancelled: u64,
    /// Admitted windows that ran to completion (started and ended).
    pub honored: u64,
    /// Admitted windows shrunk (best-effort) by schedule repair after a
    /// capacity loss. A downgraded window still counts as honored if it
    /// runs to completion at its reduced width.
    pub downgraded: u64,
    /// Admitted windows cancelled *by the system* because schedule repair
    /// found no width at which they still fit the degraded machine.
    pub revoked: u64,
    /// Processor-milliseconds requested across all requests (exact).
    pub requested_area_pms: u64,
    /// Processor-milliseconds across admitted windows (exact).
    pub admitted_area_pms: u64,
}

impl ReservationStats {
    /// Admitted / offered requests; 1 for an empty stream (nothing was
    /// refused).
    pub fn acceptance_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.admitted as f64 / self.requests as f64
        }
    }

    /// Processor-seconds requested across all requests (derived view of
    /// the exact [`ReservationStats::requested_area_pms`] counter).
    pub fn requested_area(&self) -> f64 {
        self.requested_area_pms as f64 / 1_000.0
    }

    /// Processor-seconds across admitted windows (derived view of the
    /// exact [`ReservationStats::admitted_area_pms`] counter).
    pub fn admitted_area(&self) -> f64 {
        self.admitted_area_pms as f64 / 1_000.0
    }

    /// Admitted / requested processor-seconds; 1 for an empty stream.
    pub fn area_acceptance_rate(&self) -> f64 {
        if self.requested_area_pms == 0 {
            1.0
        } else {
            self.admitted_area_pms as f64 / self.requested_area_pms as f64
        }
    }

    /// Fraction of total machine capacity over `span_secs` booked by
    /// admitted windows.
    pub fn booked_utilization(&self, machine_size: u32, span_secs: f64) -> f64 {
        let capacity = machine_size as f64 * span_secs;
        if capacity <= 0.0 {
            0.0
        } else {
            self.admitted_area() / capacity
        }
    }

    /// Total rejections, any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_capacity + self.rejected_guarantee + self.rejected_invalid
    }

    /// Accumulates another run's counters into this one (for per-cell
    /// aggregation over replicated job sets).
    pub fn merge(&mut self, other: &ReservationStats) {
        self.requests += other.requests;
        self.admitted += other.admitted;
        self.rejected_capacity += other.rejected_capacity;
        self.rejected_guarantee += other.rejected_guarantee;
        self.rejected_invalid += other.rejected_invalid;
        self.cancelled += other.cancelled;
        self.honored += other.honored;
        self.downgraded += other.downgraded;
        self.revoked += other.revoked;
        self.requested_area_pms += other.requested_area_pms;
        self.admitted_area_pms += other.admitted_area_pms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_has_perfect_rates() {
        let s = ReservationStats::default();
        assert_eq!(s.acceptance_rate(), 1.0);
        assert_eq!(s.area_acceptance_rate(), 1.0);
        assert_eq!(s.booked_utilization(128, 3600.0), 0.0);
    }

    #[test]
    fn rates_reflect_counters() {
        let s = ReservationStats {
            requests: 10,
            admitted: 7,
            rejected_capacity: 2,
            rejected_guarantee: 1,
            requested_area_pms: 1_000_000,
            admitted_area_pms: 650_000,
            ..Default::default()
        };
        assert!((s.acceptance_rate() - 0.7).abs() < 1e-12);
        assert!((s.area_acceptance_rate() - 0.65).abs() < 1e-12);
        assert_eq!(s.rejected(), 3);
        // 650 proc-secs on a 100-proc machine over 100s → 6.5%
        assert!((s.booked_utilization(100, 100.0) - 0.065).abs() < 1e-12);
    }
}
