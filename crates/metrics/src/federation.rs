//! Federated (multi-cluster) metric aggregation.
//!
//! A federation run produces one [`SimMetrics`] per cluster plus routing
//! and migration counters. This module combines them into federation-wide
//! numbers the same way [`SimMetrics`] combines jobs: the headline SLDwA
//! is weighted by completed job *area*, so a cluster's contribution is
//! proportional to the work it actually ran, and utilization is total
//! area over total offered capacity (each cluster's machine size × its
//! own busy span).

use crate::aggregate::SimMetrics;
use serde::{Deserialize, Serialize};

/// One cluster's slice of a federation run: its aggregate metrics plus
/// the cross-shard traffic it saw.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Cluster index within the federation.
    pub cluster: u32,
    /// Machine size of the cluster.
    pub machine_size: u32,
    /// Aggregate metrics of the jobs that completed *on this cluster*.
    pub metrics: SimMetrics,
    /// Arriving jobs the router dispatched to this cluster.
    pub routed_in: u64,
    /// Of those, jobs submitted at a *different* cluster (they paid a
    /// transfer latency).
    pub remote_in: u64,
    /// Waiting jobs migrated away from this cluster at epoch barriers.
    pub migrated_out: u64,
    /// Waiting jobs migrated into this cluster at epoch barriers.
    pub migrated_in: u64,
    /// Jobs lost on this cluster (retry budget exhausted).
    pub lost: u64,
}

impl ClusterReport {
    /// The completed-job area this cluster ran (processor-seconds),
    /// recovered from its utilization over its own busy span.
    pub fn area(&self) -> f64 {
        let span = self.metrics.last_end_secs - self.metrics.first_submit_secs;
        self.metrics.utilization * self.machine_size as f64 * span
    }
}

/// Federation-wide aggregates over the per-cluster reports.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FederatedMetrics {
    /// Completed jobs across all clusters.
    pub jobs: usize,
    /// Area-weighted SLDwA across clusters — each cluster contributes
    /// proportionally to the job area it completed, so this equals the
    /// SLDwA of the pooled job population.
    pub sldwa: f64,
    /// Total completed area over total offered capacity
    /// `Σ machine_size × span` (per-cluster spans).
    pub utilization: f64,
    /// Job-count-weighted average wait across clusters, seconds.
    pub avg_wait_secs: f64,
    /// Jobs that were routed to a cluster other than their submission
    /// cluster.
    pub remote_routes: u64,
    /// Waiting-job migrations performed at epoch barriers.
    pub migrations: u64,
    /// Jobs lost across all clusters.
    pub lost: u64,
}

impl FederatedMetrics {
    /// Combines per-cluster reports into federation-wide numbers.
    /// Clusters that completed no jobs contribute nothing to the weighted
    /// averages. Returns the zero value for an empty slice.
    pub fn combine(reports: &[ClusterReport]) -> FederatedMetrics {
        let mut jobs = 0usize;
        let mut area_sum = 0.0;
        let mut area_weighted_sldwa = 0.0;
        let mut capacity_sum = 0.0;
        let mut wait_sum = 0.0;
        let mut remote_routes = 0u64;
        let mut migrations = 0u64;
        let mut lost = 0u64;
        let mut active: Option<&ClusterReport> = None;
        let mut active_count = 0usize;
        for r in reports {
            remote_routes += r.remote_in;
            migrations += r.migrated_in;
            lost += r.lost;
            if r.metrics.jobs == 0 {
                continue;
            }
            active = Some(r);
            active_count += 1;
            jobs += r.metrics.jobs;
            let area = r.area();
            area_sum += area;
            area_weighted_sldwa += area * r.metrics.sldwa;
            let span = r.metrics.last_end_secs - r.metrics.first_submit_secs;
            capacity_sum += r.machine_size as f64 * span;
            wait_sum += r.metrics.avg_wait_secs * r.metrics.jobs as f64;
        }
        // With a single contributing cluster the weighted averages reduce
        // to that cluster's own numbers; take them verbatim so a
        // one-cluster federation is bit-identical to the plain driver
        // (`x·w / w` can be off by an ULP).
        if let (1, Some(only)) = (active_count, active) {
            return FederatedMetrics {
                jobs,
                sldwa: only.metrics.sldwa,
                utilization: only.metrics.utilization,
                avg_wait_secs: only.metrics.avg_wait_secs,
                remote_routes,
                migrations,
                lost,
            };
        }
        FederatedMetrics {
            jobs,
            sldwa: if area_sum > 0.0 {
                area_weighted_sldwa / area_sum
            } else {
                0.0
            },
            utilization: if capacity_sum > 0.0 {
                area_sum / capacity_sum
            } else {
                0.0
            },
            avg_wait_secs: if jobs > 0 {
                wait_sum / jobs as f64
            } else {
                0.0
            },
            remote_routes,
            migrations,
            lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cluster: u32, machine: u32, jobs: usize, sldwa: f64, util: f64) -> ClusterReport {
        ClusterReport {
            cluster,
            machine_size: machine,
            metrics: SimMetrics {
                jobs,
                sldwa,
                utilization: util,
                avg_wait_secs: 10.0,
                first_submit_secs: 0.0,
                last_end_secs: 100.0,
                ..SimMetrics::default()
            },
            routed_in: jobs as u64,
            remote_in: 0,
            migrated_out: 0,
            migrated_in: 0,
            lost: 0,
        }
    }

    #[test]
    fn single_cluster_combine_is_the_identity() {
        let r = report(0, 16, 10, 2.5, 0.5);
        let f = FederatedMetrics::combine(&[r]);
        assert_eq!(f.jobs, 10);
        assert!((f.sldwa - 2.5).abs() < 1e-12);
        assert!((f.utilization - 0.5).abs() < 1e-12);
        assert!((f.avg_wait_secs - 10.0).abs() < 1e-12);
    }

    #[test]
    fn combine_weights_sldwa_by_area() {
        // Cluster 0: machine 10, util 0.8 over span 100 → area 800.
        // Cluster 1: machine 10, util 0.2 over span 100 → area 200.
        let a = report(0, 10, 5, 4.0, 0.8);
        let b = report(1, 10, 5, 1.0, 0.2);
        let f = FederatedMetrics::combine(&[a, b]);
        // (800·4 + 200·1) / 1000 = 3.4
        assert!((f.sldwa - 3.4).abs() < 1e-12);
        // (800 + 200) / (1000 + 1000) = 0.5
        assert!((f.utilization - 0.5).abs() < 1e-12);
        assert_eq!(f.jobs, 10);
    }

    #[test]
    fn idle_clusters_and_empty_input_are_benign() {
        let idle = ClusterReport {
            metrics: SimMetrics::default(),
            ..report(1, 8, 0, 0.0, 0.0)
        };
        let busy = report(0, 16, 4, 2.0, 0.5);
        let f = FederatedMetrics::combine(&[busy, idle]);
        assert_eq!(f.jobs, 4);
        assert!((f.sldwa - 2.0).abs() < 1e-12);
        let zero = FederatedMetrics::combine(&[]);
        assert_eq!(zero.jobs, 0);
        assert_eq!(zero.sldwa, 0.0);
        assert_eq!(zero.utilization, 0.0);
    }

    #[test]
    fn traffic_counters_sum_across_clusters() {
        let mut a = report(0, 8, 2, 1.0, 0.1);
        a.remote_in = 3;
        a.migrated_in = 1;
        a.lost = 2;
        let mut b = report(1, 8, 2, 1.0, 0.1);
        b.remote_in = 2;
        b.migrated_in = 4;
        let f = FederatedMetrics::combine(&[a, b]);
        assert_eq!(f.remote_routes, 5);
        assert_eq!(f.migrations, 5);
        assert_eq!(f.lost, 2);
    }
}
