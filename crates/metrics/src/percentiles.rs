//! Distributional views of per-job outcomes.
//!
//! Averages (even weighted ones) hide the tail; schedulers are often
//! judged on their 95th-percentile wait. This module summarizes the full
//! per-job distributions of a finished run.

use crate::job_metrics::JobOutcome;
use dynp_rms::CompletedJob;
use serde::{Deserialize, Serialize};

/// Quantile summary of one per-job quantity.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QuantileStats {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QuantileStats {
    /// Computes quantiles of `values` (empty → all zeros). Uses the
    /// nearest-rank definition on a sorted copy.
    pub fn of(mut values: Vec<f64>) -> QuantileStats {
        if values.is_empty() {
            return QuantileStats::default();
        }
        values.sort_by(f64::total_cmp);
        let pick = |q: f64| -> f64 {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            values[rank - 1]
        };
        QuantileStats {
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *values.last().unwrap(),
        }
    }
}

/// Per-job outcome distributions of one run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OutcomeDistributions {
    /// Wait time in seconds.
    pub wait_secs: QuantileStats,
    /// Slowdown.
    pub slowdown: QuantileStats,
    /// Bounded slowdown s⁶⁰.
    pub bounded_slowdown: QuantileStats,
    /// Response time in seconds.
    pub response_secs: QuantileStats,
}

impl OutcomeDistributions {
    /// Measures the distributions over the completed jobs of one run.
    pub fn measure(completed: &[CompletedJob]) -> OutcomeDistributions {
        let outcomes: Vec<JobOutcome> = completed.iter().map(JobOutcome::of).collect();
        OutcomeDistributions {
            wait_secs: QuantileStats::of(outcomes.iter().map(|o| o.wait_secs).collect()),
            slowdown: QuantileStats::of(outcomes.iter().map(|o| o.slowdown).collect()),
            bounded_slowdown: QuantileStats::of(
                outcomes.iter().map(|o| o.bounded_slowdown).collect(),
            ),
            response_secs: QuantileStats::of(outcomes.iter().map(|o| o.response_secs).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::{SimDuration, SimTime};
    use dynp_workload::{Job, JobId};

    #[test]
    fn nearest_rank_quantiles() {
        let q = QuantileStats::of((1..=100).map(|i| i as f64).collect());
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
    }

    #[test]
    fn small_samples_are_sane() {
        let q = QuantileStats::of(vec![7.0]);
        assert_eq!(q.p50, 7.0);
        assert_eq!(q.p99, 7.0);
        assert_eq!(q.max, 7.0);
        let empty = QuantileStats::of(vec![]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn quantiles_are_order_invariant() {
        let a = QuantileStats::of(vec![3.0, 1.0, 2.0]);
        let b = QuantileStats::of(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn distributions_from_completed_jobs() {
        let mk = |id: u32, wait_s: u64, run_s: u64| CompletedJob {
            job: Job::new(
                JobId(id),
                SimTime::ZERO,
                1,
                SimDuration::from_secs(run_s),
                SimDuration::from_secs(run_s),
            ),
            start: SimTime::from_secs(wait_s),
            end: SimTime::from_secs(wait_s + run_s),
        };
        // Waits 0, 100, 1000 over 100-second jobs.
        let jobs = [mk(0, 0, 100), mk(1, 100, 100), mk(2, 1_000, 100)];
        let d = OutcomeDistributions::measure(&jobs);
        assert_eq!(d.wait_secs.p50, 100.0);
        assert_eq!(d.wait_secs.max, 1_000.0);
        assert_eq!(d.slowdown.p50, 2.0); // (100+100)/100
        assert_eq!(d.slowdown.max, 11.0); // (1000+100)/100
        assert_eq!(d.response_secs.max, 1_100.0);
        // Bounded slowdown with runtime 100 > 60 equals plain slowdown.
        assert_eq!(d.bounded_slowdown.max, 11.0);
    }
}
