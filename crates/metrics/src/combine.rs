//! Multi-set result combination.
//!
//! §4.2: "ten synthetic job sets … are generated for each trace and are
//! used as input for the simulations. After the simulation run is
//! completed and all schedules are analyzed, the results are combined.
//! This is done by neglecting the maximum and minimum value, so that the
//! average is computed from the remaining eight results."

use crate::aggregate::SimMetrics;
use serde::{Deserialize, Serialize};

/// Averages `values` after dropping one minimum and one maximum (the
/// paper's combiner). With two or fewer values nothing can be dropped and
/// the plain average is returned; an empty slice yields 0.
pub fn combine_drop_extremes(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 | 2 => values.iter().sum::<f64>() / values.len() as f64,
        n => {
            let min_idx = values
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            // Pick the max among the remaining indices so a slice of
            // identical values drops two distinct elements.
            let max_idx = values
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != min_idx)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            let sum: f64 = values
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != min_idx && i != max_idx)
                .map(|(_, v)| v)
                .sum();
            sum / (n - 2) as f64
        }
    }
}

/// Combined (drop-min/max averaged) metrics over the K runs of one
/// experiment cell, with the per-run values kept for inspection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CombinedMetrics {
    /// Combined SLDwA.
    pub sldwa: f64,
    /// Combined utilization.
    pub utilization: f64,
    /// Combined plain average slowdown.
    pub avg_slowdown: f64,
    /// Combined average bounded slowdown.
    pub avg_bounded_slowdown: f64,
    /// Combined ARTwW (seconds).
    pub artww: f64,
    /// Combined average response time (seconds).
    pub avg_response_secs: f64,
    /// Combined average wait time (seconds).
    pub avg_wait_secs: f64,
    /// The per-run SLDwA values that went into the combination.
    pub per_run_sldwa: Vec<f64>,
    /// The per-run utilization values.
    pub per_run_utilization: Vec<f64>,
    /// Number of runs combined.
    pub runs: usize,
}

impl CombinedMetrics {
    /// Combines the per-run metrics of one experiment cell, dropping the
    /// extreme run per metric as the paper prescribes.
    pub fn combine(runs: &[SimMetrics]) -> CombinedMetrics {
        let take = |f: &dyn Fn(&SimMetrics) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
        let sldwa_values = take(&|m| m.sldwa);
        let util_values = take(&|m| m.utilization);
        CombinedMetrics {
            sldwa: combine_drop_extremes(&sldwa_values),
            utilization: combine_drop_extremes(&util_values),
            avg_slowdown: combine_drop_extremes(&take(&|m| m.avg_slowdown)),
            avg_bounded_slowdown: combine_drop_extremes(&take(&|m| m.avg_bounded_slowdown)),
            artww: combine_drop_extremes(&take(&|m| m.artww)),
            avg_response_secs: combine_drop_extremes(&take(&|m| m.avg_response_secs)),
            avg_wait_secs: combine_drop_extremes(&take(&|m| m.avg_wait_secs)),
            per_run_sldwa: sldwa_values,
            per_run_utilization: util_values,
            runs: runs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn drops_min_and_max() {
        // 10 values: drop 0 and 90, average the rest.
        let v = [10.0, 0.0, 20.0, 30.0, 90.0, 40.0, 50.0, 60.0, 70.0, 80.0];
        let expected = (10.0 + 20.0 + 30.0 + 40.0 + 50.0 + 60.0 + 70.0 + 80.0) / 8.0;
        assert!((combine_drop_extremes(&v) - expected).abs() < 1e-12);
    }

    #[test]
    fn small_slices_average_plainly() {
        assert_eq!(combine_drop_extremes(&[]), 0.0);
        assert_eq!(combine_drop_extremes(&[7.0]), 7.0);
        assert_eq!(combine_drop_extremes(&[4.0, 8.0]), 6.0);
    }

    #[test]
    fn three_values_keep_the_median() {
        assert_eq!(combine_drop_extremes(&[1.0, 100.0, 5.0]), 5.0);
    }

    #[test]
    fn identical_values_are_stable() {
        assert_eq!(combine_drop_extremes(&[3.0; 10]), 3.0);
    }

    #[test]
    fn combined_metrics_take_per_metric_extremes() {
        let mut runs = vec![SimMetrics::default(); 4];
        // sldwa: 1, 2, 3, 100 → drop 1 & 100 → (2+3)/2 = 2.5
        // util: 0.9, 0.1, 0.5, 0.6 → drop 0.1 & 0.9 → 0.55
        let sld = [1.0, 2.0, 3.0, 100.0];
        let util = [0.9, 0.1, 0.5, 0.6];
        for i in 0..4 {
            runs[i].sldwa = sld[i];
            runs[i].utilization = util[i];
        }
        let c = CombinedMetrics::combine(&runs);
        assert!((c.sldwa - 2.5).abs() < 1e-12);
        assert!((c.utilization - 0.55).abs() < 1e-12);
        assert_eq!(c.runs, 4);
        assert_eq!(c.per_run_sldwa, sld.to_vec());
    }

    proptest! {
        /// The combined value always lies within [min, max] of the inputs
        /// and is invariant under permutation.
        #[test]
        fn combine_is_bounded_and_permutation_invariant(
            mut v in proptest::collection::vec(-1e6f64..1e6, 1..20)
        ) {
            let c = combine_drop_extremes(&v);
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9, "{c} outside [{lo},{hi}]");
            v.reverse();
            let c2 = combine_drop_extremes(&v);
            prop_assert!((c - c2).abs() < 1e-9);
        }
    }
}
