//! Job-set level results measured from a finished simulation.

use crate::job_metrics::JobOutcome;
use dynp_des::SimTime;
use dynp_rms::CompletedJob;
use serde::{Deserialize, Serialize};

/// The aggregate metrics of one simulation run — everything Figures 1–4
/// and Tables 3–5 of the paper are built from.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Number of completed jobs.
    pub jobs: usize,
    /// **SLDwA** — slowdown weighted by job area, the paper's headline
    /// metric: `(Σ aᵢ·sᵢ) / (Σ aᵢ)`.
    pub sldwa: f64,
    /// Plain average slowdown (unweighted).
    pub avg_slowdown: f64,
    /// Average bounded slowdown `s⁶⁰`.
    pub avg_bounded_slowdown: f64,
    /// **ARTwW** — average response time weighted by job width:
    /// `(Σ wᵢ·rᵢ) / (Σ wᵢ)`, seconds.
    pub artww: f64,
    /// Plain average response time, seconds.
    pub avg_response_secs: f64,
    /// Plain average wait time, seconds.
    pub avg_wait_secs: f64,
    /// Utilization: total actual area / (machine size × span), where span
    /// runs from the first submission to the last completion.
    pub utilization: f64,
    /// First submission time (seconds).
    pub first_submit_secs: f64,
    /// Last completion time — the makespan end (seconds).
    pub last_end_secs: f64,
}

impl SimMetrics {
    /// Measures the completed jobs of one simulation on a machine of
    /// `machine_size` processors. Returns the zero value when no job
    /// completed.
    pub fn measure(machine_size: u32, completed: &[CompletedJob]) -> SimMetrics {
        if completed.is_empty() {
            return SimMetrics::default();
        }
        let mut area_sum = 0.0;
        let mut area_weighted_slowdown = 0.0;
        let mut slowdown_sum = 0.0;
        let mut bounded_sum = 0.0;
        let mut width_sum = 0.0;
        let mut width_weighted_response = 0.0;
        let mut response_sum = 0.0;
        let mut wait_sum = 0.0;
        let mut first_submit = SimTime::MAX;
        let mut last_end = SimTime::ZERO;

        for done in completed {
            let o = JobOutcome::of(done);
            area_sum += o.area;
            area_weighted_slowdown += o.area * o.slowdown;
            slowdown_sum += o.slowdown;
            bounded_sum += o.bounded_slowdown;
            width_sum += o.width as f64;
            width_weighted_response += o.width as f64 * o.response_secs;
            response_sum += o.response_secs;
            wait_sum += o.wait_secs;
            first_submit = first_submit.min(done.job.submit);
            last_end = last_end.max(done.end);
        }

        let n = completed.len() as f64;
        let span = last_end.saturating_since(first_submit).as_secs_f64();
        SimMetrics {
            jobs: completed.len(),
            sldwa: area_weighted_slowdown / area_sum,
            avg_slowdown: slowdown_sum / n,
            avg_bounded_slowdown: bounded_sum / n,
            artww: width_weighted_response / width_sum,
            avg_response_secs: response_sum / n,
            avg_wait_secs: wait_sum / n,
            utilization: if span > 0.0 {
                area_sum / (machine_size as f64 * span)
            } else {
                0.0
            },
            first_submit_secs: first_submit.as_secs_f64(),
            last_end_secs: last_end.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::{Job, JobId};

    fn done(id: u32, submit_s: u64, start_s: u64, width: u32, actual_s: u64) -> CompletedJob {
        let job = Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(actual_s),
            SimDuration::from_secs(actual_s),
        );
        CompletedJob {
            job,
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(start_s + actual_s),
        }
    }

    #[test]
    fn empty_run_measures_zero() {
        let m = SimMetrics::measure(16, &[]);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.sldwa, 0.0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn sldwa_matches_papers_weighting() {
        // Paper example: both jobs width 1, waits 600 s;
        // job A runs 0.5 s (slowdown 1201), job B runs 20 s (slowdown 31).
        // SLDwA = (600.5 + 620) / (0.5 + 20) = 1220.5 / 20.5.
        let a = done(0, 0, 600, 1, 1); // placeholder; sub-second needs ms
        let _ = a;
        let job_a = Job::new(
            JobId(0),
            SimTime::ZERO,
            1,
            SimDuration::from_millis(500),
            SimDuration::from_millis(500),
        );
        let a = CompletedJob {
            job: job_a,
            start: SimTime::from_secs(600),
            end: SimTime::from_secs(600) + SimDuration::from_millis(500),
        };
        let job_b = Job::new(
            JobId(1),
            SimTime::ZERO,
            1,
            SimDuration::from_secs(20),
            SimDuration::from_secs(20),
        );
        let b = CompletedJob {
            job: job_b,
            start: SimTime::from_secs(600),
            end: SimTime::from_secs(620),
        };
        let m = SimMetrics::measure(1, &[a, b]);
        let expected = (600.5 + 620.0) / 20.5;
        assert!(
            (m.sldwa - expected).abs() < 1e-9,
            "{} vs {expected}",
            m.sldwa
        );
        // Unweighted average is dominated by the short job instead.
        assert!((m.avg_slowdown - (1_201.0 + 31.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn artww_weights_by_width() {
        // Job 0: width 1, response 100; job 1: width 3, response 200.
        let a = done(0, 0, 50, 1, 50); // response 100
        let b = done(1, 0, 100, 3, 100); // response 200
        let m = SimMetrics::measure(4, &[a, b]);
        assert!((m.artww - (1.0 * 100.0 + 3.0 * 200.0) / 4.0).abs() < 1e-9);
        assert!((m.avg_response_secs - 150.0).abs() < 1e-9);
        assert!((m.avg_wait_secs - 75.0).abs() < 1e-9);
    }

    #[test]
    fn sldwa_equals_artww_identity_for_unit_area_over_width() {
        // The paper notes SLDwA equals ARTwW up to the job-dependent
        // factor wᵢ/aᵢ; for jobs with IDENTICAL run time r the identity
        // is exact: SLDwA = ARTwW / r.
        let jobs = [
            done(0, 0, 10, 2, 100),
            done(1, 5, 120, 3, 100),
            done(2, 9, 230, 1, 100),
        ];
        let m = SimMetrics::measure(4, &jobs);
        assert!(
            (m.sldwa - m.artww / 100.0).abs() < 1e-9,
            "sldwa {} vs artww/r {}",
            m.sldwa,
            m.artww / 100.0
        );
    }

    #[test]
    fn utilization_of_back_to_back_run() {
        // One width-4 job on a 4-proc machine, no wait: utilization 1.
        let m = SimMetrics::measure(4, &[done(0, 0, 0, 4, 100)]);
        assert!((m.utilization - 1.0).abs() < 1e-12);
        // Same job on an 8-proc machine: 0.5.
        let m = SimMetrics::measure(8, &[done(0, 0, 0, 4, 100)]);
        assert!((m.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_span_runs_from_first_submit_to_last_end() {
        // Submit at 0, idle until 100, run 100..200 on full machine:
        // area = 4×100, span = 200 ⇒ utilization 0.5.
        let m = SimMetrics::measure(4, &[done(0, 0, 100, 4, 100)]);
        assert!((m.utilization - 0.5).abs() < 1e-12);
        assert_eq!(m.first_submit_secs, 0.0);
        assert_eq!(m.last_end_secs, 200.0);
    }

    #[test]
    fn slowdown_floors_at_one_for_no_wait() {
        let m = SimMetrics::measure(4, &[done(0, 0, 0, 1, 100)]);
        assert_eq!(m.sldwa, 1.0);
        assert_eq!(m.avg_slowdown, 1.0);
        assert_eq!(m.avg_bounded_slowdown, 1.0);
    }
}
