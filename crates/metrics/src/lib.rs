//! # dynp-metrics — scheduling performance metrics
//!
//! Implements every metric the paper defines (§4.1):
//!
//! * job slowdown `s = response / run time = 1 + wait / run time`,
//! * bounded slowdown `s⁶⁰ = max(response / max(run time, 60), 1)`,
//! * **SLDwA** — slowdown weighted by job area (area = run time ×
//!   requested resources), the paper's headline metric:
//!   `SLDwA = (Σ aᵢ·sᵢ) / (Σ aᵢ)`,
//! * **ARTwW** — average response time weighted by job width,
//! * utilization,
//!
//! in three layers:
//!
//! * [`job_metrics`] — per-completed-job quantities,
//! * [`aggregate`] — job-set level results ([`SimMetrics`]) measured from
//!   a finished simulation,
//! * [`objective`] — evaluation of *planned* schedules, the single value
//!   per policy the dynP decider compares,
//! * [`combine`] — the paper's multi-set result combiner: drop the best
//!   and worst of the K runs, average the rest,
//! * [`reservations`] — advance-reservation admission counters (acceptance
//!   rate, booked-area utilization),
//! * [`faults`] — fault-injection counters (outages, evictions, retries,
//!   lost jobs, downtime),
//! * [`federation`] — multi-cluster aggregation: per-cluster reports and
//!   the area-weighted federation-wide combine.

pub mod aggregate;
pub mod combine;
pub mod faults;
pub mod federation;
pub mod job_metrics;
pub mod latency;
pub mod objective;
pub mod percentiles;
pub mod reservations;
pub mod timeline;

pub use aggregate::SimMetrics;
pub use combine::{combine_drop_extremes, CombinedMetrics};
pub use faults::FaultStats;
pub use federation::{ClusterReport, FederatedMetrics};
pub use job_metrics::{bounded_slowdown, slowdown, JobOutcome};
pub use latency::LatencyHistogram;
pub use objective::Objective;
pub use percentiles::{OutcomeDistributions, QuantileStats};
pub use reservations::ReservationStats;
