//! Fault-injection and recovery metrics.
//!
//! Chaos runs produce a third result axis next to the job and
//! reservation metrics: how much capacity the outages took away, how
//! many job attempts failed (and why), how the retry policy resolved
//! them, and — combined with the job-side SLDwA — what the failures cost
//! the batch workload.

use serde::{Deserialize, Serialize};

/// Counters accumulated over one fault-injected run.
///
/// Every field is an exact integer so the struct is `Hash + Eq` — it
/// lives on the driver's snapshot path, where bit-identical fingerprints
/// across snapshot → restore are a hard requirement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node-failure events processed.
    pub node_downs: u64,
    /// Node-repair events processed.
    pub node_ups: u64,
    /// Running jobs evicted because a node under them went down.
    pub evictions: u64,
    /// Job attempts killed by an application crash.
    pub crashes: u64,
    /// Job attempts killed at their runtime estimate (overrun).
    pub overruns: u64,
    /// Failed attempts that were requeued for a retry.
    pub retries: u64,
    /// Jobs that exhausted the retry budget and left the system.
    pub lost: u64,
    /// Job starts that landed on a down node — always zero; counted (not
    /// asserted) so the chaos harness can verify the invariant end to end.
    pub down_node_allocations: u64,
    /// Total node-milliseconds of downtime across all outages (exact).
    pub downtime_ms: u64,
}

impl FaultStats {
    /// True when the run saw no fault activity at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Total failed attempts, any cause.
    pub fn failures(&self) -> u64 {
        self.evictions + self.crashes + self.overruns
    }

    /// Total node-seconds of downtime across all outages (derived view
    /// of the exact [`FaultStats::downtime_ms`] counter).
    pub fn downtime_secs(&self) -> f64 {
        self.downtime_ms as f64 / 1_000.0
    }

    /// Mean fraction of the machine unavailable over `span_secs`
    /// (node-seconds of downtime over total node-seconds offered).
    pub fn unavailability(&self, machine_size: u32, span_secs: f64) -> f64 {
        let offered = machine_size as f64 * span_secs;
        if offered <= 0.0 {
            0.0
        } else {
            self.downtime_secs() / offered
        }
    }

    /// Accumulates another run's counters into this one (for per-cell
    /// aggregation over replicated job sets).
    pub fn merge(&mut self, other: &FaultStats) {
        self.node_downs += other.node_downs;
        self.node_ups += other.node_ups;
        self.evictions += other.evictions;
        self.crashes += other.crashes;
        self.overruns += other.overruns;
        self.retries += other.retries;
        self.lost += other.lost;
        self.down_node_allocations += other.down_node_allocations;
        self.downtime_ms += other.downtime_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_no_activity() {
        let s = FaultStats::default();
        assert!(s.is_empty());
        assert_eq!(s.failures(), 0);
        assert_eq!(s.unavailability(128, 3600.0), 0.0);
    }

    #[test]
    fn derived_rates_reflect_counters() {
        let s = FaultStats {
            node_downs: 4,
            node_ups: 4,
            evictions: 3,
            crashes: 2,
            overruns: 1,
            retries: 5,
            lost: 1,
            downtime_ms: 500_000,
            ..Default::default()
        };
        assert!(!s.is_empty());
        assert_eq!(s.failures(), 6);
        // 500 node-secs down on a 100-node machine over 100 s → 5%.
        assert!((s.unavailability(100, 100.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = FaultStats {
            node_downs: 1,
            evictions: 2,
            downtime_ms: 10_000,
            ..Default::default()
        };
        let b = FaultStats {
            node_downs: 3,
            node_ups: 3,
            crashes: 1,
            retries: 2,
            lost: 1,
            downtime_ms: 5_500,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.node_downs, 4);
        assert_eq!(a.node_ups, 3);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.retries, 2);
        assert_eq!(a.lost, 1);
        assert_eq!(a.downtime_ms, 15_500);
        assert!((a.downtime_secs() - 15.5).abs() < 1e-12);
    }
}
