//! Exploration of the CI configurations: the chaos + reservation
//! protocols uphold the standard invariant battery on every reachable
//! interleaving, and the search itself is deterministic and
//! strategy-independent.

use dynp_mc::{
    explore, scheduler_factory, standard, ExploreConfig, Scenario, ScenarioConfig, Strategy,
};

const CI_CONFIG: ScenarioConfig = ScenarioConfig {
    nodes: 2,
    jobs: 3,
    outages: 1,
    reservations: 1,
};

#[test]
fn ci_config_has_no_violations_under_any_interleaving() {
    let scenario = Scenario::build(&CI_CONFIG);
    let invariants = standard();
    for scheduler in ["fcfs", "dynp"] {
        let make = scheduler_factory(scheduler).unwrap();
        for strategy in [Strategy::Dfs, Strategy::Bfs] {
            let result = explore(
                &scenario,
                make.as_ref(),
                &invariants,
                &ExploreConfig {
                    strategy,
                    ..ExploreConfig::default()
                },
            );
            assert!(
                result.violation.is_none(),
                "{scheduler}/{strategy:?}: {:?}",
                result.violation
            );
            assert!(result.stats.explored > 0);
            assert!(
                result.stats.terminal_states > 0,
                "no path drained the queue"
            );
            assert_eq!(result.stats.truncated, 0, "CI config must fit the bounds");
        }
    }
}

#[test]
fn dfs_and_bfs_explore_the_same_state_graph() {
    // The reachable state set is a property of the scenario, not of the
    // frontier discipline; only the visit order (and peak frontier)
    // differs.
    let scenario = Scenario::build(&CI_CONFIG);
    let invariants = standard();
    let make = scheduler_factory("dynp").unwrap();
    let run = |strategy| {
        explore(
            &scenario,
            make.as_ref(),
            &invariants,
            &ExploreConfig {
                strategy,
                ..ExploreConfig::default()
            },
        )
        .stats
    };
    let dfs = run(Strategy::Dfs);
    let bfs = run(Strategy::Bfs);
    assert_eq!(dfs.explored, bfs.explored);
    assert_eq!(dfs.deduplicated, bfs.deduplicated);
    assert_eq!(dfs.terminal_states, bfs.terminal_states);
}

#[test]
fn exploration_is_deterministic() {
    let scenario = Scenario::build(&CI_CONFIG);
    let invariants = standard();
    let make = scheduler_factory("fcfs").unwrap();
    let cfg = ExploreConfig::default();
    let a = explore(&scenario, make.as_ref(), &invariants, &cfg).stats;
    let b = explore(&scenario, make.as_ref(), &invariants, &cfg).stats;
    assert_eq!(a, b);
}

#[test]
fn state_cap_truncates_instead_of_diverging() {
    let scenario = Scenario::build(&CI_CONFIG);
    let invariants = standard();
    let make = scheduler_factory("fcfs").unwrap();
    let result = explore(
        &scenario,
        make.as_ref(),
        &invariants,
        &ExploreConfig {
            max_states: 10,
            ..ExploreConfig::default()
        },
    );
    assert!(result.violation.is_none());
    assert_eq!(result.stats.explored, 10);
    assert!(result.stats.truncated > 0);
}
