//! Sanity check that the checker actually catches protocol bugs: with
//! the seeded `mc-mutant-stale-finish` driver fault compiled in (the
//! staleness test drops the attempt tag and only asks "is the job
//! running?"), exploration must find a violation, shrink it to the
//! minimal scenario, and the shrunk schedule must replay through the
//! production `simulate_chaos` entry point.
//!
//! Run with `cargo test -p dynp-mc --features mutants`.
#![cfg(feature = "mutants")]

use dynp_des::{SimDuration, SimTime};
use dynp_mc::{explore, replay, scheduler_factory, shrink, standard, ExploreConfig, Scenario};
use dynp_obs::{TraceLevel, Tracer};
use dynp_rms::AdmissionConfig;
use dynp_sim::simulate_chaos;
use dynp_workload::{Job, JobId, NodeOutage, ReservationRequest, RetryPolicy};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A job is evicted mid-run by a node outage and retried; its first
/// attempt's `Finish` event is still pending when the second attempt is
/// running. The real driver ignores it (stale attempt tag); the mutant
/// honors it and completes the job at the wrong instant. Two irrelevant
/// elements (a late job, a far-future reservation) ride along so the
/// shrinker has something to delete.
fn mutant_bait() -> Scenario {
    Scenario {
        name: "mutant-bait".to_string(),
        machine: 2,
        jobs: vec![
            // Attempt 1 starts at t=0 (Finish tagged attempt 1 lands at
            // t=100s), is evicted by the outage at t=50s, and attempt 2
            // runs 55s..155s — so at t=100s the job is running again and
            // only the attempt tag exposes the stale event.
            Job::new(
                JobId(0),
                SimTime::from_secs(0),
                1,
                SimDuration::from_secs(200),
                SimDuration::from_secs(100),
            ),
            // Irrelevant: submits after everything interesting.
            Job::new(
                JobId(1),
                SimTime::from_secs(300),
                1,
                SimDuration::from_secs(10),
                SimDuration::from_secs(10),
            ),
        ],
        requests: vec![ReservationRequest {
            id: 0,
            submit: SimTime::from_secs(0),
            start: SimTime::from_secs(400),
            duration: SimDuration::from_secs(10),
            width: 1,
            cancel_at: None,
        }],
        outages: vec![NodeOutage {
            node: 0,
            down_at: SimTime::from_secs(50),
            up_at: SimTime::from_secs(60),
        }],
        job_faults: Vec::new(),
        retry: RetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_secs(5),
            factor: 1.0,
        },
        admission: AdmissionConfig::default(),
    }
}

#[test]
fn checker_finds_and_shrinks_the_seeded_stale_finish_bug() {
    let scenario = mutant_bait();
    let invariants = standard();
    let make = scheduler_factory("fcfs").unwrap();
    let cfg = ExploreConfig::default();

    let result = explore(&scenario, make.as_ref(), &invariants, &cfg);
    let violation = result
        .violation
        .expect("the mutant must be caught by exploration");
    assert!(
        violation.detail.contains("completed at the wrong time"),
        "unexpected violation: {} / {}",
        violation.invariant,
        violation.detail
    );

    let shrunk = shrink(&scenario, &violation, make.as_ref(), &invariants, &cfg);
    // The late job and the far-future reservation are deleted; the
    // evicted job and the outage that evicts it are both load-bearing.
    assert_eq!(shrunk.removed.len(), 2, "removed: {:?}", shrunk.removed);
    assert_eq!(shrunk.scenario.size(), 2);
    assert_eq!(shrunk.scenario.jobs.len(), 1);
    assert_eq!(shrunk.scenario.outages.len(), 1);
    assert!(
        shrunk
            .violation
            .detail
            .contains("completed at the wrong time"),
        "shrunk violation drifted: {}",
        shrunk.violation.detail
    );

    // The traced replay (what the bin dumps as the counterexample)
    // reproduces the panic at the end of the schedule and captures the
    // event prefix plus a trace.
    let (events, trace, panicked) = replay(
        &shrunk.scenario,
        make.as_ref(),
        &shrunk.violation.schedule,
        Tracer::enabled(TraceLevel::All),
    );
    assert!(
        panicked
            .as_deref()
            .unwrap_or_default()
            .contains("completed at the wrong time"),
        "replay of the schedule must end in the violation: {panicked:?}"
    );
    assert!(!events.is_empty());
    assert!(!trace.records.is_empty());

    // The minimal counterexample needs no tie permutation — it is the
    // plain FIFO schedule, so the production entry point reproduces it.
    assert!(
        shrunk.violation.is_fifo(),
        "schedule: {:?}",
        shrunk.violation.schedule
    );
    let set = shrunk.scenario.job_set();
    let requests = shrunk.scenario.requests.clone();
    let admission = shrunk.scenario.admission;
    let faults = shrunk.scenario.fault_plan();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        let mut scheduler = scheduler_factory("fcfs").unwrap()();
        simulate_chaos(
            &set,
            scheduler.as_mut(),
            &requests,
            admission,
            &faults,
            Tracer::disabled(),
        )
    }));
    std::panic::set_hook(prev);
    let payload = replayed.expect_err("simulate_chaos must reproduce the mutant panic");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        text.contains("completed at the wrong time"),
        "replay panicked differently: {text}"
    );
}
