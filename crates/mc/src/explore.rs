//! The exploration engine: exhaustive DFS/BFS over event interleavings.
//!
//! A state is a full [`SimSnapshot`] of the chaos driver (RMS state,
//! attempt counters, statistics, pending event queue with exact tie-break
//! ranks, scheduler cross-event state). Branching happens only at
//! same-instant ties, and only over the orders the dependency resolver
//! ([`crate::deps`]) cannot prove commutable. Revisits are pruned by a
//! 128-bit fingerprint set, so the reachable state *graph* is walked, not
//! the (exponentially larger) schedule tree.
//!
//! Every popped state runs the full invariant battery; drained leaves
//! additionally run the driver's own terminal asserts (job conservation,
//! empty book) via [`ChaosDriver::finish_detached`]. Panics anywhere in
//! the driver — including seeded mutants — are caught and reported as
//! violations with the event schedule that reached them.

use crate::deps::branch_choices;
use crate::invariants::Invariant;
use crate::scenario::Scenario;
use dynp_des::SimTime;
use dynp_obs::{TraceSnapshot, Tracer};
use dynp_rms::Scheduler;
use dynp_sim::{ChaosDriver, Event, SimSnapshot};
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How the frontier is ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: reaches deep violations fast, frontier stays small.
    Dfs,
    /// Breadth-first: finds a *shortest* violating schedule first.
    Bfs,
}

impl Strategy {
    /// Parses `"dfs"`/`"bfs"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.to_ascii_lowercase().as_str() {
            "dfs" => Some(Strategy::Dfs),
            "bfs" => Some(Strategy::Bfs),
            _ => None,
        }
    }
}

/// Exploration bounds and ordering.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Frontier discipline.
    pub strategy: Strategy,
    /// Maximum schedule length (events along one path); deeper states are
    /// truncated, not expanded.
    pub max_depth: usize,
    /// Safety cap on expanded states; exceeding it stops the run.
    pub max_states: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Dfs,
            max_depth: 256,
            max_states: 200_000,
        }
    }
}

/// Counters describing one exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// States popped and expanded (each a distinct fingerprint).
    pub explored: u64,
    /// Transitions that landed on an already-visited fingerprint.
    pub deduplicated: u64,
    /// Drained leaves that passed the terminal checks.
    pub terminal_states: u64,
    /// States cut off by the depth or state cap.
    pub truncated: u64,
    /// Largest frontier size reached.
    pub peak_frontier: usize,
}

/// A safety violation, addressed by the exact event schedule that
/// reproduces it from the initial state.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated invariant, or `"panic"`/`"terminal"` for
    /// driver asserts tripped mid-step or at the drain check.
    pub invariant: String,
    /// Human-readable detail (invariant message or panic payload).
    pub detail: String,
    /// Tie-rank choices from the initial state: replaying
    /// `step_nth_tied(schedule[i])` for each `i` deterministically
    /// reaches the violation. All zeros ⇒ the plain FIFO run
    /// ([`dynp_sim::simulate_chaos`]) hits it too.
    pub schedule: Vec<usize>,
}

impl Violation {
    /// True when the violating schedule is the plain FIFO order, i.e.
    /// `simulate_chaos` itself reproduces the failure.
    pub fn is_fifo(&self) -> bool {
        self.schedule.iter().all(|&n| n == 0)
    }
}

/// The result of one exploration: counters plus the first violation (the
/// search stops at it).
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Search counters.
    pub stats: ExploreStats,
    /// First violation found, if any.
    pub violation: Option<Violation>,
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// RAII guard silencing the global panic hook: exploration *expects* to
/// catch driver panics (that is how seeded mutants surface), and the
/// default hook would spray backtraces for every caught one.
struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn new() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exhaustively explores every reachable interleaving of `scenario`
/// under the given exploration bounds, checking `invariants` at every
/// state. Stops at the first violation.
///
/// `make_scheduler` is called once per exploration; the scheduler must
/// support snapshot/restore (every scheduler in this workspace does).
pub fn explore(
    scenario: &Scenario,
    make_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    invariants: &[Invariant],
    cfg: &ExploreConfig,
) -> Exploration {
    let set = scenario.job_set();
    let faults = scenario.fault_plan();
    let mut scheduler = make_scheduler();
    let mut driver = ChaosDriver::new(
        &set,
        scheduler.as_mut(),
        &scenario.requests,
        scenario.admission,
        &faults,
        Tracer::disabled(),
    );

    let _quiet = QuietPanics::new();
    let mut stats = ExploreStats::default();
    let mut visited: HashSet<u128> = HashSet::new();
    let init = driver.snapshot();
    visited.insert(init.fingerprint());
    let mut frontier: VecDeque<(SimSnapshot, Vec<usize>)> = VecDeque::new();
    frontier.push_back((init, Vec::new()));

    while let Some((snap, path)) = match cfg.strategy {
        Strategy::Dfs => frontier.pop_back(),
        Strategy::Bfs => frontier.pop_front(),
    } {
        if stats.explored >= cfg.max_states {
            stats.truncated += 1;
            break;
        }
        stats.explored += 1;
        driver.restore(&snap);

        for inv in invariants {
            if let Err(detail) = (inv.check)(&driver, scenario) {
                return Exploration {
                    stats,
                    violation: Some(Violation {
                        invariant: inv.name.to_string(),
                        detail,
                        schedule: path,
                    }),
                };
            }
        }

        let tied = driver.tied_events();
        if tied.is_empty() {
            // Drained leaf: run the driver's own terminal asserts.
            match catch_unwind(AssertUnwindSafe(|| driver.finish_detached())) {
                Ok(_) => stats.terminal_states += 1,
                Err(payload) => {
                    return Exploration {
                        stats,
                        violation: Some(Violation {
                            invariant: "terminal".to_string(),
                            detail: panic_text(payload),
                            schedule: path,
                        }),
                    };
                }
            }
            continue;
        }
        if path.len() >= cfg.max_depth {
            stats.truncated += 1;
            continue;
        }

        for n in branch_choices(&driver, &tied) {
            driver.restore(&snap);
            let stepped = catch_unwind(AssertUnwindSafe(|| driver.step_nth_tied(n)));
            let mut next_path = path.clone();
            next_path.push(n);
            match stepped {
                Err(payload) => {
                    return Exploration {
                        stats,
                        violation: Some(Violation {
                            invariant: "panic".to_string(),
                            detail: panic_text(payload),
                            schedule: next_path,
                        }),
                    };
                }
                Ok(None) => unreachable!("branch rank {n} out of {} ties", tied.len()),
                Ok(Some(_)) => {
                    if visited.insert(driver.fingerprint()) {
                        frontier.push_back((driver.snapshot(), next_path));
                        stats.peak_frontier = stats.peak_frontier.max(frontier.len());
                    } else {
                        stats.deduplicated += 1;
                    }
                }
            }
        }
    }

    Exploration {
        stats,
        violation: None,
    }
}

/// Deterministically replays a tie-rank schedule from the initial state,
/// recording the dispatched events, with an optional tracer threaded
/// through the whole stack. A trailing panic (the violation itself) is
/// caught so the events and trace up to it are still returned.
///
/// Returns the dispatched `(time, event)` prefix, the trace, and the
/// panic text if the final step blew up.
pub fn replay(
    scenario: &Scenario,
    make_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    schedule: &[usize],
    tracer: Tracer,
) -> (Vec<(SimTime, Event)>, TraceSnapshot, Option<String>) {
    let set = scenario.job_set();
    let faults = scenario.fault_plan();
    let mut scheduler = make_scheduler();
    let mut driver = ChaosDriver::new(
        &set,
        scheduler.as_mut(),
        &scenario.requests,
        scenario.admission,
        &faults,
        tracer.clone(),
    );
    let _quiet = QuietPanics::new();
    let mut events = Vec::new();
    let mut panicked = None;
    for &n in schedule {
        match catch_unwind(AssertUnwindSafe(|| driver.step_nth_tied(n))) {
            Ok(Some((t, ev))) => events.push((t, ev)),
            Ok(None) => break,
            Err(payload) => {
                panicked = Some(panic_text(payload));
                break;
            }
        }
    }
    (events, tracer.snapshot(), panicked)
}
