//! Greedy delta-debugging shrinker for violating scenarios.
//!
//! Given a scenario whose exploration found a violation, repeatedly try
//! deleting one element (a job, a reservation request, an outage, a
//! planned job fault) and re-explore the smaller scenario. If the same
//! invariant still fails, keep the deletion; otherwise put the element
//! back. Iterate to a fixpoint: the result is 1-minimal — removing any
//! single remaining element makes the violation disappear.

use crate::explore::{explore, ExploreConfig, Violation};
use crate::invariants::Invariant;
use crate::scenario::Scenario;
use dynp_rms::Scheduler;

/// The outcome of shrinking one violating scenario.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The 1-minimal scenario that still violates.
    pub scenario: Scenario,
    /// The violation found in the minimal scenario (same invariant as
    /// the original; schedule may differ).
    pub violation: Violation,
    /// Elements deleted, as human-readable labels.
    pub removed: Vec<String>,
    /// Explorations run while shrinking (the shrink cost).
    pub attempts: u64,
}

/// Shrinks `scenario` to a 1-minimal configuration that still violates
/// `violation.invariant` under the same exploration setup.
pub fn shrink(
    scenario: &Scenario,
    violation: &Violation,
    make_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    invariants: &[Invariant],
    cfg: &ExploreConfig,
) -> ShrinkResult {
    let mut current = scenario.clone();
    let mut best = violation.clone();
    let mut removed = Vec::new();
    let mut attempts = 0u64;

    loop {
        let mut improved = false;
        // Candidate deletions, re-enumerated against the current
        // scenario each pass (indices shift after every kept deletion).
        let candidates: Vec<(String, Scenario)> = (0..current.jobs.len())
            .map(|i| {
                (
                    format!("job {}", current.jobs[i].id),
                    current.without_job(i),
                )
            })
            .chain((0..current.requests.len()).map(|i| {
                (
                    format!("request {}", current.requests[i].id),
                    current.without_request(i),
                )
            }))
            .chain((0..current.outages.len()).map(|i| {
                (
                    format!("outage node {}", current.outages[i].node),
                    current.without_outage(i),
                )
            }))
            .chain((0..current.job_faults.len()).map(|i| {
                (
                    format!("fault on job {}", current.job_faults[i].0),
                    current.without_job_fault(i),
                )
            }))
            .collect();

        for (label, candidate) in candidates {
            attempts += 1;
            let result = explore(&candidate, make_scheduler, invariants, cfg);
            if let Some(v) = result.violation {
                if v.invariant == best.invariant {
                    current = candidate;
                    best = v;
                    removed.push(label);
                    improved = true;
                    break; // restart candidate enumeration on the smaller scenario
                }
            }
        }
        if !improved {
            break;
        }
    }

    ShrinkResult {
        scenario: current,
        violation: best,
        removed,
        attempts,
    }
}
