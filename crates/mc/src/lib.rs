//! dynp-mc — exhaustive model checker for the chaos + reservation
//! protocols, built on snapshotable driver state.
//!
//! Simulation runs in this workspace are deterministic, but determinism
//! only certifies *one* event order per input. The protocols' actual
//! promises — no stale completion is ever honored, reservations survive
//! node loss via downgrade/revoke repair, jobs are never lost or
//! duplicated — quantify over every order of same-instant events: a
//! node failure tied with a job finish, a cancellation tied with a
//! window start. This crate checks those orders *exhaustively* for
//! small closed configurations:
//!
//! * [`scenario`] — derives tiny deterministic worlds (machine, jobs,
//!   outages, reservations) whose instants deliberately collide.
//! * [`explore`] — walks every reachable interleaving by snapshotting
//!   the full driver state ([`dynp_sim::SimSnapshot`]), branching at
//!   ties, and pruning revisits by 128-bit state fingerprint. DFS or
//!   BFS; BFS finds shortest counterexamples.
//! * [`deps`] — the dependency resolver: proves most tied events
//!   commute (stale attempt tags, dead windows, reservation starts) so
//!   the branching factor stays near 1 except at genuine races.
//! * [`invariants`] — the pluggable safety battery checked at every
//!   state, plus the driver's own terminal asserts at drained leaves.
//! * [`shrink`] — greedy delta-debugging: deletes scenario elements one
//!   at a time while the violation persists, yielding a 1-minimal
//!   counterexample with a deterministic replay schedule.
//!
//! The `model_check` binary wraps all of this for CI: it explores a
//! configuration matrix, exits non-zero on violation, and dumps the
//! shrunk scenario plus a `dynp-obs` trace of the violating replay.

pub mod deps;
pub mod explore;
pub mod invariants;
pub mod scenario;
pub mod shrink;

pub use explore::{explore, replay, Exploration, ExploreConfig, ExploreStats, Strategy, Violation};
pub use invariants::{standard, Invariant};
pub use scenario::{Scenario, ScenarioConfig};
pub use shrink::{shrink, ShrinkResult};

use dynp_core::DeciderKind;
use dynp_rms::{Policy, Scheduler};
use dynp_sim::SchedulerSpec;

/// A factory producing a fresh scheduler per exploration.
pub type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

/// Scheduler recipes the checker knows by name (`--scheduler`).
///
/// Returns a factory producing a fresh scheduler per exploration:
/// `"fcfs"` (the static baseline, minimal cross-event state) and
/// `"dynp"` (the paper's self-tuning scheduler with the advanced
/// decider, maximal cross-event state — policy history, decider
/// bookkeeping, queue log).
pub fn scheduler_factory(name: &str) -> Option<SchedulerFactory> {
    let spec = match name.to_ascii_lowercase().as_str() {
        "fcfs" => SchedulerSpec::Static(Policy::Fcfs),
        "sjf" => SchedulerSpec::Static(Policy::Sjf),
        "dynp" => SchedulerSpec::dynp(DeciderKind::Advanced),
        _ => return None,
    };
    Some(Box::new(move || spec.build()))
}
