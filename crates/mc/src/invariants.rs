//! Pluggable safety invariants, checked at every explored state.
//!
//! Each invariant is a pure predicate over the driver's observable state
//! (RMS state, fault statistics, reservation report, pending event
//! queue). A violation returns a human-readable detail string; the
//! explorer attaches the event schedule that reached the state and hands
//! both to the shrinker.

use crate::scenario::Scenario;
use dynp_sim::{ChaosDriver, Event};

/// One named safety property.
#[derive(Clone, Copy)]
pub struct Invariant {
    /// Short identifier (appears in violations and reports).
    pub name: &'static str,
    /// The predicate: `Err(detail)` on violation.
    pub check: fn(&ChaosDriver<'_>, &Scenario) -> Result<(), String>,
}

impl std::fmt::Debug for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Invariant({})", self.name)
    }
}

/// The standard battery: every safety property the chaos + reservation
/// protocols promise.
pub fn standard() -> Vec<Invariant> {
    vec![
        Invariant {
            name: "job-conservation",
            check: job_conservation,
        },
        Invariant {
            name: "no-down-node-occupancy",
            check: no_down_node_occupancy,
        },
        Invariant {
            name: "free-accounting",
            check: free_accounting,
        },
        Invariant {
            name: "reservation-repair-fixpoint",
            check: reservation_repair_fixpoint,
        },
        Invariant {
            name: "attempt-tag-integrity",
            check: attempt_tag_integrity,
        },
        Invariant {
            name: "exact-instant-completion",
            check: exact_instant_completion,
        },
        Invariant {
            name: "book-consistency",
            check: book_consistency,
        },
    ]
}

/// Every job is in exactly one place: waiting, running, completed, lost,
/// or in flight as a pending `Arrive`/`Resubmit` event.
fn job_conservation(d: &ChaosDriver<'_>, scenario: &Scenario) -> Result<(), String> {
    let st = d.core().state();
    let total = scenario.jobs.len();
    let mut seen = vec![0u32; total];
    let mut tally = |id: u32, place: &str| -> Result<(), String> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| format!("unknown job {id} in {place}"))?;
        *slot += 1;
        Ok(())
    };
    for j in st.waiting() {
        tally(j.id.0, "waiting")?;
    }
    for r in st.running() {
        tally(r.job.id.0, "running")?;
    }
    for c in st.completed() {
        tally(c.job.id.0, "completed")?;
    }
    for l in st.lost() {
        tally(l.job.id.0, "lost")?;
    }
    for (_, _, ev) in d.pending_events() {
        match ev {
            Event::Arrive(id) | Event::Resubmit(id) => tally(id.0, "pending")?,
            _ => {}
        }
    }
    for (id, n) in seen.iter().enumerate() {
        if *n != 1 {
            return Err(format!(
                "job {id} appears {n} times across waiting/running/completed/lost/pending"
            ));
        }
    }
    Ok(())
}

/// No running job occupies a down node, and the driver's own counted
/// check agrees.
fn no_down_node_occupancy(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    let st = d.core().state();
    for r in st.running() {
        for n in st.nodes_of(r.job.id) {
            if st.is_node_down(n) {
                return Err(format!("job {} occupies down node {n}", r.job.id));
            }
        }
    }
    let counted = d.core().fault_stats().down_node_allocations;
    if counted != 0 {
        return Err(format!("driver counted {counted} down-node allocations"));
    }
    Ok(())
}

/// The free-processor counter equals the number of up-and-unoccupied
/// nodes (the node map is the ground truth).
fn free_accounting(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    let st = d.core().state();
    let ground_truth = (0..st.machine_size())
        .filter(|&n| !st.is_node_down(n) && st.node_occupant(n).is_none())
        .count() as u32;
    if st.free_processors() != ground_truth {
        return Err(format!(
            "free counter {} but {} nodes are up and unoccupied",
            st.free_processors(),
            ground_truth
        ));
    }
    Ok(())
}

/// Schedule repair is a fixpoint: between events, every admitted window
/// still fits the current capacity at its promised (possibly downgraded)
/// width — a repair run *now* would change nothing. This is the
/// guarantee-preservation property of the downgrade/revoke protocol.
fn reservation_repair_fixpoint(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    let actions = d.core().state().plan_reservation_repair(d.now());
    if actions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "book is not repair-stable at {:?}: {actions:?}",
            d.now()
        ))
    }
}

/// Every running job has exactly one pending completion-or-kill event
/// tagged with its current attempt — no orphaned attempts (job would run
/// forever) and no duplicated endings.
fn attempt_tag_integrity(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    let core = d.core();
    let pending = d.pending_events();
    for r in core.state().running() {
        let id = r.job.id;
        let current = core.attempts_of(id);
        let live = pending
            .iter()
            .filter(|(_, _, ev)| {
                matches!(ev, Event::Finish(j, a) | Event::Kill(j, a)
                         if *j == id && *a == current)
            })
            .count();
        if live != 1 {
            return Err(format!(
                "running job {id} attempt {current} has {live} pending Finish/Kill events"
            ));
        }
    }
    Ok(())
}

/// Every completed record spans exactly the job's actual run time — a
/// completion at any other instant means a stale event was honored.
fn exact_instant_completion(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    for c in d.core().state().completed() {
        let span = c.end.saturating_since(c.start);
        if span != c.job.actual {
            return Err(format!(
                "job {} ran {:?} but its actual run time is {:?}",
                c.job.id, span, c.job.actual
            ));
        }
    }
    Ok(())
}

/// The reservation book and the driver's admitted-window ledger agree:
/// every booked window is an admitted, still-live window at its recorded
/// (possibly downgraded) width, and no cancelled/revoked window lingers
/// in the book.
fn book_consistency(d: &ChaosDriver<'_>, _s: &Scenario) -> Result<(), String> {
    let admitted = d.core().admitted_windows();
    for w in d.core().state().reservations().all() {
        let Some((ledger, dead)) = admitted.get(w.id as usize) else {
            return Err(format!("window {} in book but never admitted", w.id));
        };
        if *dead {
            return Err(format!(
                "window {} is cancelled/revoked but still in the book",
                w.id
            ));
        }
        if ledger.start != w.start || ledger.duration != w.duration || ledger.width != w.width {
            return Err(format!(
                "window {} drifted: book {:?}/{:?}/{} vs ledger {:?}/{:?}/{}",
                w.id, w.start, w.duration, w.width, ledger.start, ledger.duration, ledger.width
            ));
        }
    }
    Ok(())
}
