//! Command-line model checker for the chaos + reservation protocols.
//!
//! Explores every reachable same-instant interleaving of a small
//! scenario, checking the standard invariant battery at each state.
//! On violation: shrinks the scenario to a 1-minimal counterexample,
//! writes a replayable report (and a `dynp-obs` trace next to it when
//! `--counterexample` is given), and exits non-zero.
//!
//! ```text
//! model_check --nodes 2 --jobs 3 --faults 1 --res 1 \
//!             --strategy dfs --scheduler dynp --depth 256 \
//!             --counterexample target/mc-counterexample.txt
//! ```

use dynp_mc::{
    explore, replay, scheduler_factory, shrink, standard, ExploreConfig, Scenario, ScenarioConfig,
    Strategy,
};
use dynp_obs::{write_jsonl, TraceLevel, Tracer};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: ScenarioConfig,
    explore: ExploreConfig,
    scheduler: String,
    counterexample: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: model_check [--nodes N] [--jobs N] [--faults N] [--res N]\n\
         \x20                  [--depth N] [--max-states N] [--strategy dfs|bfs]\n\
         \x20                  [--scheduler fcfs|sjf|dynp] [--counterexample PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut cfg = ScenarioConfig {
        nodes: 2,
        jobs: 3,
        outages: 1,
        reservations: 1,
    };
    let mut explore = ExploreConfig::default();
    let mut scheduler = "dynp".to_string();
    let mut counterexample = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--nodes" => cfg.nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--jobs" => cfg.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--faults" => cfg.outages = value("--faults").parse().unwrap_or_else(|_| usage()),
            "--res" => cfg.reservations = value("--res").parse().unwrap_or_else(|_| usage()),
            "--depth" => explore.max_depth = value("--depth").parse().unwrap_or_else(|_| usage()),
            "--max-states" => {
                explore.max_states = value("--max-states").parse().unwrap_or_else(|_| usage())
            }
            "--strategy" => {
                explore.strategy = Strategy::parse(&value("--strategy")).unwrap_or_else(|| {
                    eprintln!("unknown strategy (expected dfs or bfs)");
                    usage();
                })
            }
            "--scheduler" => scheduler = value("--scheduler"),
            "--counterexample" => counterexample = Some(PathBuf::from(value("--counterexample"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    Args {
        cfg,
        explore,
        scheduler,
        counterexample,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let make = scheduler_factory(&args.scheduler).unwrap_or_else(|| {
        eprintln!(
            "unknown scheduler {:?} (expected fcfs, sjf or dynp)",
            args.scheduler
        );
        std::process::exit(2);
    });
    let invariants = standard();
    let scenario = Scenario::build(&args.cfg);

    println!(
        "model_check: scenario {} scheduler {} strategy {:?} depth {} max-states {}",
        scenario.name,
        args.scheduler,
        args.explore.strategy,
        args.explore.max_depth,
        args.explore.max_states
    );
    let result = explore(&scenario, make.as_ref(), &invariants, &args.explore);
    let s = result.stats;
    println!(
        "explored {} states ({} deduplicated, {} terminal, {} truncated, peak frontier {})",
        s.explored, s.deduplicated, s.terminal_states, s.truncated, s.peak_frontier
    );

    let Some(violation) = result.violation else {
        println!("no violations");
        return ExitCode::SUCCESS;
    };

    println!(
        "VIOLATION of {} after schedule {:?}: {}",
        violation.invariant, violation.schedule, violation.detail
    );
    println!("shrinking...");
    let shrunk = shrink(
        &scenario,
        &violation,
        make.as_ref(),
        &invariants,
        &args.explore,
    );
    println!(
        "shrunk: removed {} element(s) in {} exploration(s); minimal scenario has {} element(s)",
        shrunk.removed.len(),
        shrunk.attempts,
        shrunk.scenario.size()
    );

    let (events, trace, panicked) = replay(
        &shrunk.scenario,
        make.as_ref(),
        &shrunk.violation.schedule,
        Tracer::enabled(TraceLevel::All),
    );

    let mut report = String::new();
    {
        use std::fmt::Write as _;
        let _ = writeln!(report, "invariant: {}", shrunk.violation.invariant);
        let _ = writeln!(report, "detail:    {}", shrunk.violation.detail);
        let _ = writeln!(report, "schedule:  {:?}", shrunk.violation.schedule);
        let _ = writeln!(
            report,
            "fifo:      {} (all-zero schedule replays through simulate_chaos)",
            shrunk.violation.is_fifo()
        );
        let _ = writeln!(report, "removed:   {:?}", shrunk.removed);
        let _ = write!(report, "{}", shrunk.scenario.describe());
        let _ = writeln!(report, "replayed events:");
        for (t, ev) in &events {
            let _ = writeln!(report, "  {:>8}ms {ev:?}", t.as_millis());
        }
        if let Some(p) = panicked {
            let _ = writeln!(report, "replay panicked: {p}");
        }
    }
    print!("{report}");

    if let Some(path) = &args.counterexample {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("failed to write {}: {e}", path.display());
        } else {
            println!("counterexample written to {}", path.display());
        }
        let trace_path = path.with_extension("trace.jsonl");
        match write_jsonl(&trace, &trace_path) {
            Ok(()) => println!("trace written to {}", trace_path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", trace_path.display()),
        }
    }
    ExitCode::FAILURE
}
