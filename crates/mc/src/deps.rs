//! The dependency resolver: which same-instant tied events actually need
//! their orders permuted.
//!
//! Exhaustively permuting every tie is `k!` schedules per instant. Most
//! of that is waste: an event the driver provably ignores (an early
//! `return` before any state is touched) commutes with *everything* — its
//! position among the ties cannot influence the run. The resolver
//! classifies each tied event and the explorer:
//!
//! * dispatches a provable no-op immediately, canonically, without
//!   branching (one child instead of `k`), and
//! * branches over all `k` orders only when every tied event is live.
//!
//! Soundness of the no-op classification rests on monotonicity arguments
//! against the driver in `dynp-sim`:
//!
//! * **Stale `Finish`/`Kill`** — an attempt tag below the job's current
//!   attempt counter can never match again (the counter only grows), and
//!   a tagged event for a non-running job can only see the job return
//!   with a *higher* counter. Ignored now, ignored forever.
//! * **`ResStart`** — the window's capacity has been withheld from every
//!   plan since admission; the boundary instant itself changes nothing.
//! * **`ResCancel` of a dead window** — once the cancelled/revoked flag
//!   is set it is never cleared; the cancel arm returns without touching
//!   state.

use dynp_sim::{ChaosDriver, Event};

/// True when dispatching `ev` in the driver's *current* state is a
/// provable no-op that will remain a no-op under any permutation of the
/// currently tied events (see module docs for the argument).
pub fn is_commutable_noop(driver: &ChaosDriver<'_>, ev: &Event) -> bool {
    let core = driver.core();
    match *ev {
        Event::Finish(id, attempt) | Event::Kill(id, attempt) => {
            core.attempts_of(id) != attempt
                || !core.state().running().iter().any(|r| r.job.id == id)
        }
        Event::ResStart(_) => true,
        Event::ResCancel(book_id) => core.admitted_windows()[book_id as usize].1,
        _ => false,
    }
}

/// The tie ranks the explorer must branch over from the current state:
/// a single canonical choice when a tied no-op exists (or there is no
/// tie), every rank otherwise.
pub fn branch_choices(driver: &ChaosDriver<'_>, tied: &[Event]) -> Vec<usize> {
    if let Some(n) = tied.iter().position(|e| is_commutable_noop(driver, e)) {
        return vec![n];
    }
    (0..tied.len()).collect()
}
