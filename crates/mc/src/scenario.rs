//! Model-checking scenarios: small, fully deterministic simulation
//! configurations with deliberately coinciding instants.
//!
//! A scenario is the checker's unit of input — the complete description
//! of one closed system (machine, jobs, reservation requests, fault
//! trace, admission and retry configuration). It is a plain value so the
//! shrinker can clone it and delete elements one at a time, and
//! [`Scenario::build`] derives a configuration from size knobs alone, so
//! the CI matrix is four integers per cell.
//!
//! The builder intentionally stacks events on shared instants (two jobs
//! submitting together, an outage landing exactly on a completion, a
//! reservation request tied with an arrival): same-instant ties are where
//! the dependency resolver branches, so a scenario without ties explores
//! exactly one schedule and proves nothing about commutation.

use dynp_des::{SimDuration, SimTime};
use dynp_rms::AdmissionConfig;
use dynp_workload::{
    FaultKind, FaultPlan, Job, JobId, JobSet, NodeOutage, ReservationRequest, RetryPolicy,
};

/// Size knobs for [`Scenario::build`] — the CI matrix is a list of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Machine size in nodes. At least 2 when `outages > 0` (the RMS
    /// refuses to take the last usable node down).
    pub nodes: u32,
    /// Number of batch jobs.
    pub jobs: u32,
    /// Number of node outages.
    pub outages: u32,
    /// Number of advance-reservation requests.
    pub reservations: u32,
}

/// One complete model-checking input: a closed small-world simulation
/// configuration. All fields are data; the simulation inputs
/// ([`Scenario::job_set`], [`Scenario::fault_plan`]) are derived on
/// demand so the shrinker can edit the raw vectors.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name (carried into run results and reports).
    pub name: String,
    /// Machine size in nodes.
    pub machine: u32,
    /// Jobs, sorted by submission; ids are re-densified by
    /// [`Scenario::job_set`].
    pub jobs: Vec<Job>,
    /// Advance-reservation request stream.
    pub requests: Vec<ReservationRequest>,
    /// Node outages, sorted by `down_at`, never overlapping per node.
    pub outages: Vec<NodeOutage>,
    /// Planned first-attempt failures by dense job id.
    pub job_faults: Vec<(u32, FaultKind)>,
    /// Retry policy for failed attempts.
    pub retry: RetryPolicy,
    /// Admission parameters for the reservation stream.
    pub admission: AdmissionConfig,
}

impl Scenario {
    /// Derives a deterministic scenario from size knobs.
    ///
    /// # Panics
    /// Panics if `outages > 0` with fewer than 2 nodes: a 1-node machine
    /// cannot lose a node (the RMS keeps at least one usable processor).
    pub fn build(cfg: &ScenarioConfig) -> Scenario {
        assert!(cfg.nodes >= 1, "machine needs at least one node");
        assert!(
            cfg.outages == 0 || cfg.nodes >= 2,
            "outages need at least 2 nodes (the last usable node cannot go down)"
        );
        // Jobs arrive in same-instant pairs; widths alternate 1/2 (capped
        // by the machine) so plans contend; actuals cycle 20/30/40 s so
        // completions coincide with outage and arrival instants below.
        let jobs = (0..cfg.jobs)
            .map(|i| {
                Job::new(
                    JobId(i),
                    SimTime::from_secs(10 * (i as u64 / 2)),
                    1 + (i % 2).min(cfg.nodes - 1),
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(20 + 10 * (i as u64 % 3)),
                )
            })
            .collect();
        // Outage k hits node k mod N at t = 20 + 40k (landing exactly on
        // completion instants) for 30 s. Spacing guarantees a node's
        // repair precedes its next failure and only one node is ever down.
        let outages = (0..cfg.outages)
            .map(|k| NodeOutage {
                node: k % cfg.nodes,
                down_at: SimTime::from_secs(20 + 40 * k as u64),
                up_at: SimTime::from_secs(50 + 40 * k as u64),
            })
            .collect();
        // Requests submit together with job arrivals (tie at t = 10j);
        // odd requests carry a pre-start cancellation.
        let requests = (0..cfg.reservations)
            .map(|j| {
                let start = SimTime::from_secs(40 + 30 * j as u64);
                ReservationRequest {
                    id: j,
                    submit: SimTime::from_secs(10 * j as u64),
                    start,
                    duration: SimDuration::from_secs(30),
                    width: 1,
                    cancel_at: (j % 2 == 1).then(|| start - SimDuration::from_secs(10)),
                }
            })
            .collect();
        Scenario {
            name: format!(
                "mc-n{}j{}f{}r{}",
                cfg.nodes, cfg.jobs, cfg.outages, cfg.reservations
            ),
            machine: cfg.nodes,
            jobs,
            requests,
            outages,
            job_faults: Vec::new(),
            // Short backoff so retries re-enter the queue while other
            // jobs are still live — long backoffs serialize the run and
            // hide interleavings.
            retry: RetryPolicy {
                max_retries: 1,
                backoff: SimDuration::from_secs(15),
                factor: 2.0,
            },
            admission: AdmissionConfig::default(),
        }
    }

    /// The job set this scenario simulates (ids densified by
    /// construction order, which is submission order).
    pub fn job_set(&self) -> JobSet {
        JobSet::new(self.name.clone(), self.machine, self.jobs.clone())
    }

    /// The fault trace this scenario injects.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            outages: self.outages.clone(),
            job_faults: self.job_faults.clone(),
            retry: self.retry,
        }
    }

    /// Total number of deletable elements — the shrinker's candidate
    /// space.
    pub fn size(&self) -> usize {
        self.jobs.len() + self.requests.len() + self.outages.len() + self.job_faults.len()
    }

    /// The scenario with job at (submission-order) index `idx` removed.
    /// Dense job ids shift down past the gap, so planned job faults are
    /// remapped; faults of the removed job are dropped.
    pub fn without_job(&self, idx: usize) -> Scenario {
        let mut s = self.clone();
        s.jobs.remove(idx);
        s.job_faults = s
            .job_faults
            .iter()
            .filter_map(|&(id, kind)| match (id as usize).cmp(&idx) {
                std::cmp::Ordering::Less => Some((id, kind)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((id - 1, kind)),
            })
            .collect();
        s
    }

    /// The scenario with reservation request `idx` removed.
    pub fn without_request(&self, idx: usize) -> Scenario {
        let mut s = self.clone();
        s.requests.remove(idx);
        s
    }

    /// The scenario with outage `idx` removed.
    pub fn without_outage(&self, idx: usize) -> Scenario {
        let mut s = self.clone();
        s.outages.remove(idx);
        s
    }

    /// The scenario with planned job fault `idx` removed.
    pub fn without_job_fault(&self, idx: usize) -> Scenario {
        let mut s = self.clone();
        s.job_faults.remove(idx);
        s
    }

    /// A compact human-readable description (for counterexample dumps).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario {} (machine {})", self.name, self.machine);
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "  job {} submit={}s width={} est={}s actual={}s",
                j.id,
                j.submit.as_millis() / 1000,
                j.width,
                j.estimate.as_millis() / 1000,
                j.actual.as_millis() / 1000,
            );
        }
        for r in &self.requests {
            let _ = writeln!(
                out,
                "  request {} submit={}s window=[{}s,+{}s) width={} cancel_at={:?}",
                r.id,
                r.submit.as_millis() / 1000,
                r.start.as_millis() / 1000,
                r.duration.as_millis() / 1000,
                r.width,
                r.cancel_at.map(|t| t.as_millis() / 1000),
            );
        }
        for o in &self.outages {
            let _ = writeln!(
                out,
                "  outage node={} down=[{}s,{}s)",
                o.node,
                o.down_at.as_millis() / 1000,
                o.up_at.as_millis() / 1000,
            );
        }
        for (id, kind) in &self.job_faults {
            let _ = writeln!(out, "  fault job={} kind={}", id, kind.label());
        }
        let _ = writeln!(
            out,
            "  retry max={} backoff={}s factor={}",
            self.retry.max_retries,
            self.retry.backoff.as_millis() / 1000,
            self.retry.factor,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_and_sized() {
        let cfg = ScenarioConfig {
            nodes: 2,
            jobs: 3,
            outages: 1,
            reservations: 1,
        };
        let a = Scenario::build(&cfg);
        let b = Scenario::build(&cfg);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.size(), 5);
        assert_eq!(a.job_set().len(), 3);
        assert_eq!(a.fault_plan().outages.len(), 1);
        // Ties exist by construction: jobs 0 and 1 submit together.
        assert_eq!(a.jobs[0].submit, a.jobs[1].submit);
    }

    #[test]
    fn outages_never_overlap_per_node() {
        let s = Scenario::build(&ScenarioConfig {
            nodes: 2,
            jobs: 0,
            outages: 4,
            reservations: 0,
        });
        for w in s.outages.windows(2) {
            assert!(w[0].down_at <= w[1].down_at, "sorted by down_at");
        }
        for (i, a) in s.outages.iter().enumerate() {
            for b in &s.outages[i + 1..] {
                if a.node == b.node {
                    assert!(a.up_at <= b.down_at, "repair precedes next failure");
                }
            }
        }
    }

    #[test]
    fn without_job_remaps_faults() {
        let mut s = Scenario::build(&ScenarioConfig {
            nodes: 2,
            jobs: 4,
            outages: 0,
            reservations: 0,
        });
        s.job_faults = vec![
            (0, FaultKind::Overrun),
            (2, FaultKind::Crash { fraction: 0.5 }),
            (3, FaultKind::Overrun),
        ];
        let t = s.without_job(2);
        assert_eq!(t.jobs.len(), 3);
        assert_eq!(
            t.job_faults,
            vec![(0, FaultKind::Overrun), (2, FaultKind::Overrun)]
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_outages_are_rejected() {
        Scenario::build(&ScenarioConfig {
            nodes: 1,
            jobs: 1,
            outages: 1,
            reservations: 0,
        });
    }
}
