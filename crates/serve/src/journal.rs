//! The durable session journal: a typed, checksummed write-ahead log of
//! every command the daemon *accepted*, plus periodic checkpoints of the
//! full service state.
//!
//! ## Journal segments
//!
//! A journal directory holds numbered segment files `journal-NNNNNN.wal`.
//! Each segment starts with a header
//!
//! ```text
//! "DYNPJRNL" | version u32 | machine u32 | speedup u64 | scheduler str
//!            | segment u32 | base seq u64
//! ```
//!
//! followed by records framed as
//!
//! ```text
//! type u8 | payload len u32 | payload | crc32(payload)
//! ```
//!
//! where type 1 is an accepted submission (seq, stamp, job id, user,
//! width, estimate, actual) and type 2 a cancellation (seq, stamp, job
//! id). Record sequence numbers are global across segments; each
//! segment's header carries the seq of its first record so a reader can
//! verify continuity and a compactor can tell which rotated segments a
//! checkpoint fully covers.
//!
//! Durability is governed by [`FsyncPolicy`]; with the default
//! `Always`, a record is on disk before the client sees `accepted`, so
//! a `SIGKILL` at *any* point loses no acknowledged work. Writers
//! rotate to a fresh segment once the current one exceeds
//! `rotate_bytes`; [`JournalWriter::compact`] deletes rotated segments
//! whose records a checkpoint has made redundant.
//!
//! ## Torn tails vs. corruption
//!
//! A crash mid-`write` leaves a *torn tail*: the last segment ends in
//! the middle of a record frame. That is an expected artifact of the
//! crash model, detected by frame truncation and tolerated — the reader
//! stops at the last complete record and reports `torn = true`. A
//! record whose frame is *complete* but whose checksum does not match
//! is a different animal (bit rot, truncated-then-appended files) and
//! is always a typed [`JournalError::BadChecksum`]. Torn frames in a
//! *non*-last segment mean the directory itself is damaged
//! ([`JournalError::TornSegment`]).
//!
//! ## Checkpoints
//!
//! `checkpoint-NNNNNNNNNN.ckpt` files (named by journal seq) capture the
//! complete service state — core, pending timers, scheduler, job table,
//! per-user quota buckets, counters — framed as
//!
//! ```text
//! "DYNPCKPT" | version u32 | journal seq u64 | payload len u32
//!            | payload | crc32(payload)
//! ```
//!
//! Checkpoints are written to a temp file and atomically renamed, and a
//! corrupt checkpoint is *skipped*, falling back to the previous valid
//! one (and ultimately to a from-genesis journal replay), so checkpoint
//! corruption can slow recovery down but never wreck it.

use dynp_des::{crc32, ByteReader, ByteWriter, CodecError, EngineSnapshot, SimDuration, SimTime};
use dynp_rms::SchedulerSnapshot;
use dynp_sim::codec::{decode_core, decode_engine, encode_core, encode_engine};
use dynp_sim::{CoreSnapshot, Event};
use dynp_workload::Job;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of a journal segment.
pub const JOURNAL_MAGIC: &[u8; 8] = b"DYNPJRNL";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"DYNPCKPT";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Default rotation threshold: start a new segment once the current one
/// exceeds 1 MiB.
pub const DEFAULT_ROTATE_BYTES: u64 = 1 << 20;

const REC_SUBMIT: u8 = 1;
const REC_CANCEL: u8 = 2;

/// When the journal writer calls `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every record — an acknowledged command is on disk (the
    /// default; the crash-safety guarantee assumes it).
    Always,
    /// Only when a segment is finished (rotation) or the journal is
    /// closed. A crash can lose the unsynced tail of the live segment.
    OnRotate,
    /// Never explicitly — leave it to the OS. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses the command-line spelling.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "rotate" | "on-rotate" => Some(FsyncPolicy::OnRotate),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnRotate => "rotate",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One journaled command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// An accepted submission, stamped with its dispatch instant.
    Submit {
        /// Global journal sequence number.
        seq: u64,
        /// The wall source's dispatch stamp (simulation time).
        stamp: SimTime,
        /// Assigned job id.
        job: u32,
        /// Submitting user (quota accounting and replay fairness stats).
        user: u32,
        /// Processors requested.
        width: u32,
        /// User runtime estimate.
        estimate: SimDuration,
        /// Actual runtime.
        actual: SimDuration,
    },
    /// An accepted cancellation.
    Cancel {
        /// Global journal sequence number.
        seq: u64,
        /// The wall source's dispatch stamp (simulation time).
        stamp: SimTime,
        /// Job withdrawn (best effort: a no-op if already running).
        job: u32,
    },
}

impl JournalRecord {
    /// The record's global sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            JournalRecord::Submit { seq, .. } | JournalRecord::Cancel { seq, .. } => seq,
        }
    }

    /// The record's dispatch stamp.
    pub fn stamp(&self) -> SimTime {
        match *self {
            JournalRecord::Submit { stamp, .. } | JournalRecord::Cancel { stamp, .. } => stamp,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match *self {
            JournalRecord::Submit {
                seq,
                stamp,
                job,
                user,
                width,
                estimate,
                actual,
            } => {
                w.u64(seq);
                w.u64(stamp.as_millis());
                w.u32(job);
                w.u32(user);
                w.u32(width);
                w.u64(estimate.as_millis());
                w.u64(actual.as_millis());
            }
            JournalRecord::Cancel { seq, stamp, job } => {
                w.u64(seq);
                w.u64(stamp.as_millis());
                w.u32(job);
            }
        }
        w.into_bytes()
    }

    fn kind(&self) -> u8 {
        match self {
            JournalRecord::Submit { .. } => REC_SUBMIT,
            JournalRecord::Cancel { .. } => REC_CANCEL,
        }
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<JournalRecord, CodecError> {
        let mut r = ByteReader::new(payload);
        let rec = match kind {
            REC_SUBMIT => JournalRecord::Submit {
                seq: r.u64()?,
                stamp: SimTime::from_millis(r.u64()?),
                job: r.u32()?,
                user: r.u32()?,
                width: r.u32()?,
                estimate: SimDuration::from_millis(r.u64()?),
                actual: SimDuration::from_millis(r.u64()?),
            },
            REC_CANCEL => JournalRecord::Cancel {
                seq: r.u64()?,
                stamp: SimTime::from_millis(r.u64()?),
                job: r.u32()?,
            },
            _ => {
                return Err(CodecError::Invalid {
                    what: "record type",
                })
            }
        };
        if !r.is_exhausted() {
            return Err(CodecError::Invalid {
                what: "record trailing bytes",
            });
        }
        Ok(rec)
    }
}

/// Typed journal failures — every way a journal directory can be wrong,
/// distinguished so recovery can react (tolerate, skip, refuse) instead
/// of guessing from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem-level failure.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// The OS error rendered.
        error: String,
    },
    /// The file does not start with the journal/checkpoint magic.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// A format version this build does not understand.
    UnknownVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found.
        version: u32,
    },
    /// A complete record frame whose checksum does not match (bit rot —
    /// never tolerated, unlike a torn tail).
    BadChecksum {
        /// Offending file.
        path: PathBuf,
        /// Byte offset of the record frame.
        offset: usize,
    },
    /// A record that fails to decode after passing its checksum
    /// (unknown record type, trailing payload bytes).
    BadRecord {
        /// Offending file.
        path: PathBuf,
        /// Byte offset of the record frame.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Two segment files claim the same index.
    DuplicateSegment {
        /// The duplicated segment index.
        segment: u32,
    },
    /// A gap in the segment numbering — a middle segment is missing.
    MissingSegment {
        /// The absent segment index.
        segment: u32,
    },
    /// A torn (truncated mid-frame) segment that is *not* the last one;
    /// torn tails are only a crash artifact on the live segment.
    TornSegment {
        /// Offending file.
        path: PathBuf,
        /// Byte offset where the tear begins.
        offset: usize,
    },
    /// The directory's only segment is segment 0 with a torn *header*:
    /// the crash hit before the very first header was durable, so
    /// nothing was ever acknowledged. Recovery removes the file and
    /// starts the service fresh.
    TornGenesis {
        /// The torn genesis segment.
        path: PathBuf,
    },
    /// Segment headers disagree (machine size, speedup, scheduler, or
    /// sequence continuity) — the directory mixes incompatible runs.
    HeaderMismatch {
        /// Offending file.
        path: PathBuf,
        /// Which header field disagreed.
        what: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            JournalError::BadMagic { path } => write!(f, "{}: bad magic", path.display()),
            JournalError::UnknownVersion { path, version } => {
                write!(f, "{}: unknown version {version}", path.display())
            }
            JournalError::BadChecksum { path, offset } => {
                write!(f, "{}: bad checksum at offset {offset}", path.display())
            }
            JournalError::BadRecord { path, offset, what } => {
                write!(
                    f,
                    "{}: bad record at offset {offset}: {what}",
                    path.display()
                )
            }
            JournalError::DuplicateSegment { segment } => {
                write!(f, "duplicate journal segment {segment}")
            }
            JournalError::MissingSegment { segment } => {
                write!(f, "missing journal segment {segment}")
            }
            JournalError::TornSegment { path, offset } => {
                write!(
                    f,
                    "{}: torn at offset {offset} (not the last segment)",
                    path.display()
                )
            }
            JournalError::TornGenesis { path } => {
                write!(
                    f,
                    "{}: torn genesis header (the journal is empty)",
                    path.display()
                )
            }
            JournalError::HeaderMismatch { path, what } => {
                write!(f, "{}: header mismatch: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn iofail(path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// Path of journal segment `segment` in `dir`.
pub fn segment_path(dir: &Path, segment: u32) -> PathBuf {
    dir.join(format!("journal-{segment:06}.wal"))
}

/// Path of the checkpoint taken at journal seq `seq` in `dir`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:010}.ckpt"))
}

fn list_numbered(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| iofail(dir, e))? {
        let entry = entry.map_err(|e| iofail(dir, e))?;
        let name = entry.file_name();
        let name = match name.to_str() {
            Some(n) => n,
            None => continue,
        };
        if let Some(mid) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(suffix))
        {
            if let Ok(n) = mid.parse::<u64>() {
                out.push((n, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The result of appending one record: its assigned sequence number and
/// whether the append tripped a segment rotation (the daemon checkpoints
/// at rotation points).
#[derive(Clone, Copy, Debug)]
pub struct Appended {
    /// Sequence number the record was journaled under.
    pub seq: u64,
    /// True when the append finished a segment and opened a new one.
    pub rotated: bool,
    /// Index of the segment the *next* record will land in.
    pub segment: u32,
}

/// Appends records to a journal directory with rotation, an fsync
/// policy, and checkpoint-driven compaction.
pub struct JournalWriter {
    dir: PathBuf,
    file: File,
    machine_size: u32,
    speedup: u64,
    scheduler: String,
    segment: u32,
    segment_bytes: u64,
    next_seq: u64,
    rotate_bytes: u64,
    fsync: FsyncPolicy,
    /// `(index, base_seq)` of every on-disk segment, oldest first,
    /// including the live one — the compactor's map.
    segments: Vec<(u32, u64)>,
}

impl JournalWriter {
    /// Creates a fresh journal in `dir` (created if absent). Refuses a
    /// directory that already contains journal segments — resuming an
    /// existing journal is [`JournalWriter::resume`]'s job.
    pub fn create(
        dir: &Path,
        machine_size: u32,
        speedup: u64,
        scheduler: &str,
        fsync: FsyncPolicy,
        rotate_bytes: u64,
    ) -> Result<JournalWriter, JournalError> {
        fs::create_dir_all(dir).map_err(|e| iofail(dir, e))?;
        let existing = list_numbered(dir, "journal-", ".wal")?;
        if let Some((n, path)) = existing.first() {
            return Err(JournalError::Io {
                path: path.clone(),
                error: format!("journal directory already contains segment {n}; use --recover"),
            });
        }
        Self::open(
            dir,
            machine_size,
            speedup,
            scheduler,
            fsync,
            rotate_bytes,
            0,
            0,
            Vec::new(),
        )
    }

    /// Opens a new segment *after* the ones a read-back `journal`
    /// reports — the recovery path: header facts and sequence position
    /// come from the journal itself (run [`repair_torn_tail`] first so
    /// no torn file blocks the new segment's index), and post-recovery
    /// records land in a clean segment with the right base seq.
    pub fn resume(
        dir: &Path,
        journal: &JournalDir,
        fsync: FsyncPolicy,
        rotate_bytes: u64,
    ) -> Result<JournalWriter, JournalError> {
        Self::open(
            dir,
            journal.machine_size,
            journal.speedup,
            &journal.scheduler,
            fsync,
            rotate_bytes,
            journal.last_segment + 1,
            journal.next_seq,
            journal.segments.clone(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn open(
        dir: &Path,
        machine_size: u32,
        speedup: u64,
        scheduler: &str,
        fsync: FsyncPolicy,
        rotate_bytes: u64,
        segment: u32,
        base_seq: u64,
        mut segments: Vec<(u32, u64)>,
    ) -> Result<JournalWriter, JournalError> {
        let path = segment_path(dir, segment);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| iofail(&path, e))?;
        let mut w = ByteWriter::new();
        w.raw(JOURNAL_MAGIC);
        w.u32(JOURNAL_VERSION);
        w.u32(machine_size);
        w.u64(speedup);
        w.str(scheduler);
        w.u32(segment);
        w.u64(base_seq);
        let header = w.into_bytes();
        file.write_all(&header).map_err(|e| iofail(&path, e))?;
        if fsync == FsyncPolicy::Always {
            file.sync_data().map_err(|e| iofail(&path, e))?;
        }
        segments.push((segment, base_seq));
        Ok(JournalWriter {
            dir: dir.to_path_buf(),
            file,
            machine_size,
            speedup,
            scheduler: scheduler.to_string(),
            segment,
            segment_bytes: header.len() as u64,
            next_seq: base_seq,
            rotate_bytes: rotate_bytes.max(1),
            fsync,
            segments,
        })
    }

    /// The sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The live segment's index.
    pub fn segment(&self) -> u32 {
        self.segment
    }

    /// Journals an accepted submission; see [`JournalWriter::append`].
    #[allow(clippy::too_many_arguments)]
    pub fn append_submit(
        &mut self,
        stamp: SimTime,
        job: u32,
        user: u32,
        width: u32,
        estimate: SimDuration,
        actual: SimDuration,
    ) -> Result<Appended, JournalError> {
        let seq = self.next_seq;
        self.append(&JournalRecord::Submit {
            seq,
            stamp,
            job,
            user,
            width,
            estimate,
            actual,
        })
    }

    /// Journals an accepted cancellation; see [`JournalWriter::append`].
    pub fn append_cancel(&mut self, stamp: SimTime, job: u32) -> Result<Appended, JournalError> {
        let seq = self.next_seq;
        self.append(&JournalRecord::Cancel { seq, stamp, job })
    }

    /// Appends one record (whose seq must be [`JournalWriter::next_seq`]),
    /// honours the fsync policy, and rotates the segment if it crossed
    /// the size threshold. Under `FsyncPolicy::Always` the record is
    /// durable when this returns — the admission path acknowledges the
    /// client only after.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<Appended, JournalError> {
        assert_eq!(rec.seq(), self.next_seq, "journal seqs are dense");
        let payload = rec.encode_payload();
        let mut w = ByteWriter::new();
        w.u8(rec.kind());
        w.bytes(&payload);
        w.u32(crc32(&payload));
        let frame = w.into_bytes();
        let path = segment_path(&self.dir, self.segment);
        self.file.write_all(&frame).map_err(|e| iofail(&path, e))?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data().map_err(|e| iofail(&path, e))?;
        }
        self.segment_bytes += frame.len() as u64;
        self.next_seq += 1;
        let seq = rec.seq();
        let mut rotated = false;
        if self.segment_bytes >= self.rotate_bytes {
            self.rotate()?;
            rotated = true;
        }
        Ok(Appended {
            seq,
            rotated,
            segment: self.segment,
        })
    }

    fn rotate(&mut self) -> Result<(), JournalError> {
        let path = segment_path(&self.dir, self.segment);
        // Seal the finished segment: everything in it is synced before
        // the new segment exists, whatever the per-record policy.
        if self.fsync != FsyncPolicy::Never {
            self.file.sync_data().map_err(|e| iofail(&path, e))?;
        }
        let next = Self::open(
            &self.dir,
            self.machine_size,
            self.speedup,
            &self.scheduler,
            self.fsync,
            self.rotate_bytes,
            self.segment + 1,
            self.next_seq,
            std::mem::take(&mut self.segments),
        )?;
        *self = next;
        Ok(())
    }

    /// Flushes and fsyncs the live segment regardless of policy — the
    /// drain path calls this before printing the summary line.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let path = segment_path(&self.dir, self.segment);
        self.file.flush().map_err(|e| iofail(&path, e))?;
        self.file.sync_data().map_err(|e| iofail(&path, e))
    }

    /// Deletes rotated segments every record of which is ≤ `covered_seq`
    /// (the journal seq a durable checkpoint covers). The live segment
    /// is never deleted. Returns the deleted segment indices.
    pub fn compact(&mut self, covered_seq: u64) -> Result<Vec<u32>, JournalError> {
        let mut deleted = Vec::new();
        // A segment's records span [base_seq, next segment's base_seq);
        // it is redundant iff that whole range is checkpointed.
        while self.segments.len() > 1 {
            let (idx, _) = self.segments[0];
            let (_, next_base) = self.segments[1];
            if next_base == 0 || next_base - 1 > covered_seq {
                break;
            }
            let path = segment_path(&self.dir, idx);
            fs::remove_file(&path).map_err(|e| iofail(&path, e))?;
            self.segments.remove(0);
            deleted.push(idx);
        }
        Ok(deleted)
    }
}

/// A fully read journal directory: the merged record sequence plus the
/// header facts every segment agreed on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalDir {
    /// Machine size the daemon ran with.
    pub machine_size: u32,
    /// Wall-clock speedup the daemon ran with.
    pub speedup: u64,
    /// Scheduler spec spelling (parse with `parse_scheduler`).
    pub scheduler: String,
    /// All records, in seq order.
    pub records: Vec<JournalRecord>,
    /// Index of the last segment on disk.
    pub last_segment: u32,
    /// One past the last record's seq — the resume base.
    pub next_seq: u64,
    /// `(index, base_seq)` of every segment, oldest first.
    pub segments: Vec<(u32, u64)>,
    /// True when the last segment ended mid-frame (crash artifact; the
    /// torn tail was discarded).
    pub torn: bool,
    /// Where the tear sits: `(segment index, byte offset of the first
    /// incomplete frame)`. Offset 0 means the segment's *header* was
    /// torn (crash during rotation) and the whole file holds nothing.
    /// [`repair_torn_tail`] uses this to make the directory clean again.
    pub torn_at: Option<(u32, u64)>,
}

struct SegmentHeader {
    machine_size: u32,
    speedup: u64,
    scheduler: String,
    segment: u32,
    base_seq: u64,
}

fn read_segment_header(path: &Path, r: &mut ByteReader<'_>) -> Result<SegmentHeader, JournalError> {
    let truncated = |_: CodecError| JournalError::TornSegment {
        path: path.to_path_buf(),
        offset: 0,
    };
    let magic = r.raw(JOURNAL_MAGIC.len()).map_err(truncated)?;
    if magic != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u32().map_err(truncated)?;
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnknownVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    Ok(SegmentHeader {
        machine_size: r.u32().map_err(truncated)?,
        speedup: r.u64().map_err(truncated)?,
        scheduler: r.str().map_err(truncated)?.to_string(),
        segment: r.u32().map_err(truncated)?,
        base_seq: r.u64().map_err(truncated)?,
    })
}

/// The run-shape facts a journal's segment headers carry (every segment
/// agrees on them; [`read_journal`] verifies that).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Machine size the daemon ran with.
    pub machine_size: u32,
    /// Wall-clock speedup the daemon ran with.
    pub speedup: u64,
    /// Scheduler spec spelling (parse with `parse_scheduler`).
    pub scheduler: String,
}

/// Reads the run-shape facts from the first segment's header alone —
/// no records are read or decoded. The cheap way to default daemon
/// flags before [`read_journal`] does the full recovery read. A lone
/// segment 0 with a torn header is [`JournalError::TornGenesis`],
/// exactly as in [`read_journal`].
pub fn read_journal_header(dir: &Path) -> Result<JournalHeader, JournalError> {
    use std::io::Read;
    let files = list_numbered(dir, "journal-", ".wal")?;
    let Some((n, path)) = files.first() else {
        return Err(JournalError::Io {
            path: dir.to_path_buf(),
            error: "no journal segments".to_string(),
        });
    };
    // Headers are tiny (magic + five fields + a short scheduler string);
    // a bounded prefix read avoids pulling record bytes off disk.
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|f| f.take(4096).read_to_end(&mut buf))
        .map_err(|e| iofail(path, e))?;
    let mut r = ByteReader::new(&buf);
    match read_segment_header(path, &mut r) {
        Ok(h) => Ok(JournalHeader {
            machine_size: h.machine_size,
            speedup: h.speedup,
            scheduler: h.scheduler,
        }),
        Err(JournalError::TornSegment { .. }) if *n == 0 && files.len() == 1 => {
            Err(JournalError::TornGenesis { path: path.clone() })
        }
        Err(e) => Err(e),
    }
}

/// Reads and validates a whole journal directory. Torn tails on the
/// last segment are tolerated (`torn` flag); every other irregularity
/// is a typed [`JournalError`].
pub fn read_journal(dir: &Path) -> Result<JournalDir, JournalError> {
    let files = list_numbered(dir, "journal-", ".wal")?;
    if files.is_empty() {
        return Err(JournalError::Io {
            path: dir.to_path_buf(),
            error: "no journal segments".to_string(),
        });
    }
    let mut out: Option<JournalDir> = None;
    let last_i = files.len() - 1;
    for (i, (n, path)) in files.iter().enumerate() {
        if *n > u32::MAX as u64 {
            return Err(JournalError::BadMagic { path: path.clone() });
        }
        let is_last = i == last_i;
        let bytes = fs::read(path).map_err(|e| iofail(path, e))?;
        let mut r = ByteReader::new(&bytes);
        let header = match read_segment_header(path, &mut r) {
            Ok(h) => h,
            // A crash during rotation can leave a partial *header* on
            // the freshly opened segment; with no records at stake that
            // is a torn tail too.
            Err(JournalError::TornSegment { .. }) if is_last && i > 0 => {
                let dir_state = out.as_mut().expect("i > 0");
                dir_state.torn = true;
                dir_state.torn_at = Some((*n as u32, 0));
                break;
            }
            // A crash between creating the very first segment and its
            // header reaching disk leaves a lone segment 0 with a torn
            // header — an *empty* journal (nothing was ever
            // acknowledged), typed so recovery can remove the file and
            // start fresh instead of refusing the directory.
            Err(JournalError::TornSegment { .. }) if i == 0 && is_last && *n == 0 => {
                return Err(JournalError::TornGenesis { path: path.clone() });
            }
            Err(e) => return Err(e),
        };
        if header.segment as u64 != *n {
            return Err(JournalError::HeaderMismatch {
                path: path.clone(),
                what: "segment index",
            });
        }
        let dir_state = match &mut out {
            None => {
                out = Some(JournalDir {
                    machine_size: header.machine_size,
                    speedup: header.speedup,
                    scheduler: header.scheduler.clone(),
                    records: Vec::new(),
                    last_segment: header.segment,
                    next_seq: header.base_seq,
                    segments: Vec::new(),
                    torn: false,
                    torn_at: None,
                });
                out.as_mut().unwrap()
            }
            Some(state) => {
                if header.segment == state.last_segment {
                    return Err(JournalError::DuplicateSegment {
                        segment: header.segment,
                    });
                }
                if header.segment != state.last_segment + 1 {
                    return Err(JournalError::MissingSegment {
                        segment: state.last_segment + 1,
                    });
                }
                if header.machine_size != state.machine_size {
                    return Err(JournalError::HeaderMismatch {
                        path: path.clone(),
                        what: "machine size",
                    });
                }
                if header.speedup != state.speedup {
                    return Err(JournalError::HeaderMismatch {
                        path: path.clone(),
                        what: "speedup",
                    });
                }
                if header.scheduler != state.scheduler {
                    return Err(JournalError::HeaderMismatch {
                        path: path.clone(),
                        what: "scheduler",
                    });
                }
                if header.base_seq != state.next_seq {
                    return Err(JournalError::HeaderMismatch {
                        path: path.clone(),
                        what: "sequence continuity",
                    });
                }
                state.last_segment = header.segment;
                state
            }
        };
        dir_state.segments.push((header.segment, header.base_seq));
        // Records until clean EOF, a tolerated tear, or a typed error.
        loop {
            if r.is_exhausted() {
                break;
            }
            let offset = r.position();
            let frame: Result<(u8, &[u8], u32), CodecError> = (|| {
                let kind = r.u8()?;
                let payload = r.bytes()?;
                let sum = r.u32()?;
                Ok((kind, payload, sum))
            })();
            let (kind, payload, sum) = match frame {
                Ok(f) => f,
                Err(CodecError::Truncated { .. }) if is_last => {
                    dir_state.torn = true;
                    dir_state.torn_at = Some((header.segment, offset as u64));
                    break;
                }
                Err(_) => {
                    return Err(JournalError::TornSegment {
                        path: path.clone(),
                        offset,
                    })
                }
            };
            if crc32(payload) != sum {
                return Err(JournalError::BadChecksum {
                    path: path.clone(),
                    offset,
                });
            }
            let rec = JournalRecord::decode_payload(kind, payload).map_err(|e| {
                JournalError::BadRecord {
                    path: path.clone(),
                    offset,
                    what: match e {
                        CodecError::Invalid { what } => what,
                        CodecError::Truncated { .. } => "short payload",
                    },
                }
            })?;
            if rec.seq() != dir_state.next_seq {
                return Err(JournalError::BadRecord {
                    path: path.clone(),
                    offset,
                    what: "sequence gap",
                });
            }
            dir_state.next_seq += 1;
            dir_state.records.push(rec);
        }
        if dir_state.torn {
            break;
        }
    }
    Ok(out.expect("at least one segment"))
}

/// Repairs the torn tail a crash left behind, so the directory reads
/// cleanly forever after — in particular after [`JournalWriter::resume`]
/// adds segments *behind* the tear (a torn segment is only tolerated
/// while it is the last one).
///
/// The tear never holds acknowledged data: a record frame is torn only
/// if the crash hit mid-append (the client never saw an accept), and a
/// torn *header* means the crash hit mid-rotation before any record was
/// written to the new segment. So repair is pure truncation:
///
/// - tear at offset 0 (torn header): the file holds nothing — remove it;
/// - tear past the header: truncate the file at the tear, leaving a
///   clean, complete segment.
///
/// No-op when `journal.torn_at` is `None`.
pub fn repair_torn_tail(dir: &Path, journal: &JournalDir) -> Result<(), JournalError> {
    let Some((segment, offset)) = journal.torn_at else {
        return Ok(());
    };
    let path = segment_path(dir, segment);
    if offset == 0 {
        std::fs::remove_file(&path).map_err(|e| iofail(&path, e))?;
    } else {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| iofail(&path, e))?;
        file.set_len(offset).map_err(|e| iofail(&path, e))?;
        file.sync_data().map_err(|e| iofail(&path, e))?;
    }
    Ok(())
}

/// Service-level counters persisted across restarts (they are not
/// derivable from the replayed suffix alone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Accepted submissions.
    pub accepted: u64,
    /// Rejections: bounded queue overflow.
    pub rejected_queue_full: u64,
    /// Rejections: submitted while draining.
    pub rejected_shutdown: u64,
    /// Rejections: malformed submissions.
    pub rejected_invalid: u64,
    /// Rejections: per-user quota / fair-share shedding.
    pub rejected_user_quota: u64,
    /// Accepted cancellations that withdrew a waiting job.
    pub cancelled: u64,
}

/// Everything the daemon needs to resume exactly where a checkpoint was
/// taken: planner state, pending timers, job table, quota buckets,
/// counters, plus the journal seq the state is current through.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceCheckpoint {
    /// Number of journal records applied to this state (records with
    /// seq < `journal_seq` are in the checkpoint; replay starts here).
    pub journal_seq: u64,
    /// Machine size (cross-checked against the journal header).
    pub machine_size: u32,
    /// The wall source's checkpointable half: clock, pending timers,
    /// tie-break counter.
    pub engine: EngineSnapshot<Event>,
    /// The wall source's external stamp floor.
    pub min_external: SimTime,
    /// The planning core's state.
    pub core: CoreSnapshot,
    /// Scheduler internals (present only for snapshot-capable
    /// schedulers; absence forces from-genesis replay instead).
    pub scheduler: SchedulerSnapshot,
    /// The service job table (ids are indices).
    pub jobs: Vec<Job>,
    /// Submitting user of each job, parallel to `jobs`.
    pub users: Vec<u32>,
    /// Service counters at the checkpoint instant.
    pub counters: ServiceCounters,
    /// Per-user quota buckets: `(user, millitokens, last refill stamp)`.
    pub buckets: Vec<(u32, u64, SimTime)>,
}

/// Serializes a checkpoint into its framed on-disk form.
pub fn encode_checkpoint(ckpt: &ServiceCheckpoint) -> Vec<u8> {
    let mut p = ByteWriter::new();
    p.u32(ckpt.machine_size);
    encode_engine(&ckpt.engine, &mut p);
    p.u64(ckpt.min_external.as_millis());
    encode_core(&ckpt.core, &mut p);
    ckpt.scheduler.encode_into(&mut p);
    p.u32(ckpt.jobs.len() as u32);
    for job in &ckpt.jobs {
        job.encode_into(&mut p);
    }
    p.u32(ckpt.users.len() as u32);
    for &user in &ckpt.users {
        p.u32(user);
    }
    let c = &ckpt.counters;
    for v in [
        c.accepted,
        c.rejected_queue_full,
        c.rejected_shutdown,
        c.rejected_invalid,
        c.rejected_user_quota,
        c.cancelled,
    ] {
        p.u64(v);
    }
    p.u32(ckpt.buckets.len() as u32);
    for (user, mtok, last) in &ckpt.buckets {
        p.u32(*user);
        p.u64(*mtok);
        p.u64(last.as_millis());
    }
    let payload = p.into_bytes();

    let mut w = ByteWriter::new();
    w.raw(CHECKPOINT_MAGIC);
    w.u32(CHECKPOINT_VERSION);
    w.u64(ckpt.journal_seq);
    w.bytes(&payload);
    w.u32(crc32(&payload));
    w.into_bytes()
}

/// Decodes a checkpoint, verifying magic, version, and checksum before
/// touching the payload.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ServiceCheckpoint, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.raw(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
        return Err(CodecError::Invalid {
            what: "checkpoint magic",
        });
    }
    if r.u32()? != CHECKPOINT_VERSION {
        return Err(CodecError::Invalid {
            what: "checkpoint version",
        });
    }
    let journal_seq = r.u64()?;
    let payload = r.bytes()?;
    let sum = r.u32()?;
    if crc32(payload) != sum {
        return Err(CodecError::Invalid {
            what: "checkpoint checksum",
        });
    }
    let mut p = ByteReader::new(payload);
    let machine_size = p.u32()?;
    let engine = decode_engine(&mut p)?;
    let min_external = SimTime::from_millis(p.u64()?);
    let core = decode_core(&mut p)?;
    let scheduler = SchedulerSnapshot::decode_from(&mut p)?;
    let n = p.u32()? as usize;
    let mut jobs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        jobs.push(Job::decode_from(&mut p)?);
    }
    let n = p.u32()? as usize;
    let mut users = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        users.push(p.u32()?);
    }
    let counters = ServiceCounters {
        accepted: p.u64()?,
        rejected_queue_full: p.u64()?,
        rejected_shutdown: p.u64()?,
        rejected_invalid: p.u64()?,
        rejected_user_quota: p.u64()?,
        cancelled: p.u64()?,
    };
    let n = p.u32()? as usize;
    let mut buckets = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        buckets.push((p.u32()?, p.u64()?, SimTime::from_millis(p.u64()?)));
    }
    if !p.is_exhausted() {
        return Err(CodecError::Invalid {
            what: "checkpoint trailing bytes",
        });
    }
    Ok(ServiceCheckpoint {
        journal_seq,
        machine_size,
        engine,
        min_external,
        core,
        scheduler,
        jobs,
        users,
        counters,
        buckets,
    })
}

/// Writes a checkpoint durably: temp file, fsync, atomic rename.
/// Returns the byte size written.
pub fn write_checkpoint(dir: &Path, ckpt: &ServiceCheckpoint) -> Result<u64, JournalError> {
    let bytes = encode_checkpoint(ckpt);
    let final_path = checkpoint_path(dir, ckpt.journal_seq);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp_path).map_err(|e| iofail(&tmp_path, e))?;
        f.write_all(&bytes).map_err(|e| iofail(&tmp_path, e))?;
        f.sync_data().map_err(|e| iofail(&tmp_path, e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| iofail(&final_path, e))?;
    Ok(bytes.len() as u64)
}

/// Removes checkpoint temp files a crash left mid-write. They are never
/// valid state (a checkpoint only counts once atomically renamed), so
/// the sweep is pure garbage collection; recovery runs it so crashes
/// don't accumulate `.ckpt.tmp` litter.
pub fn sweep_checkpoint_temps(dir: &Path) -> Result<(), JournalError> {
    for entry in fs::read_dir(dir).map_err(|e| iofail(dir, e))? {
        let path = entry.map_err(|e| iofail(dir, e))?.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".ckpt.tmp"));
        if is_tmp {
            fs::remove_file(&path).map_err(|e| iofail(&path, e))?;
        }
    }
    Ok(())
}

/// Loads the newest checkpoint that decodes cleanly, skipping corrupt
/// ones (their paths are returned for logging). `Ok((None, _))` means
/// recovery must replay the journal from genesis. Leftover `.ckpt.tmp`
/// files from a crash mid-checkpoint are swept along the way.
pub fn load_latest_checkpoint(
    dir: &Path,
) -> Result<(Option<ServiceCheckpoint>, Vec<PathBuf>), JournalError> {
    sweep_checkpoint_temps(dir)?;
    let mut files = list_numbered(dir, "checkpoint-", ".ckpt")?;
    files.reverse(); // newest (highest covered seq) first
    let mut skipped = Vec::new();
    for (_, path) in files {
        let bytes = fs::read(&path).map_err(|e| iofail(&path, e))?;
        match decode_checkpoint(&bytes) {
            Ok(ckpt) => return Ok((Some(ckpt), skipped)),
            Err(_) => skipped.push(path),
        }
    }
    Ok((None, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dynp-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn submit(seq: u64, ms: u64) -> JournalRecord {
        JournalRecord::Submit {
            seq,
            stamp: SimTime::from_millis(ms),
            job: seq as u32,
            user: (seq % 3) as u32,
            width: 4,
            estimate: SimDuration::from_secs(60),
            actual: SimDuration::from_secs(45),
        }
    }

    #[test]
    fn journal_round_trips_across_rotation() {
        let dir = tmpdir("roundtrip");
        let mut w = JournalWriter::create(&dir, 32, 1000, "dynp", FsyncPolicy::Never, 200).unwrap();
        let mut rotations = 0;
        for i in 0..20u64 {
            let appended = if i % 5 == 4 {
                w.append_cancel(SimTime::from_millis(i * 10), i as u32 - 1)
                    .unwrap()
            } else {
                w.append(&submit(i, i * 10)).unwrap()
            };
            assert_eq!(appended.seq, i);
            if appended.rotated {
                rotations += 1;
            }
        }
        w.sync().unwrap();
        assert!(rotations >= 2, "tiny rotate_bytes must rotate: {rotations}");

        let journal = read_journal(&dir).unwrap();
        assert_eq!(journal.machine_size, 32);
        assert_eq!(journal.speedup, 1000);
        assert_eq!(journal.scheduler, "dynp");
        assert_eq!(journal.records.len(), 20);
        assert_eq!(journal.next_seq, 20);
        assert!(!journal.torn);
        assert_eq!(journal.segments.len() as u32, journal.last_segment + 1);
        for (i, rec) in journal.records.iter().enumerate() {
            assert_eq!(rec.seq(), i as u64);
            assert_eq!(rec.stamp(), SimTime::from_millis(i as u64 * 10));
        }
        assert!(matches!(
            journal.records[4],
            JournalRecord::Cancel { job: 3, .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_on_last_segment_is_tolerated() {
        let dir = tmpdir("torn");
        let mut w =
            JournalWriter::create(&dir, 8, 1, "FCFS", FsyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..5u64 {
            w.append(&submit(i, i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let path = segment_path(&dir, 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let journal = read_journal(&dir).unwrap();
        assert!(journal.torn);
        assert_eq!(journal.records.len(), 4, "the torn record is dropped");
        assert_eq!(journal.next_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_opens_a_fresh_segment_with_continuous_seqs() {
        let dir = tmpdir("resume");
        let mut w =
            JournalWriter::create(&dir, 8, 1, "FCFS", FsyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..3u64 {
            w.append(&submit(i, i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let journal = read_journal(&dir).unwrap();
        let mut w = JournalWriter::resume(&dir, &journal, FsyncPolicy::Never, u64::MAX).unwrap();
        assert_eq!(w.segment(), 1);
        assert_eq!(w.next_seq(), 3);
        w.append(&submit(3, 30)).unwrap();
        w.sync().unwrap();
        drop(w);

        let journal = read_journal(&dir).unwrap();
        assert_eq!(journal.records.len(), 4);
        assert_eq!(journal.last_segment, 1);
        assert!(!journal.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_only_fully_covered_rotated_segments() {
        let dir = tmpdir("compact");
        let mut w = JournalWriter::create(&dir, 8, 1, "FCFS", FsyncPolicy::Never, 150).unwrap();
        for i in 0..12u64 {
            w.append(&submit(i, i)).unwrap();
        }
        w.sync().unwrap();
        let segs_before = w.segments.clone();
        assert!(segs_before.len() >= 3);
        // Checkpoint through the end of the first rotated segment only.
        let covered = segs_before[1].1 - 1;
        let deleted = w.compact(covered).unwrap();
        assert_eq!(deleted, vec![0]);
        assert!(!segment_path(&dir, 0).exists());
        // Nothing newer may be touched; the journal suffix still reads
        // (read_journal on a compacted dir is the recovery path's job —
        // here just assert the files survived).
        assert!(segment_path(&dir, 1).exists());
        // Covering everything still preserves the live segment.
        let deleted = w.compact(u64::MAX).unwrap();
        assert!(!deleted.contains(&w.segment()));
        assert!(segment_path(&dir, w.segment()).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_typed() {
        // Bad checksum on a complete frame: never tolerated.
        let dir = tmpdir("badsum");
        let mut w =
            JournalWriter::create(&dir, 8, 1, "FCFS", FsyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..3u64 {
            w.append(&submit(i, i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x01; // inside the last record's payload
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&dir),
            Err(JournalError::BadChecksum { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();

        // Unknown version.
        let dir = tmpdir("badver");
        let mut w =
            JournalWriter::create(&dir, 8, 1, "FCFS", FsyncPolicy::Never, u64::MAX).unwrap();
        w.append(&submit(0, 0)).unwrap();
        w.sync().unwrap();
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xEE;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&dir),
            Err(JournalError::UnknownVersion { version: 0xEE, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_genesis_header_is_typed() {
        let dir = tmpdir("torngen");
        // Truncated mid-header on a lone segment 0: the empty-journal
        // shape, not a damaged directory.
        fs::write(segment_path(&dir, 0), b"DYNPJRNL\x01").unwrap();
        assert!(matches!(
            read_journal(&dir),
            Err(JournalError::TornGenesis { .. })
        ));
        assert!(matches!(
            read_journal_header(&dir),
            Err(JournalError::TornGenesis { .. })
        ));
        // With a later segment present the same tear is directory
        // damage, never tolerated.
        let mut w = ByteWriter::new();
        w.raw(JOURNAL_MAGIC);
        w.u32(JOURNAL_VERSION);
        w.u32(8);
        w.u64(1);
        w.str("FCFS");
        w.u32(1);
        w.u64(0);
        fs::write(segment_path(&dir, 1), w.into_bytes()).unwrap();
        assert!(matches!(
            read_journal(&dir),
            Err(JournalError::TornSegment { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_read_matches_the_full_read() {
        let dir = tmpdir("hdr");
        let mut w = JournalWriter::create(&dir, 48, 250, "easy:4", FsyncPolicy::Never, 200).unwrap();
        for i in 0..10u64 {
            w.append(&submit(i, i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let header = read_journal_header(&dir).unwrap();
        let full = read_journal(&dir).unwrap();
        assert_eq!(header.machine_size, full.machine_size);
        assert_eq!(header.speedup, full.speedup);
        assert_eq!(header.scheduler, full.scheduler);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_temp_files_are_swept_on_load() {
        let dir = tmpdir("ckpttmp");
        let stale = dir.join("checkpoint-0000000005.ckpt.tmp");
        fs::write(&stale, b"half-written wreck").unwrap();
        let (latest, skipped) = load_latest_checkpoint(&dir).unwrap();
        assert!(latest.is_none());
        assert!(skipped.is_empty(), "tmp files are not checkpoints");
        assert!(!stale.exists(), "the crash leftover is swept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_files_fall_back_to_the_previous_valid_one() {
        let dir = tmpdir("ckptfall");
        let ckpt = |seq: u64| ServiceCheckpoint {
            journal_seq: seq,
            machine_size: 16,
            engine: EngineSnapshot {
                now: SimTime::from_millis(seq * 100),
                processed: seq,
                next_seq: 0,
                entries: Vec::new(),
            },
            min_external: SimTime::from_millis(seq * 100),
            core: dynp_sim::ShardCore::new(
                16,
                dynp_rms::AdmissionConfig::default(),
                0,
                dynp_workload::RetryPolicy::default(),
                SimTime::ZERO,
                dynp_obs::Tracer::disabled(),
                0,
            )
            .snapshot(),
            scheduler: SchedulerSnapshot {
                tag: "static",
                words: Vec::new(),
            },
            jobs: Vec::new(),
            users: Vec::new(),
            counters: ServiceCounters::default(),
            buckets: vec![(0, 500, SimTime::from_millis(seq))],
        };
        write_checkpoint(&dir, &ckpt(10)).unwrap();
        write_checkpoint(&dir, &ckpt(20)).unwrap();

        let (latest, skipped) = load_latest_checkpoint(&dir).unwrap();
        assert_eq!(latest.unwrap().journal_seq, 20);
        assert!(skipped.is_empty());

        // Corrupt the newest: loader falls back to seq 10 and reports
        // the skip.
        let newest = checkpoint_path(&dir, 20);
        let mut bytes = fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x80;
        fs::write(&newest, &bytes).unwrap();
        let (latest, skipped) = load_latest_checkpoint(&dir).unwrap();
        assert_eq!(latest.unwrap().journal_seq, 10);
        assert_eq!(skipped, vec![newest]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
