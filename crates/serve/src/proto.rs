//! The newline-delimited JSON wire protocol.
//!
//! One JSON object per line in each direction; the codec is a thin,
//! hand-rolled layer over the typed API (the workspace vendors a no-op
//! serde, so wire formats are written out by hand and parsed with
//! [`dynp_obs::parse::Json`], the same recursive-descent parser the
//! trace tooling uses).
//!
//! Requests:
//!
//! ```text
//! {"cmd":"submit","width":4,"estimate_ms":60000,"actual_ms":30000,"user":7}
//! {"cmd":"cancel","job":3}
//! {"cmd":"status"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Replies (one per request, in request order per connection):
//!
//! ```text
//! {"ok":true,"job":3,"admitted_ms":12345}
//! {"ok":false,"error":"overload","reason":"queue_full"}
//! {"ok":false,"error":"invalid","reason":"width 0 ..."}
//! {"ok":true,"cancelled":3,"found":true}
//! {"ok":true,"now_ms":...,"waiting":...,"running":...,"completed":...,
//!  "lost":...,"accepted":...,"rejected":...,"free":...,"machine":...,
//!  "draining":false}
//! {"ok":true,"draining":true}
//! ```

use crate::api::{Reply, SubmitError, SubmitSpec};
use dynp_des::SimDuration;
use dynp_obs::parse::Json;

/// A parsed client request (the transport-free half of
/// [`crate::api::Command`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(SubmitSpec),
    /// Cancel a waiting job.
    Cancel(u32),
    /// Query service state.
    Status,
    /// Begin graceful shutdown.
    Shutdown,
}

/// Parses one request line. Errors name the missing or malformed field
/// so clients can fix their request.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line)?;
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string field \"cmd\"")?;
    match cmd {
        "submit" => {
            let field = |key: &str| -> Result<u64, String> {
                json.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("submit needs integer field {key:?}"))
            };
            let width = u32::try_from(field("width")?)
                .map_err(|_| "field \"width\" out of range".to_string())?;
            let estimate = SimDuration::from_millis(field("estimate_ms")?);
            // The actual run time defaults to the estimate (a job that
            // uses its whole request).
            let actual = match json.get("actual_ms").and_then(Json::as_u64) {
                Some(ms) => SimDuration::from_millis(ms),
                None => estimate,
            };
            let user = json.get("user").and_then(Json::as_u64).unwrap_or(0) as u32;
            Ok(Request::Submit(SubmitSpec {
                width,
                estimate,
                actual,
                user,
            }))
        }
        "cancel" => {
            let job = json
                .get("job")
                .and_then(Json::as_u64)
                .ok_or("cancel needs integer field \"job\"")?;
            let job = u32::try_from(job).map_err(|_| "field \"job\" out of range".to_string())?;
            Ok(Request::Cancel(job))
        }
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one reply line (no trailing newline).
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Accepted(t) => format!(
            "{{\"ok\":true,\"job\":{},\"admitted_ms\":{}}}",
            t.job,
            t.admitted_at.as_millis()
        ),
        Reply::Rejected(SubmitError::Overload(reason)) => format!(
            "{{\"ok\":false,\"error\":\"overload\",\"reason\":\"{}\"}}",
            reason.label()
        ),
        Reply::Rejected(SubmitError::Invalid(why)) => format!(
            "{{\"ok\":false,\"error\":\"invalid\",\"reason\":\"{}\"}}",
            escape(why)
        ),
        Reply::Cancelled { job, found } => {
            format!("{{\"ok\":true,\"cancelled\":{job},\"found\":{found}}}")
        }
        Reply::Status(s) => format!(
            "{{\"ok\":true,\"now_ms\":{},\"waiting\":{},\"running\":{},\"completed\":{},\
             \"lost\":{},\"accepted\":{},\"rejected\":{},\"free\":{},\"machine\":{},\
             \"draining\":{}}}",
            s.now.as_millis(),
            s.waiting,
            s.running,
            s.completed,
            s.lost,
            s.accepted,
            s.rejected,
            s.free_processors,
            s.machine_size,
            s.draining
        ),
        Reply::Draining => "{\"ok\":true,\"draining\":true}".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OverloadReason, ServiceStatus, Ticket};
    use dynp_des::SimTime;

    #[test]
    fn submit_round_trips() {
        let req = parse_request(
            r#"{"cmd":"submit","width":4,"estimate_ms":60000,"actual_ms":30000,"user":7}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Submit(SubmitSpec {
                width: 4,
                estimate: SimDuration::from_millis(60_000),
                actual: SimDuration::from_millis(30_000),
                user: 7,
            })
        );
    }

    #[test]
    fn submit_defaults_actual_to_estimate() {
        let req = parse_request(r#"{"cmd":"submit","width":1,"estimate_ms":5000}"#).unwrap();
        match req {
            Request::Submit(spec) => {
                assert_eq!(spec.actual, spec.estimate);
                assert_eq!(spec.user, 0);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn other_commands_parse() {
        assert_eq!(
            parse_request(r#"{"cmd":"cancel","job":3}"#).unwrap(),
            Request::Cancel(3)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn bad_requests_name_the_problem() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"fly"}"#)
            .unwrap_err()
            .contains("fly"));
        assert!(parse_request(r#"{"cmd":"submit"}"#)
            .unwrap_err()
            .contains("width"));
        assert!(parse_request(r#"{"cmd":"cancel"}"#)
            .unwrap_err()
            .contains("job"));
    }

    #[test]
    fn reply_lines_parse_back() {
        let cases = vec![
            render_reply(&Reply::Accepted(Ticket {
                job: 3,
                admitted_at: SimTime::from_millis(12_345),
            })),
            render_reply(&Reply::Rejected(SubmitError::Overload(
                OverloadReason::QueueFull,
            ))),
            render_reply(&Reply::Rejected(SubmitError::Invalid(
                "width 0 \"quoted\"".into(),
            ))),
            render_reply(&Reply::Cancelled {
                job: 9,
                found: true,
            }),
            render_reply(&Reply::Status(ServiceStatus::default())),
            render_reply(&Reply::Draining),
        ];
        for line in cases {
            let json = Json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
            assert!(json.get("ok").is_some(), "no ok field in {line}");
        }
        let accepted = render_reply(&Reply::Accepted(Ticket {
            job: 3,
            admitted_at: SimTime::from_millis(12_345),
        }));
        let json = Json::parse(&accepted).unwrap();
        assert_eq!(json.get("job").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("admitted_ms").and_then(Json::as_u64), Some(12_345));
    }
}
