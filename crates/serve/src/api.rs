//! The typed in-process service API.
//!
//! Clients talk to the daemon over an [`std::sync::mpsc`] channel of
//! [`Command`]s; every command that expects an answer carries its own
//! reply sender, so replies route to the right caller regardless of how
//! many clients share the channel. The newline-delimited JSON protocol
//! ([`crate::proto`]) is a thin codec over exactly these types.

use crate::journal::{FsyncPolicy, DEFAULT_ROTATE_BYTES};
use dynp_des::{SimDuration, SimTime};
use dynp_obs::Tracer;
use dynp_sim::{DetailedRun, SchedulerSpec};
use std::path::PathBuf;
use std::sync::mpsc::Sender;

/// One job submission: what the user asks for. The daemon assigns the
/// job id and stamps the submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Requested processors.
    pub width: u32,
    /// Requested (estimated) run time.
    pub estimate: SimDuration,
    /// Actual run time. A real RMS learns this when the job exits; the
    /// service model carries it up front so the simulated execution
    /// completes on its own — the digital-twin analogue of the SWF run
    /// time field.
    pub actual: SimDuration,
    /// Submitting user (load-generator bookkeeping; not scheduled on).
    pub user: u32,
}

/// Why a submission was turned away by backpressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadReason {
    /// The bounded waiting queue is at capacity.
    QueueFull,
    /// The daemon is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The submitting user is over their admission quota (token bucket)
    /// or over their fair share while the queue is congested. Other
    /// users' submissions are still being accepted.
    UserQuota,
}

impl OverloadReason {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadReason::QueueFull => "queue_full",
            OverloadReason::ShuttingDown => "shutting_down",
            OverloadReason::UserQuota => "user_quota",
        }
    }
}

/// A rejected submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Typed backpressure: the request was well-formed but the service
    /// refuses it right now. Retry later (or elsewhere).
    Overload(OverloadReason),
    /// The request itself is unusable (zero width, wider than the
    /// machine, …). Retrying unchanged will never succeed.
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overload(r) => write!(f, "overloaded: {}", r.label()),
            SubmitError::Invalid(why) => write!(f, "invalid submission: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Receipt for an accepted submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// The assigned job id (dense, in acceptance order — also the job's
    /// id in the session log's replay).
    pub job: u32,
    /// Service-clock instant the submission was admitted at.
    pub admitted_at: SimTime,
}

/// A point-in-time view of the service.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStatus {
    /// Current service-clock time.
    pub now: SimTime,
    /// Jobs waiting in the queue.
    pub waiting: usize,
    /// Jobs running on the machine.
    pub running: usize,
    /// Jobs completed so far.
    pub completed: usize,
    /// Jobs lost to faults (always 0 without fault injection).
    pub lost: usize,
    /// Submissions accepted since start.
    pub accepted: u64,
    /// Submissions rejected since start (overload + invalid).
    pub rejected: u64,
    /// Free processors right now.
    pub free_processors: u32,
    /// Machine size.
    pub machine_size: u32,
    /// True once shutdown has begun.
    pub draining: bool,
}

/// A reply to one command.
#[derive(Clone, Debug)]
pub enum Reply {
    /// The submission was admitted.
    Accepted(Ticket),
    /// The submission was refused.
    Rejected(SubmitError),
    /// Outcome of a cancel: `found` is false when the job was not
    /// waiting (already started, finished, or never existed).
    Cancelled {
        /// The job the cancel named.
        job: u32,
        /// Whether a waiting job was actually withdrawn.
        found: bool,
    },
    /// Status snapshot.
    Status(ServiceStatus),
    /// Shutdown acknowledged; the daemon is draining.
    Draining,
}

/// A client request, carrying the sender its reply goes to.
#[derive(Debug)]
pub enum Command {
    /// Submit a job.
    Submit(SubmitSpec, Sender<Reply>),
    /// Cancel a waiting job by id.
    Cancel(u32, Sender<Reply>),
    /// Query the service state.
    Status(Sender<Reply>),
    /// Begin graceful shutdown: stop accepting, drain in-flight events
    /// at full speed, flush logs, exit. The reply (if a sender is given)
    /// is [`Reply::Draining`].
    Shutdown(Option<Sender<Reply>>),
}

/// Per-user admission quota: a token bucket refilled in service time.
///
/// Every accepted submission costs 1000 millitokens; a user's bucket
/// refills at `rate_mtok_per_sec` millitokens per simulation second up
/// to `burst_mtok`. A rate of 0 disables quota enforcement entirely
/// (the default — quotas are opt-in overload control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Refill rate in millitokens per simulation second (1000 = one
    /// submission per second sustained). 0 disables quotas.
    pub rate_mtok_per_sec: u64,
    /// Bucket capacity in millitokens (the burst allowance).
    pub burst_mtok: u64,
}

impl QuotaConfig {
    /// Quotas off (the default).
    pub fn disabled() -> QuotaConfig {
        QuotaConfig {
            rate_mtok_per_sec: 0,
            burst_mtok: 0,
        }
    }

    /// True when quota enforcement is active.
    pub fn enabled(&self) -> bool {
        self.rate_mtok_per_sec > 0
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Machine size in processors.
    pub machine_size: u32,
    /// Scheduler recipe — the same [`SchedulerSpec`] batch experiments
    /// use, so live and replayed runs build identical schedulers.
    pub scheduler: SchedulerSpec,
    /// Bounded-queue backpressure: submissions arriving while this many
    /// jobs are already waiting are rejected with
    /// [`OverloadReason::QueueFull`].
    pub max_queue: usize,
    /// Service-clock scale: simulation milliseconds per wall
    /// millisecond. 1 is real time; larger values run second-scale
    /// workloads in millisecond wall time (tests, smoke runs).
    pub speedup: u64,
    /// Journal directory for the durable WAL + checkpoints (None = no
    /// durability; the daemon is then not crash-safe).
    pub journal: Option<PathBuf>,
    /// When journal writes reach disk (see
    /// [`crate::journal::FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Checkpoint cadence: write a checkpoint every N journaled records
    /// (0 = only at segment rotations).
    pub checkpoint_every: u64,
    /// Journal segment rotation threshold in bytes.
    pub rotate_bytes: u64,
    /// Delete rotated segments once a checkpoint fully covers them.
    pub compact: bool,
    /// Per-user admission quotas (see [`QuotaConfig`]).
    pub quota: QuotaConfig,
    /// Tracer threaded through the scheduler and driver, exactly as in
    /// batch runs.
    pub tracer: Tracer,
}

impl ServiceConfig {
    /// A config with conventional defaults: queue bound 1024, real-time
    /// clock, no journal, fsync-always, 1 MiB segments, checkpoint at
    /// rotation only, no compaction, quotas off, tracing off.
    pub fn new(machine_size: u32, scheduler: SchedulerSpec) -> ServiceConfig {
        ServiceConfig {
            machine_size,
            scheduler,
            max_queue: 1024,
            speedup: 1,
            journal: None,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 0,
            rotate_bytes: DEFAULT_ROTATE_BYTES,
            compact: false,
            quota: QuotaConfig::disabled(),
            tracer: Tracer::disabled(),
        }
    }
}

/// What the daemon returns when it exits.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// The finished run, measured exactly like a batch simulation (the
    /// drained session satisfies the same invariants: conservation,
    /// empty queue, idle machine).
    pub run: DetailedRun,
    /// Submissions accepted.
    pub accepted: u64,
    /// Submissions rejected with [`OverloadReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Submissions rejected with [`OverloadReason::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Submissions rejected as invalid.
    pub rejected_invalid: u64,
    /// Submissions rejected with [`OverloadReason::UserQuota`].
    pub rejected_user_quota: u64,
    /// Waiting jobs withdrawn by cancel commands.
    pub cancelled: u64,
    /// Fingerprint of the service state at drain time — hashes the core
    /// and scheduler snapshots plus the remaining timer entries (not the
    /// wall clock or dispatch counters, which status queries perturb).
    /// `None` when the scheduler does not support snapshotting.
    pub fingerprint: Option<u128>,
}
