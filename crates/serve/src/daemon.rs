//! The service daemon: the batch driver's [`ShardCore`] on a wall clock.
//!
//! [`spawn`] starts one daemon thread that owns the whole scheduling
//! state — `RmsState`, the self-tuning scheduler, the session log — and
//! multiplexes two event sources through a
//! [`WallClockSource`]: its own timers (job completions, scheduled by
//! the driver exactly as in simulation) and external [`Command`]s from
//! any number of clients. Every event goes through the *same*
//! [`ShardCore::handle`] the batch simulator runs, which is the whole
//! digital-twin argument: nothing in the scheduling path knows whether
//! the clock is real.
//!
//! Shutdown drains rather than aborts: the wall source stops sleeping
//! and fast-forwards the remaining completions in virtual time, the
//! session log and reply channels are flushed, and the core's
//! end-of-run invariants (job conservation, idle machine) are asserted
//! exactly as after a batch run.

use crate::api::{
    Command, OverloadReason, Reply, ServiceConfig, ServiceReport, ServiceStatus, SubmitError,
    SubmitSpec, Ticket,
};
use crate::session::SessionLog;
use dynp_des::{EventClock, Tick, WallClockSource};
use dynp_rms::AdmissionConfig;
use dynp_sim::shard::{Event, ShardCore};
use dynp_workload::{FaultPlan, Job, JobId};
use std::io;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

/// A cheaply cloneable client handle to a running daemon.
///
/// The synchronous helpers create a private reply channel per call; for
/// open-loop load generation use [`ServiceHandle::sender`] and pair each
/// command with your own reply receiver so requests never wait on each
/// other.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Command>,
}

impl ServiceHandle {
    /// The raw command sender (for asynchronous clients).
    pub fn sender(&self) -> Sender<Command> {
        self.tx.clone()
    }

    /// Submits a job and waits for the verdict.
    pub fn submit(&self, spec: SubmitSpec) -> Result<Ticket, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Command::Submit(spec, reply_tx)).is_err() {
            return Err(SubmitError::Overload(OverloadReason::ShuttingDown));
        }
        match reply_rx.recv() {
            Ok(Reply::Accepted(t)) => Ok(t),
            Ok(Reply::Rejected(e)) => Err(e),
            _ => Err(SubmitError::Overload(OverloadReason::ShuttingDown)),
        }
    }

    /// Cancels a waiting job; true if it was withdrawn.
    pub fn cancel(&self, job: u32) -> bool {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Command::Cancel(job, reply_tx)).is_err() {
            return false;
        }
        matches!(reply_rx.recv(), Ok(Reply::Cancelled { found: true, .. }))
    }

    /// Queries the service state (None once the daemon has exited).
    pub fn status(&self) -> Option<ServiceStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx.send(Command::Status(reply_tx)).ok()?;
        match reply_rx.recv() {
            Ok(Reply::Status(s)) => Some(s),
            _ => None,
        }
    }

    /// Requests graceful shutdown and returns immediately; join the
    /// handle returned by [`spawn`] to wait for the drained report.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Command::Shutdown(None));
    }
}

/// Starts the daemon thread. Returns the client handle and the join
/// handle yielding the end-of-session [`ServiceReport`]; the daemon
/// exits when a shutdown command arrives or every [`ServiceHandle`]
/// clone (and raw sender) is dropped.
pub fn spawn(config: ServiceConfig) -> io::Result<(ServiceHandle, JoinHandle<ServiceReport>)> {
    let (tx, rx) = mpsc::channel();
    let session = match &config.session_log {
        Some(path) => Some(SessionLog::create(
            path,
            config.machine_size,
            &config.scheduler.name(),
            config.speedup,
        )?),
        None => None,
    };
    let join = std::thread::Builder::new()
        .name("dynp-serve".into())
        .spawn(move || run_daemon(config, rx, session))?;
    Ok((ServiceHandle { tx }, join))
}

/// The daemon state that isn't the shard core: counters and the log.
struct Service {
    config: ServiceConfig,
    session: Option<SessionLog>,
    jobs: Vec<Job>,
    accepted: u64,
    rejected_queue_full: u64,
    rejected_shutdown: u64,
    rejected_invalid: u64,
    cancelled: u64,
    draining: bool,
}

impl Service {
    fn validate(&self, spec: &SubmitSpec) -> Result<(), String> {
        if spec.width == 0 {
            return Err("width must be at least 1".into());
        }
        if spec.width > self.config.machine_size {
            return Err(format!(
                "width {} exceeds machine size {}",
                spec.width, self.config.machine_size
            ));
        }
        Ok(())
    }

    fn status(&self, core: &ShardCore, now: dynp_des::SimTime) -> ServiceStatus {
        let state = core.state();
        ServiceStatus {
            now,
            waiting: state.waiting().len(),
            running: state.running().len(),
            completed: state.completed().len(),
            lost: state.lost().len(),
            accepted: self.accepted,
            rejected: self.rejected_queue_full + self.rejected_shutdown + self.rejected_invalid,
            free_processors: state.free_processors(),
            machine_size: state.machine_size(),
            draining: self.draining,
        }
    }
}

fn run_daemon(
    config: ServiceConfig,
    rx: Receiver<Command>,
    session: Option<SessionLog>,
) -> ServiceReport {
    let faults = FaultPlan::none();
    let mut scheduler = config.scheduler.build();
    scheduler.set_tracer(config.tracer.clone());
    let mut src: WallClockSource<Event, Command> = WallClockSource::new(rx, config.speedup);
    let mut core = ShardCore::new(
        config.machine_size,
        AdmissionConfig::default(),
        0,
        faults.retry,
        dynp_des::SimTime::ZERO,
        config.tracer.clone(),
        0,
    );
    let mut svc = Service {
        config,
        session,
        jobs: Vec::new(),
        accepted: 0,
        rejected_queue_full: 0,
        rejected_shutdown: 0,
        rejected_invalid: 0,
        cancelled: 0,
        draining: false,
    };

    while let Some(tick) = src.next_tick() {
        match tick {
            Tick::Timer(event) => {
                core.handle(&mut src, event, &mut *scheduler, &svc.jobs, &[], &faults);
            }
            Tick::External(cmd) => {
                handle_command(&mut svc, &mut core, &mut src, &mut *scheduler, &faults, cmd)
            }
        }
    }
    // Clients that raced the drain get a typed refusal instead of a
    // dropped channel.
    for cmd in src.drain_externals() {
        refuse(&mut svc, &core, &src, cmd);
    }
    if let Some(log) = svc.session.as_mut() {
        let _ = log.flush();
    }
    let expected = (svc.accepted - svc.cancelled) as usize;
    let run = core.finish(
        &src,
        scheduler.name(),
        "service".to_string(),
        &faults,
        Some(expected),
    );
    ServiceReport {
        run,
        accepted: svc.accepted,
        rejected_queue_full: svc.rejected_queue_full,
        rejected_shutdown: svc.rejected_shutdown,
        rejected_invalid: svc.rejected_invalid,
        cancelled: svc.cancelled,
    }
}

fn handle_command(
    svc: &mut Service,
    core: &mut ShardCore,
    src: &mut WallClockSource<Event, Command>,
    scheduler: &mut dyn dynp_rms::Scheduler,
    faults: &FaultPlan,
    cmd: Command,
) {
    match cmd {
        Command::Submit(spec, reply) => {
            let verdict = admit(svc, core, src, scheduler, faults, spec);
            let _ = reply.send(match verdict {
                Ok(t) => Reply::Accepted(t),
                Err(e) => Reply::Rejected(e),
            });
        }
        Command::Cancel(job, reply) => {
            let found = match core.cancel_waiting(JobId(job)) {
                Some(_) => {
                    svc.cancelled += 1;
                    if let Some(log) = svc.session.as_mut() {
                        let _ = log.record_cancel(job, src.now());
                    }
                    true
                }
                None => false,
            };
            let _ = reply.send(Reply::Cancelled { job, found });
        }
        Command::Status(reply) => {
            let _ = reply.send(Reply::Status(svc.status(core, src.now())));
        }
        Command::Shutdown(reply) => {
            svc.draining = true;
            src.begin_drain();
            if let Some(reply) = reply {
                let _ = reply.send(Reply::Draining);
            }
        }
    }
}

/// The admission path: validate, apply backpressure, stamp, log, and
/// run the arrival through the shared driver.
fn admit(
    svc: &mut Service,
    core: &mut ShardCore,
    src: &mut WallClockSource<Event, Command>,
    scheduler: &mut dyn dynp_rms::Scheduler,
    faults: &FaultPlan,
    spec: SubmitSpec,
) -> Result<Ticket, SubmitError> {
    if svc.draining {
        svc.rejected_shutdown += 1;
        return Err(SubmitError::Overload(OverloadReason::ShuttingDown));
    }
    if let Err(why) = svc.validate(&spec) {
        svc.rejected_invalid += 1;
        return Err(SubmitError::Invalid(why));
    }
    if core.state().waiting().len() >= svc.config.max_queue {
        svc.rejected_queue_full += 1;
        return Err(SubmitError::Overload(OverloadReason::QueueFull));
    }
    let now = src.now();
    let id = JobId(svc.jobs.len() as u32);
    let job = Job::new(id, now, spec.width, spec.estimate, spec.actual);
    svc.jobs.push(job);
    core.ensure_jobs(svc.jobs.len());
    if let Some(log) = svc.session.as_mut() {
        let _ = log.record(&job);
    }
    core.handle(src, Event::Arrive(id), scheduler, &svc.jobs, &[], faults);
    svc.accepted += 1;
    Ok(Ticket {
        job: id.0,
        admitted_at: now,
    })
}

/// Answers a command that arrived after the drain finished.
fn refuse(
    svc: &mut Service,
    core: &ShardCore,
    src: &WallClockSource<Event, Command>,
    cmd: Command,
) {
    match cmd {
        Command::Submit(_, reply) => {
            svc.rejected_shutdown += 1;
            let _ = reply.send(Reply::Rejected(SubmitError::Overload(
                OverloadReason::ShuttingDown,
            )));
        }
        Command::Cancel(job, reply) => {
            let _ = reply.send(Reply::Cancelled { job, found: false });
        }
        Command::Status(reply) => {
            let _ = reply.send(Reply::Status(svc.status(core, src.now())));
        }
        Command::Shutdown(reply) => {
            if let Some(reply) = reply {
                let _ = reply.send(Reply::Draining);
            }
        }
    }
}
