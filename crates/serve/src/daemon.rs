//! The service daemon: the batch driver's [`ShardCore`] on a wall clock,
//! made crash-safe.
//!
//! [`spawn`] starts one daemon thread that owns the whole scheduling
//! state — `RmsState`, the self-tuning scheduler, the durable journal —
//! and multiplexes two event sources through a [`WallClockSource`]: its
//! own timers (job completions, scheduled by the driver exactly as in
//! simulation) and external [`Command`]s from any number of clients.
//! Every event goes through the *same* [`ShardCore::handle`] the batch
//! simulator runs, which is the whole digital-twin argument: nothing in
//! the scheduling path knows whether the clock is real.
//!
//! ## Durability and recovery
//!
//! With a journal configured, every accepted submission is appended to
//! the WAL (and, under the default fsync policy, on disk) *before* the
//! client sees `accepted`; accepted cancels are journaled the same way.
//! Checkpoints of the complete service state are written at segment
//! rotations and on a configurable record cadence. [`recover`] rebuilds
//! the daemon after a crash: load the newest valid checkpoint, replay
//! the journal suffix through the same driver loop on a
//! [`ReplaySource`] (timers strictly before each record's stamp, then
//! the record — the exact live dispatch order), and go live again on a
//! resumed wall clock. The result is bit-identical to a daemon that was
//! never killed, which `tests/service_replay.rs` pins with a
//! crash-at-any-point property test.
//!
//! ## Overload control
//!
//! Beyond the bounded queue, per-user token buckets
//! ([`QuotaConfig`]) and weighted-fair shedding keep one heavy user
//! (the Zipf head) from starving the tail: when the queue is congested
//! (≥ ¾ full), a submission from a user already holding more than their
//! fair share of waiting slots is rejected with
//! [`OverloadReason::UserQuota`] even if the bucket has tokens.
//!
//! Shutdown drains rather than aborts: the wall source stops sleeping
//! and fast-forwards the remaining completions in virtual time, the
//! journal is fsynced, reply channels are flushed, and the core's
//! end-of-run invariants (job conservation, idle machine) are asserted
//! exactly as after a batch run.

use crate::api::{
    Command, OverloadReason, QuotaConfig, Reply, ServiceConfig, ServiceReport, ServiceStatus,
    SubmitError, SubmitSpec, Ticket,
};
use crate::cli::render_scheduler;
use crate::journal::{
    load_latest_checkpoint, read_journal, repair_torn_tail, write_checkpoint, JournalError,
    JournalRecord, JournalWriter, ServiceCheckpoint, ServiceCounters,
};
use crate::session::{jobs_of_records, service_fingerprint, validate_replay_suffix, ReplayError};
use dynp_des::{EngineSnapshot, EventClock, ReplaySource, SimTime, Tick, WallClockSource};
use dynp_obs::TraceEvent;
use dynp_rms::{AdmissionConfig, Scheduler};
use dynp_sim::shard::{Event, ShardCore};
use dynp_workload::{FaultPlan, Job, JobId};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

/// A cheaply cloneable client handle to a running daemon.
///
/// The synchronous helpers create a private reply channel per call; for
/// open-loop load generation use [`ServiceHandle::sender`] and pair each
/// command with your own reply receiver so requests never wait on each
/// other.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Command>,
}

impl ServiceHandle {
    /// The raw command sender (for asynchronous clients).
    pub fn sender(&self) -> Sender<Command> {
        self.tx.clone()
    }

    /// Submits a job and waits for the verdict.
    pub fn submit(&self, spec: SubmitSpec) -> Result<Ticket, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Command::Submit(spec, reply_tx)).is_err() {
            return Err(SubmitError::Overload(OverloadReason::ShuttingDown));
        }
        match reply_rx.recv() {
            Ok(Reply::Accepted(t)) => Ok(t),
            Ok(Reply::Rejected(e)) => Err(e),
            _ => Err(SubmitError::Overload(OverloadReason::ShuttingDown)),
        }
    }

    /// Cancels a waiting job; true if it was withdrawn.
    pub fn cancel(&self, job: u32) -> bool {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Command::Cancel(job, reply_tx)).is_err() {
            return false;
        }
        matches!(reply_rx.recv(), Ok(Reply::Cancelled { found: true, .. }))
    }

    /// Queries the service state (None once the daemon has exited).
    pub fn status(&self) -> Option<ServiceStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx.send(Command::Status(reply_tx)).ok()?;
        match reply_rx.recv() {
            Ok(Reply::Status(s)) => Some(s),
            _ => None,
        }
    }

    /// Requests graceful shutdown and returns immediately; join the
    /// handle returned by [`spawn`] to wait for the drained report.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Command::Shutdown(None));
    }
}

/// Why [`recover`] could not rebuild a daemon from a journal directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// The config has no journal directory.
    NoJournal,
    /// The journal failed to read or validate.
    Journal(JournalError),
    /// The journaled records are internally inconsistent.
    Replay(ReplayError),
    /// The journal header disagrees with the config (machine size,
    /// speedup) — recovering into a different service shape would not
    /// be a recovery.
    Mismatch(&'static str),
    /// Compaction deleted the journal's genesis segments but no
    /// surviving checkpoint covers the compacted-away prefix (the
    /// newest ones were corrupt or missing) — neither the checkpoint
    /// fast-path nor a from-genesis replay can rebuild the state.
    CompactionGap,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NoJournal => write!(f, "no journal directory configured"),
            RecoverError::Journal(e) => write!(f, "{e}"),
            RecoverError::Replay(e) => write!(f, "{e}"),
            RecoverError::Mismatch(what) => {
                write!(f, "journal header disagrees with config: {what}")
            }
            RecoverError::CompactionGap => write!(
                f,
                "compacted journal prefix is not covered by any surviving checkpoint"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> Self {
        RecoverError::Journal(e)
    }
}

impl From<ReplayError> for RecoverError {
    fn from(e: ReplayError) -> Self {
        RecoverError::Replay(e)
    }
}

/// Starts a fresh daemon thread. Returns the client handle and the join
/// handle yielding the end-of-session [`ServiceReport`]; the daemon
/// exits when a shutdown command arrives or every [`ServiceHandle`]
/// clone (and raw sender) is dropped.
pub fn spawn(config: ServiceConfig) -> io::Result<(ServiceHandle, JoinHandle<ServiceReport>)> {
    let journal = match &config.journal {
        Some(dir) => Some(
            JournalWriter::create(
                dir,
                config.machine_size,
                config.speedup,
                &render_scheduler(&config.scheduler),
                config.fsync,
                config.rotate_bytes,
            )
            .map_err(|e| io::Error::other(e.to_string()))?,
        ),
        None => None,
    };
    let (tx, rx) = mpsc::channel();
    let join = std::thread::Builder::new()
        .name("dynp-serve".into())
        .spawn(move || run_daemon(config, rx, journal, None))?;
    Ok((ServiceHandle { tx }, join))
}

/// Recovers a daemon from its journal directory after a crash: loads
/// the newest valid checkpoint (falling back past corrupt ones, and to
/// a from-genesis replay when none survives), replays the journal
/// suffix through the driver loop, and goes live on a resumed wall
/// clock. Acknowledged work is never lost; the recovered state is
/// bit-identical to an uninterrupted run's. On a *compacted* journal
/// genesis replay is impossible, so a surviving checkpoint covering the
/// compacted prefix is required ([`RecoverError::CompactionGap`]
/// otherwise); a lone torn genesis header means nothing was ever
/// acknowledged, and recovery starts the service fresh.
pub fn recover(
    config: ServiceConfig,
) -> Result<(ServiceHandle, JoinHandle<ServiceReport>), RecoverError> {
    let dir = config.journal.clone().ok_or(RecoverError::NoJournal)?;
    let journal = match read_journal(&dir) {
        Ok(journal) => journal,
        // The crash hit before the very first header was durable, so
        // nothing was ever acknowledged: remove the torn file and start
        // the service fresh on the configured shape.
        Err(JournalError::TornGenesis { path }) => {
            std::fs::remove_file(&path).map_err(|e| {
                RecoverError::Journal(JournalError::Io {
                    path,
                    error: e.to_string(),
                })
            })?;
            return spawn(config).map_err(|e| {
                RecoverError::Journal(JournalError::Io {
                    path: dir,
                    error: e.to_string(),
                })
            });
        }
        Err(e) => return Err(e.into()),
    };
    // Truncate the crash's torn tail now, so the directory stays
    // readable once `resume` appends segments behind it (a tear is only
    // tolerated on the *last* segment).
    repair_torn_tail(&dir, &journal)?;
    if journal.machine_size != config.machine_size {
        return Err(RecoverError::Mismatch("machine size"));
    }
    if journal.speedup != config.speedup {
        return Err(RecoverError::Mismatch("speedup"));
    }
    if journal.scheduler != render_scheduler(&config.scheduler) {
        return Err(RecoverError::Mismatch("scheduler"));
    }
    // Seq of the first surviving record: 0 unless compaction deleted
    // the genesis segments.
    let first_base_seq = journal.segments.first().map_or(0, |&(_, base)| base);
    let (checkpoint, _skipped) = load_latest_checkpoint(&dir)?;
    // A checkpoint is only usable if it matches this journal and this
    // scheduler — *and* covers everything compaction deleted; anything
    // else falls back to genesis replay, which is always correct (just
    // slower) but only possible while the journal still starts at seq 0.
    let checkpoint = checkpoint.filter(|c| {
        c.machine_size == config.machine_size
            && c.journal_seq <= journal.next_seq
            && c.journal_seq >= first_base_seq
            && c.jobs.len() == c.users.len()
            && config
                .scheduler
                .build()
                .snapshot()
                .is_some_and(|s| s.tag == c.scheduler.tag)
    });
    // Validate record consistency up front so the caller gets a typed
    // error instead of a daemon-thread panic: with a checkpoint, only
    // the suffix being replayed must continue its job table densely;
    // genesis replay needs the full from-0 sequence, which a compacted
    // journal no longer has.
    match &checkpoint {
        Some(c) => validate_replay_suffix(&journal.records, c.journal_seq, c.jobs.len() as u32)?,
        None if first_base_seq > 0 => return Err(RecoverError::CompactionGap),
        None => {
            jobs_of_records(&journal.records)?;
        }
    }
    let writer = JournalWriter::resume(&dir, &journal, config.fsync, config.rotate_bytes)?;
    let seed = RecoveredState {
        records: journal.records,
        checkpoint,
    };
    let (tx, rx) = mpsc::channel();
    let join = std::thread::Builder::new()
        .name("dynp-serve".into())
        .spawn(move || run_daemon(config, rx, Some(writer), Some(seed)))
        .map_err(|e| {
            RecoverError::Journal(JournalError::Io {
                path: dir,
                error: e.to_string(),
            })
        })?;
    Ok((ServiceHandle { tx }, join))
}

/// What [`recover`] hands the daemon thread: the journal's merged
/// record sequence and (maybe) a checkpoint to fast-forward from.
struct RecoveredState {
    records: Vec<JournalRecord>,
    checkpoint: Option<ServiceCheckpoint>,
}

/// Per-user admission token buckets.
///
/// Levels are kept in an exact internal unit (1 millitoken = 1000
/// units) so refill arithmetic never truncates: accrual over an
/// interval is `rate_mtok_per_sec × Δms` units regardless of how many
/// refill calls the interval is split into. That associativity is what
/// makes bucket state recoverable — rejected submissions touch buckets
/// but are not journaled, and with exact arithmetic the replayed
/// buckets still land on the live values.
struct QuotaBuckets {
    cfg: QuotaConfig,
    /// user → (level in units, last refill stamp).
    buckets: HashMap<u32, (u64, SimTime)>,
}

/// Internal units per millitoken.
const UNITS_PER_MTOK: u64 = 1000;
/// Cost of one accepted submission: 1000 millitokens.
const SUBMIT_COST_UNITS: u64 = 1000 * UNITS_PER_MTOK;

impl QuotaBuckets {
    fn new(cfg: QuotaConfig) -> QuotaBuckets {
        QuotaBuckets {
            cfg,
            buckets: HashMap::new(),
        }
    }

    fn burst_units(&self) -> u64 {
        self.cfg.burst_mtok.saturating_mul(UNITS_PER_MTOK)
    }

    /// Brings `user`'s bucket current at `now` and returns its level.
    fn refill(&mut self, user: u32, now: SimTime) -> u64 {
        let burst = self.burst_units();
        let entry = self.buckets.entry(user).or_insert((burst, now));
        let delta_ms = now.saturating_since(entry.1).as_millis();
        let accrued = self.cfg.rate_mtok_per_sec.saturating_mul(delta_ms);
        entry.0 = entry.0.saturating_add(accrued).min(burst);
        entry.1 = now;
        entry.0
    }

    /// The live admission check: refill, then charge if affordable.
    fn try_charge(&mut self, user: u32, now: SimTime) -> bool {
        if !self.cfg.enabled() {
            return true;
        }
        if self.refill(user, now) < SUBMIT_COST_UNITS {
            return false;
        }
        let entry = self.buckets.get_mut(&user).expect("refilled above");
        entry.0 -= SUBMIT_COST_UNITS;
        true
    }

    /// The replay path: the record is journaled, so the live daemon
    /// accepted it — charge unconditionally to land on the same level.
    fn charge_replayed(&mut self, user: u32, now: SimTime) {
        if !self.cfg.enabled() {
            return;
        }
        self.refill(user, now);
        let entry = self.buckets.get_mut(&user).expect("refilled above");
        entry.0 = entry.0.saturating_sub(SUBMIT_COST_UNITS);
    }

    fn snapshot(&self) -> Vec<(u32, u64, SimTime)> {
        let mut out: Vec<(u32, u64, SimTime)> = self
            .buckets
            .iter()
            .map(|(&u, &(level, last))| (u, level, last))
            .collect();
        out.sort();
        out
    }

    fn restore(&mut self, snap: &[(u32, u64, SimTime)]) {
        self.buckets = snap
            .iter()
            .map(|&(u, level, last)| (u, (level, last)))
            .collect();
    }
}

/// The daemon state that isn't the shard core: counters, the job/user
/// tables, quotas, and the journal.
struct Service {
    config: ServiceConfig,
    journal: Option<JournalWriter>,
    jobs: Vec<Job>,
    /// Submitting user of each job, parallel to `jobs`.
    users: Vec<u32>,
    quotas: QuotaBuckets,
    counters: ServiceCounters,
    draining: bool,
    /// Records journaled since the last checkpoint (cadence counter).
    since_checkpoint: u64,
}

impl Service {
    fn validate(&self, spec: &SubmitSpec) -> Result<(), String> {
        if spec.width == 0 {
            return Err("width must be at least 1".into());
        }
        if spec.width > self.config.machine_size {
            return Err(format!(
                "width {} exceeds machine size {}",
                spec.width, self.config.machine_size
            ));
        }
        Ok(())
    }

    /// Weighted-fair shedding: under congestion (queue ≥ ¾ full), a
    /// user holding more than their fair share `max_queue / active
    /// users` of waiting slots is shed. Only active when quotas are.
    fn over_fair_share(&self, core: &ShardCore, user: u32) -> bool {
        if !self.quotas.cfg.enabled() {
            return false;
        }
        let waiting = core.state().waiting();
        if waiting.len() * 4 < self.config.max_queue * 3 {
            return false;
        }
        let mut active: Vec<u32> = waiting
            .iter()
            .map(|j| self.users[j.id.0 as usize])
            .collect();
        let occupancy = active.iter().filter(|&&u| u == user).count();
        active.sort_unstable();
        active.dedup();
        let fair = self.config.max_queue / active.len().max(1);
        occupancy > fair.max(1)
    }

    fn status(&self, core: &ShardCore, now: SimTime) -> ServiceStatus {
        let state = core.state();
        let c = &self.counters;
        ServiceStatus {
            now,
            waiting: state.waiting().len(),
            running: state.running().len(),
            completed: state.completed().len(),
            lost: state.lost().len(),
            accepted: c.accepted,
            rejected: c.rejected_queue_full
                + c.rejected_shutdown
                + c.rejected_invalid
                + c.rejected_user_quota,
            free_processors: state.free_processors(),
            machine_size: state.machine_size(),
            draining: self.draining,
        }
    }

    /// Writes a checkpoint of the complete service state (a no-op for
    /// snapshotless schedulers — recovery then replays from genesis).
    fn checkpoint(
        &mut self,
        core: &ShardCore,
        scheduler: &dyn Scheduler,
        engine: EngineSnapshot<Event>,
        min_external: SimTime,
    ) {
        let (dir, writer) = match (&self.config.journal, &self.journal) {
            (Some(dir), Some(writer)) => (dir.clone(), writer),
            _ => return,
        };
        let scheduler_snap = match scheduler.snapshot() {
            Some(s) => s,
            None => return,
        };
        let ckpt = ServiceCheckpoint {
            journal_seq: writer.next_seq(),
            machine_size: self.config.machine_size,
            engine,
            min_external,
            core: core.snapshot(),
            scheduler: scheduler_snap,
            jobs: self.jobs.clone(),
            users: self.users.clone(),
            counters: self.counters,
            buckets: self.quotas.snapshot(),
        };
        match write_checkpoint(&dir, &ckpt) {
            Ok(bytes) => {
                self.since_checkpoint = 0;
                self.config.tracer.record(
                    ckpt.engine.now,
                    TraceEvent::CheckpointWritten {
                        journal_seq: ckpt.journal_seq,
                        bytes,
                    },
                );
                if self.config.compact {
                    if let Some(writer) = self.journal.as_mut() {
                        // Everything below journal_seq is in the
                        // checkpoint; rotated segments it covers are
                        // redundant.
                        let _ = writer.compact(ckpt.journal_seq.saturating_sub(1));
                    }
                }
            }
            Err(e) => {
                // A failed checkpoint degrades recovery time, not
                // correctness — the journal still has everything.
                eprintln!("dynp-serve: checkpoint failed: {e}");
            }
        }
    }

    /// Handles post-append bookkeeping: cadence counting and
    /// rotation/cadence-driven checkpoints.
    fn after_append(
        &mut self,
        rotated: bool,
        core: &ShardCore,
        scheduler: &dyn Scheduler,
        src: &WallClockSource<Event, Command>,
    ) {
        self.since_checkpoint += 1;
        let cadence_due = self.config.checkpoint_every > 0
            && self.since_checkpoint >= self.config.checkpoint_every;
        if rotated {
            if let Some(writer) = &self.journal {
                self.config.tracer.record(
                    src.now(),
                    TraceEvent::JournalRotated {
                        segment: writer.segment(),
                        bytes: 0,
                    },
                );
            }
        }
        if rotated || cadence_due {
            self.checkpoint(core, scheduler, src.engine_snapshot(), src.min_external());
        }
    }
}

fn run_daemon(
    config: ServiceConfig,
    rx: Receiver<Command>,
    journal: Option<JournalWriter>,
    recovered: Option<RecoveredState>,
) -> ServiceReport {
    let faults = FaultPlan::none();
    let mut scheduler = config.scheduler.build();
    scheduler.set_tracer(config.tracer.clone());
    let mut core = ShardCore::new(
        config.machine_size,
        AdmissionConfig::default(),
        0,
        faults.retry,
        SimTime::ZERO,
        config.tracer.clone(),
        0,
    );
    let quota = config.quota;
    let mut svc = Service {
        config,
        journal,
        jobs: Vec::new(),
        users: Vec::new(),
        quotas: QuotaBuckets::new(quota),
        counters: ServiceCounters::default(),
        draining: false,
        since_checkpoint: 0,
    };

    // Recovery: fast-forward from the checkpoint (if any), then replay
    // the journal suffix through the same handler the live loop runs.
    let mut src = match recovered {
        None => WallClockSource::new(rx, svc.config.speedup),
        Some(seed) => {
            let (replay_src, replayed) =
                replay_recovered(&mut svc, &mut core, scheduler.as_mut(), &faults, seed);
            let (engine_snap, min_external) = replay_src.into_snapshot();
            svc.config.tracer.record(
                engine_snap.now,
                TraceEvent::CheckpointLoaded {
                    journal_seq: svc.journal.as_ref().map_or(0, JournalWriter::next_seq),
                    replayed,
                },
            );
            WallClockSource::resume(rx, svc.config.speedup, &engine_snap, min_external)
        }
    };

    while let Some(tick) = src.next_tick() {
        match tick {
            Tick::Timer(event) => {
                core.handle(&mut src, event, &mut *scheduler, &svc.jobs, &[], &faults);
            }
            Tick::External(cmd) => {
                handle_command(&mut svc, &mut core, &mut src, &mut *scheduler, &faults, cmd)
            }
        }
    }
    // Clients that raced the drain get a typed refusal instead of a
    // dropped channel.
    for cmd in src.drain_externals() {
        refuse(&mut svc, &core, &src, cmd);
    }
    // The journal hits disk before the summary, whatever the policy.
    if let Some(writer) = svc.journal.as_mut() {
        let _ = writer.sync();
    }
    let fingerprint = service_fingerprint(&core, scheduler.as_ref(), Vec::new());
    let expected = (svc.counters.accepted - svc.counters.cancelled) as usize;
    let run = core.finish(
        &src,
        scheduler.name(),
        "service".to_string(),
        &faults,
        Some(expected),
    );
    let c = svc.counters;
    ServiceReport {
        run,
        accepted: c.accepted,
        rejected_queue_full: c.rejected_queue_full,
        rejected_shutdown: c.rejected_shutdown,
        rejected_invalid: c.rejected_invalid,
        rejected_user_quota: c.rejected_user_quota,
        cancelled: c.cancelled,
        fingerprint,
    }
}

/// Applies a recovered journal to the daemon state: restore the
/// checkpoint, then replay the record suffix in the live dispatch
/// order — every pending timer strictly before the next record's
/// stamp, then the record itself. Returns the replay source (to resume
/// the wall clock from) and the number of records replayed.
fn replay_recovered(
    svc: &mut Service,
    core: &mut ShardCore,
    scheduler: &mut dyn Scheduler,
    faults: &FaultPlan,
    seed: RecoveredState,
) -> (ReplaySource<Event>, u64) {
    let mut first_seq = 0;
    let mut replay_src = match &seed.checkpoint {
        Some(ckpt) => {
            core.restore(&ckpt.core);
            scheduler.restore(&ckpt.scheduler);
            svc.jobs = ckpt.jobs.clone();
            svc.users = ckpt.users.clone();
            svc.counters = ckpt.counters;
            svc.quotas.restore(&ckpt.buckets);
            core.ensure_jobs(svc.jobs.len());
            first_seq = ckpt.journal_seq;
            ReplaySource::from_snapshot(&ckpt.engine, ckpt.min_external)
        }
        None => ReplaySource::fresh(),
    };
    let mut replayed = 0u64;
    for rec in seed.records.iter().filter(|r| r.seq() >= first_seq) {
        let stamp = rec.stamp();
        while let Some(ev) = replay_src.pop_timer_before(Some(stamp)) {
            core.handle(&mut replay_src, ev, scheduler, &svc.jobs, &[], faults);
        }
        replay_src.note_external(stamp);
        match *rec {
            JournalRecord::Submit {
                job,
                user,
                width,
                estimate,
                actual,
                ..
            } => {
                debug_assert_eq!(job as usize, svc.jobs.len(), "journal ids are dense");
                svc.jobs.push(Job {
                    id: JobId(job),
                    submit: stamp,
                    width,
                    estimate,
                    actual,
                });
                svc.users.push(user);
                core.ensure_jobs(svc.jobs.len());
                svc.quotas.charge_replayed(user, stamp);
                core.handle(
                    &mut replay_src,
                    Event::Arrive(JobId(job)),
                    scheduler,
                    &svc.jobs,
                    &[],
                    faults,
                );
                svc.counters.accepted += 1;
            }
            JournalRecord::Cancel { job, .. } => {
                if core.cancel_waiting(JobId(job)).is_some() {
                    svc.counters.cancelled += 1;
                }
            }
        }
        replayed += 1;
    }
    (replay_src, replayed)
}

fn handle_command(
    svc: &mut Service,
    core: &mut ShardCore,
    src: &mut WallClockSource<Event, Command>,
    scheduler: &mut dyn Scheduler,
    faults: &FaultPlan,
    cmd: Command,
) {
    match cmd {
        Command::Submit(spec, reply) => {
            let verdict = admit(svc, core, src, scheduler, faults, spec);
            let _ = reply.send(match verdict {
                Ok(t) => Reply::Accepted(t),
                Err(e) => Reply::Rejected(e),
            });
        }
        Command::Cancel(job, reply) => {
            let found = match core.cancel_waiting(JobId(job)) {
                Some(_) => {
                    svc.counters.cancelled += 1;
                    let stamp = src.now();
                    if let Some(writer) = svc.journal.as_mut() {
                        let appended = writer
                            .append_cancel(stamp, job)
                            .unwrap_or_else(|e| panic!("journal append failed: {e}"));
                        svc.after_append(appended.rotated, core, scheduler, src);
                    }
                    true
                }
                None => false,
            };
            let _ = reply.send(Reply::Cancelled { job, found });
        }
        Command::Status(reply) => {
            let _ = reply.send(Reply::Status(svc.status(core, src.now())));
        }
        Command::Shutdown(reply) => {
            svc.draining = true;
            src.begin_drain();
            if let Some(reply) = reply {
                let _ = reply.send(Reply::Draining);
            }
        }
    }
}

/// The admission path: validate, apply backpressure and quotas, stamp,
/// journal durably, and run the arrival through the shared driver. The
/// journal append precedes every state mutation, so a crash at any
/// point either loses an unacknowledged request (the client never saw
/// `accepted`) or replays an acknowledged one — never the reverse.
fn admit(
    svc: &mut Service,
    core: &mut ShardCore,
    src: &mut WallClockSource<Event, Command>,
    scheduler: &mut dyn Scheduler,
    faults: &FaultPlan,
    spec: SubmitSpec,
) -> Result<Ticket, SubmitError> {
    if svc.draining {
        svc.counters.rejected_shutdown += 1;
        return Err(SubmitError::Overload(OverloadReason::ShuttingDown));
    }
    if let Err(why) = svc.validate(&spec) {
        svc.counters.rejected_invalid += 1;
        return Err(SubmitError::Invalid(why));
    }
    if core.state().waiting().len() >= svc.config.max_queue {
        svc.counters.rejected_queue_full += 1;
        return Err(SubmitError::Overload(OverloadReason::QueueFull));
    }
    let now = src.now();
    if svc.over_fair_share(core, spec.user) || !svc.quotas.try_charge(spec.user, now) {
        svc.counters.rejected_user_quota += 1;
        svc.config.tracer.record(
            now,
            TraceEvent::QuotaRejected {
                user: spec.user,
                queue_depth: core.state().waiting().len() as u32,
            },
        );
        return Err(SubmitError::Overload(OverloadReason::UserQuota));
    }
    let id = JobId(svc.jobs.len() as u32);
    let job = Job::new(id, now, spec.width, spec.estimate, spec.actual);
    let mut rotated = false;
    if let Some(writer) = svc.journal.as_mut() {
        let appended = writer
            .append_submit(now, id.0, spec.user, job.width, job.estimate, job.actual)
            .unwrap_or_else(|e| panic!("journal append failed: {e}"));
        rotated = appended.rotated;
    }
    svc.jobs.push(job);
    svc.users.push(spec.user);
    core.ensure_jobs(svc.jobs.len());
    core.handle(src, Event::Arrive(id), scheduler, &svc.jobs, &[], faults);
    svc.counters.accepted += 1;
    if svc.journal.is_some() {
        svc.after_append(rotated, core, scheduler, src);
    }
    Ok(Ticket {
        job: id.0,
        admitted_at: now,
    })
}

/// Answers a command that arrived after the drain finished.
fn refuse(
    svc: &mut Service,
    core: &ShardCore,
    src: &WallClockSource<Event, Command>,
    cmd: Command,
) {
    match cmd {
        Command::Submit(_, reply) => {
            svc.counters.rejected_shutdown += 1;
            let _ = reply.send(Reply::Rejected(SubmitError::Overload(
                OverloadReason::ShuttingDown,
            )));
        }
        Command::Cancel(job, reply) => {
            let _ = reply.send(Reply::Cancelled { job, found: false });
        }
        Command::Status(reply) => {
            let _ = reply.send(Reply::Status(svc.status(core, src.now())));
        }
        Command::Shutdown(reply) => {
            if let Some(reply) = reply {
                let _ = reply.send(Reply::Draining);
            }
        }
    }
}
