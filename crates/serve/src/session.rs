//! Journal replay: the replay side of the record/replay guarantee.
//!
//! The daemon journals every accepted command — submission *and*
//! cancellation — into the typed, checksummed WAL described in
//! [`crate::journal`]. [`replay_session`] feeds a journal directory back
//! through the batch DES driver with the same scheduler recipe; because
//! the wall-clock source never stamps an external at or before an
//! already-dispatched timer (see `dynp_des::clock`), seeding the
//! journaled externals at their recorded stamps — with tie-break ranks
//! in journal order, below every dynamic event — presents the identical
//! `(time, event)` sequence to the identical driver and reproduces the
//! live schedules bit-for-bit.
//!
//! Cancellations are inside that envelope now: a journaled cancel seeds
//! an [`Event::CancelCmd`] that withdraws the waiting job exactly as
//! the live daemon's cancel path did, at the same instant, so sessions
//! with cancels replay just as exactly as ones without. (The SWF-era
//! refusal of cancel-bearing logs is gone with the SWF log itself.)

use crate::journal::{read_journal, JournalError, JournalRecord};
use dynp_des::{Engine, EngineSnapshot, SimTime};
use dynp_obs::Tracer;
use dynp_rms::{AdmissionConfig, Scheduler};
use dynp_sim::{DetailedRun, Event, SchedulerSpec, ShardCore, SimSnapshot};
use dynp_workload::{FaultPlan, Job, JobId};
use std::fmt;
use std::path::Path;

/// Errors raised while replaying a journaled session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The journal directory failed to read or validate.
    Journal(JournalError),
    /// Submission records do not assign dense job ids (0, 1, 2, …) —
    /// the journal was not written by this daemon's admission path.
    JobIdMismatch {
        /// The id the next submission record had to carry.
        expected: u32,
        /// The id it actually carried.
        found: u32,
    },
    /// A cancel record names a job no submission record introduced.
    UnknownJob {
        /// The offending job id.
        job: u32,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Journal(e) => write!(f, "journal error: {e}"),
            ReplayError::JobIdMismatch { expected, found } => {
                write!(f, "non-dense job ids: expected {expected}, found {found}")
            }
            ReplayError::UnknownJob { job } => write!(f, "cancel of unknown job {job}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<JournalError> for ReplayError {
    fn from(e: JournalError) -> Self {
        ReplayError::Journal(e)
    }
}

/// Reconstructs the service job table from a record sequence. Also used
/// by recovery to rebuild per-user state. Returns `(jobs, users)`,
/// parallel vectors indexed by job id.
pub fn jobs_of_records(records: &[JournalRecord]) -> Result<(Vec<Job>, Vec<u32>), ReplayError> {
    let mut jobs = Vec::new();
    let mut users = Vec::new();
    for rec in records {
        match *rec {
            JournalRecord::Submit {
                stamp,
                job,
                user,
                width,
                estimate,
                actual,
                ..
            } => {
                if job as usize != jobs.len() {
                    return Err(ReplayError::JobIdMismatch {
                        expected: jobs.len() as u32,
                        found: job,
                    });
                }
                // Verbatim reconstruction — the journal records the job
                // exactly as admitted, so no re-validation or clamping.
                jobs.push(Job {
                    id: JobId(job),
                    submit: stamp,
                    width,
                    estimate,
                    actual,
                });
                users.push(user);
            }
            JournalRecord::Cancel { job, .. } => {
                if job as usize >= jobs.len() {
                    return Err(ReplayError::UnknownJob { job });
                }
            }
        }
    }
    Ok((jobs, users))
}

/// Validates the record suffix a recovery replays *on top of a
/// checkpoint*: submissions with `seq >= first_seq` must assign dense
/// job ids continuing at `next_job` (the checkpoint's job count), and
/// cancels must name a job some earlier submission introduced — either
/// in the suffix or inside the checkpoint. Records below `first_seq`
/// are already inside the checkpoint and may start at any job id (a
/// compacted journal's surviving prefix does).
pub fn validate_replay_suffix(
    records: &[JournalRecord],
    first_seq: u64,
    mut next_job: u32,
) -> Result<(), ReplayError> {
    for rec in records.iter().filter(|r| r.seq() >= first_seq) {
        match *rec {
            JournalRecord::Submit { job, .. } => {
                if job != next_job {
                    return Err(ReplayError::JobIdMismatch {
                        expected: next_job,
                        found: job,
                    });
                }
                next_job += 1;
            }
            JournalRecord::Cancel { job, .. } => {
                if job >= next_job {
                    return Err(ReplayError::UnknownJob { job });
                }
            }
        }
    }
    Ok(())
}

/// Fingerprint of the *service-visible* state: core, scheduler, and
/// remaining timer entries (sorted) — but not the clock or dispatch
/// counters, which unjournaled status queries perturb in a live run.
/// Recovery identity is pinned against this value: a recovered daemon
/// and a never-killed daemon drain to the same fingerprint, and so does
/// the batch replay of their journal. `None` when the scheduler does
/// not support snapshotting.
pub fn service_fingerprint(
    core: &ShardCore,
    scheduler: &dyn Scheduler,
    mut entries: Vec<(SimTime, u64, Event)>,
) -> Option<u128> {
    let scheduler_snap = scheduler.snapshot()?;
    entries.sort_by_key(|&(t, seq, _)| (t, seq));
    let snap = SimSnapshot {
        core: core.snapshot(),
        engine: EngineSnapshot {
            now: SimTime::ZERO,
            processed: 0,
            next_seq: 0,
            entries,
        },
        scheduler: scheduler_snap,
    };
    Some(snap.fingerprint())
}

/// The result of a batch session replay: the finished run plus the
/// service-identity facts the daemon's summary line carries, so a
/// replay can be diffed against a live (or recovered) session.
#[derive(Clone, Debug)]
pub struct SessionReplay {
    /// The finished run, measured exactly like a batch simulation.
    pub run: DetailedRun,
    /// Drain-time service fingerprint (see [`service_fingerprint`]).
    pub fingerprint: Option<u128>,
    /// Journaled submissions.
    pub accepted: u64,
    /// Journaled cancellations.
    pub cancelled: u64,
}

/// Replays a record sequence through the batch driver: every journaled
/// external is seeded at its recorded stamp with a tie-break rank in
/// journal order (below all dynamic events, exactly the live dispatch
/// order), then the engine runs dry.
pub fn replay_records(
    machine_size: u32,
    records: &[JournalRecord],
    spec: &SchedulerSpec,
) -> Result<SessionReplay, ReplayError> {
    let (jobs, _users) = jobs_of_records(records)?;
    let faults = FaultPlan::none();
    let mut scheduler = spec.build();
    let mut core = ShardCore::new(
        machine_size,
        AdmissionConfig::default(),
        jobs.len(),
        faults.retry,
        SimTime::ZERO,
        Tracer::disabled(),
        0,
    );
    let mut eng: Engine<Event> = Engine::new();
    let mut cancels = 0usize;
    for (rank, rec) in records.iter().enumerate() {
        match *rec {
            JournalRecord::Submit { stamp, job, .. } => {
                eng.schedule_seeded(stamp, rank as u64, Event::Arrive(JobId(job)));
            }
            JournalRecord::Cancel { stamp, job, .. } => {
                eng.schedule_seeded(stamp, rank as u64, Event::CancelCmd(JobId(job)));
                cancels += 1;
            }
        }
    }
    while let Some((_, ev)) = eng.step() {
        core.handle(&mut eng, ev, scheduler.as_mut(), &jobs, &[], &faults);
    }
    let fingerprint = service_fingerprint(&core, scheduler.as_ref(), Vec::new());
    // The daemon journals a cancel only when it actually withdrew a
    // waiting job, so every journaled cancel removes exactly one job
    // from the completion count.
    let expected = jobs.len() - cancels;
    let run = core.finish(
        &eng,
        scheduler.name().to_string(),
        "session".to_string(),
        &faults,
        Some(expected),
    );
    Ok(SessionReplay {
        run,
        fingerprint,
        accepted: jobs.len() as u64,
        cancelled: cancels as u64,
    })
}

/// Replays a recorded session through the batch DES driver with the
/// given scheduler recipe, reproducing the live run's schedules exactly
/// (same starts, same completions, same SLDwA). `dir` is a journal
/// directory; the machine size comes from the segment headers. The
/// scheduler must match the recipe the daemon ran (also recorded in the
/// headers — [`session_scheduler`] reads it back).
pub fn replay_session(dir: &Path, spec: &SchedulerSpec) -> Result<SessionReplay, ReplayError> {
    let journal = read_journal(dir)?;
    replay_records(journal.machine_size, &journal.records, spec)
}

/// Reads the machine size from a session journal's headers (for tools
/// that inspect journals without replaying them).
pub fn session_machine_size(dir: &Path) -> Result<u32, ReplayError> {
    Ok(read_journal(dir)?.machine_size)
}

/// Reads the scheduler spec spelling the daemon recorded in the journal
/// headers (parse with [`crate::parse_scheduler`]).
pub fn session_scheduler(dir: &Path) -> Result<String, ReplayError> {
    Ok(read_journal(dir)?.scheduler)
}
