//! SWF session logs: the record side of the record/replay guarantee.
//!
//! Every accepted submission is appended to the log as a standard SWF
//! job line (fractional seconds carry the millisecond stamp), flushed
//! line-by-line so a killed daemon leaves a complete, parseable prefix.
//! [`replay_session`] feeds the log back through the batch driver
//! ([`simulate_chaos`]) with the same scheduler recipe; because the
//! wall-clock source never stamps an external submission at or before an
//! already-dispatched timer (see `dynp_des::clock`), the replay presents
//! the identical `(time, event)` sequence to the identical driver and
//! reproduces the live schedules bit-for-bit.
//!
//! Cancellations are outside that envelope: a cancelled job influenced
//! planning while it sat in the queue, but never ran — no SWF record can
//! express that to the batch driver. Cancels are logged as `;CANCEL`
//! audit lines and [`replay_session`] refuses logs that contain them
//! rather than replaying them wrong.

use dynp_des::SimTime;
use dynp_obs::Tracer;
use dynp_rms::AdmissionConfig;
use dynp_sim::{simulate_chaos, DetailedRun, SchedulerSpec};
use dynp_workload::swf::{read_swf, swf_job_line};
use dynp_workload::{FaultPlan, Job};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header tag carrying the machine size (standard SWF header field).
const MACHINE_TAG: &str = "; MaxProcs:";
/// Audit directive recording a cancel: `;CANCEL <job+1> <ms>`.
const CANCEL_TAG: &str = ";CANCEL";

/// An append-only SWF session log.
pub struct SessionLog {
    out: BufWriter<File>,
    records: u64,
}

impl SessionLog {
    /// Creates (truncating) the log at `path` and writes the header.
    pub fn create(
        path: &Path,
        machine_size: u32,
        scheduler: &str,
        speedup: u64,
    ) -> io::Result<SessionLog> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "; dynp-serve session log")?;
        writeln!(out, "{MACHINE_TAG} {machine_size}")?;
        writeln!(out, "; Scheduler: {scheduler}")?;
        writeln!(out, "; Speedup: {speedup}")?;
        out.flush()?;
        Ok(SessionLog { out, records: 0 })
    }

    /// Appends one accepted submission and flushes, so the log is always
    /// a complete prefix of the session even if the process dies.
    pub fn record(&mut self, job: &Job) -> io::Result<()> {
        writeln!(self.out, "{}", swf_job_line(job))?;
        self.records += 1;
        self.out.flush()
    }

    /// Appends a cancel audit line. The job's submission record stays in
    /// the log (it really was accepted and really did occupy the queue);
    /// this directive marks the session as not bit-replayable.
    pub fn record_cancel(&mut self, job: u32, at: SimTime) -> io::Result<()> {
        writeln!(self.out, "{CANCEL_TAG} {} {}", job + 1, at.as_millis())?;
        self.out.flush()
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered output to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Errors raised while replaying a session log.
#[derive(Debug)]
pub enum ReplayError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The log has no `; MaxProcs:` header (not a session log).
    NoMachineSize,
    /// The log contains `;CANCEL` directives — the session is auditable
    /// but not bit-replayable (see module docs).
    HasCancellations,
    /// The SWF body failed to parse.
    Malformed(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "I/O error: {e}"),
            ReplayError::NoMachineSize => {
                write!(f, "session log has no '{MACHINE_TAG}' header")
            }
            ReplayError::HasCancellations => write!(
                f,
                "session contains {CANCEL_TAG} directives and is not bit-replayable"
            ),
            ReplayError::Malformed(why) => write!(f, "malformed session log: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// Replays a recorded session through the batch DES driver with the
/// given scheduler recipe, reproducing the live run's schedules exactly
/// (same starts, same completions, same SLDwA). The machine size comes
/// from the log's header; the scheduler must match the recipe the
/// daemon ran (also recorded in the header, for humans).
pub fn replay_session(path: &Path, spec: &SchedulerSpec) -> Result<DetailedRun, ReplayError> {
    let text = std::fs::read_to_string(path)?;
    let mut machine_size = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix(MACHINE_TAG) {
            machine_size = rest.trim().parse::<u32>().ok();
        }
        if trimmed.starts_with(CANCEL_TAG) {
            return Err(ReplayError::HasCancellations);
        }
    }
    let machine_size = machine_size.ok_or(ReplayError::NoMachineSize)?;
    let name = path
        .file_stem()
        .map_or_else(|| "session".to_string(), |s| s.to_string_lossy().into());
    let set = read_swf(BufReader::new(text.as_bytes()), name, machine_size)
        .map_err(|e| ReplayError::Malformed(e.to_string()))?;
    let mut scheduler = spec.build();
    Ok(simulate_chaos(
        &set,
        &mut *scheduler,
        &[],
        AdmissionConfig::default(),
        &FaultPlan::none(),
        Tracer::disabled(),
    ))
}

/// Reads the machine size from a session log header (for tools that
/// inspect logs without replaying them).
pub fn session_machine_size(path: &Path) -> Result<u32, ReplayError> {
    let file = BufReader::new(File::open(path)?);
    for line in file.lines() {
        let line = line?;
        if let Some(rest) = line.trim().strip_prefix(MACHINE_TAG) {
            if let Ok(v) = rest.trim().parse::<u32>() {
                return Ok(v);
            }
        }
    }
    Err(ReplayError::NoMachineSize)
}
