//! # dynp-serve — real-time service mode
//!
//! Everything built below this crate runs under the batch DES driver;
//! this crate runs the *same* planning core as a long-running daemon
//! serving live traffic, making the simulator a digital twin of the
//! service (and vice versa):
//!
//! * [`daemon`] — the daemon thread: `RmsState` + self-tuning scheduler
//!   behind a [`dynp_des::WallClockSource`], a typed submission/query/
//!   cancel API with bounded-queue backpressure, graceful drain on
//!   shutdown;
//! * [`api`] — the command/reply types shared by the in-process channel
//!   API and the wire protocol;
//! * [`proto`] — the newline-delimited JSON codec (Unix socket or
//!   stdin transport, see the `daemon` bin);
//! * [`journal`] — the durable write-ahead log of accepted commands and
//!   the checkpoint store: typed, checksummed, rotated, compactable
//!   (see DESIGN.md §14);
//! * [`session`] — journal replay: a recorded session replays
//!   bit-identically through the batch DES driver, cancellations
//!   included (the record/replay guarantee; see DESIGN.md §12 for why
//!   the stamp discipline makes this exact).
//!
//! Crash safety is the combination: every accepted command is journaled
//! (fsynced, by default) before the client sees the acknowledgement;
//! [`daemon::recover`] rebuilds a killed daemon from the newest valid
//! checkpoint plus the journal suffix, bit-identical to a daemon that
//! was never killed.
//!
//! The `loadgen` bin drives a daemon with an open-loop workload —
//! Zipfian user population, Poisson arrivals, multi-worker fan-out — and
//! reports sustained throughput and admission-latency percentiles
//! (p50/p99/p999), overall and per user, into `BENCH_service.json`.
//! The `replay` bin re-derives a daemon summary from a journal alone
//! (the CI crash-recovery job diffs the two).

pub mod api;
pub mod cli;
pub mod daemon;
pub mod journal;
pub mod proto;
pub mod session;

pub use api::{
    Command, OverloadReason, QuotaConfig, Reply, ServiceConfig, ServiceReport, ServiceStatus,
    SubmitError, SubmitSpec, Ticket,
};
pub use cli::{parse_scheduler, render_scheduler};
pub use daemon::{recover, spawn, RecoverError, ServiceHandle};
pub use journal::{
    load_latest_checkpoint, read_journal, read_journal_header, repair_torn_tail,
    sweep_checkpoint_temps, FsyncPolicy, JournalDir, JournalError, JournalHeader, JournalRecord,
    JournalWriter,
};
pub use proto::{parse_request, render_reply, Request};
pub use session::{
    jobs_of_records, replay_records, replay_session, service_fingerprint, session_machine_size,
    session_scheduler, validate_replay_suffix, ReplayError, SessionReplay,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_rms::Policy;
    use dynp_sim::SchedulerSpec;

    fn config() -> ServiceConfig {
        let mut c = ServiceConfig::new(8, SchedulerSpec::Static(Policy::Fcfs));
        c.speedup = 1000; // sim seconds in wall milliseconds
        c
    }

    fn spec(width: u32, secs: u64) -> SubmitSpec {
        SubmitSpec {
            width,
            estimate: SimDuration::from_secs(secs),
            actual: SimDuration::from_secs(secs),
            user: 0,
        }
    }

    #[test]
    fn submissions_run_to_completion() {
        let (handle, join) = spawn(config()).unwrap();
        let t0 = handle.submit(spec(4, 2)).unwrap();
        let t1 = handle.submit(spec(4, 1)).unwrap();
        assert_eq!(t0.job, 0);
        assert_eq!(t1.job, 1);
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.run.completed.len(), 2);
        assert_eq!(report.run.faults.lost, 0);
    }

    #[test]
    fn invalid_submissions_are_typed() {
        let (handle, join) = spawn(config()).unwrap();
        match handle.submit(spec(0, 1)) {
            Err(SubmitError::Invalid(why)) => assert!(why.contains("width")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        match handle.submit(spec(9, 1)) {
            Err(SubmitError::Invalid(why)) => assert!(why.contains("machine")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.rejected_invalid, 2);
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let mut c = config();
        c.max_queue = 2;
        let (handle, join) = spawn(c).unwrap();
        // The machine holds one 8-wide job; the rest wait. Queue bound 2
        // admits 3 in total (1 running + 2 waiting), then overloads.
        let mut accepted = 0u32;
        let mut overloaded = 0u32;
        for _ in 0..6 {
            match handle.submit(spec(8, 30)) {
                Ok(_) => accepted += 1,
                Err(SubmitError::Overload(OverloadReason::QueueFull)) => overloaded += 1,
                other => panic!("unexpected verdict: {other:?}"),
            }
        }
        assert_eq!(accepted, 3);
        assert_eq!(overloaded, 3);
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.rejected_queue_full, 3);
        assert_eq!(report.run.completed.len(), 3);
    }

    #[test]
    fn status_reports_live_state() {
        let (handle, join) = spawn(config()).unwrap();
        handle.submit(spec(8, 60)).unwrap();
        handle.submit(spec(8, 60)).unwrap();
        let status = handle.status().unwrap();
        assert_eq!(status.machine_size, 8);
        assert_eq!(status.running, 1);
        assert_eq!(status.waiting, 1);
        assert_eq!(status.accepted, 2);
        assert!(!status.draining);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn cancel_withdraws_waiting_jobs_only() {
        let (handle, join) = spawn(config()).unwrap();
        let running = handle.submit(spec(8, 60)).unwrap();
        let waiting = handle.submit(spec(8, 60)).unwrap();
        assert!(!handle.cancel(running.job), "running job must not cancel");
        assert!(handle.cancel(waiting.job));
        assert!(!handle.cancel(99), "unknown job must not cancel");
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.run.completed.len(), 1);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (handle, join) = spawn(config()).unwrap();
        handle.submit(spec(2, 5)).unwrap();
        handle.shutdown();
        // The daemon may still be draining or already gone; either way
        // the verdict is the typed shutdown overload.
        match handle.submit(spec(2, 5)) {
            Err(SubmitError::Overload(OverloadReason::ShuttingDown)) => {}
            Ok(_) => panic!("accepted a submission after shutdown"),
            Err(other) => panic!("wrong error: {other:?}"),
        }
        let report = join.join().unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.run.completed.len(), 1);
    }

    #[test]
    fn dropping_every_handle_drains_the_daemon() {
        let (handle, join) = spawn(config()).unwrap();
        handle.submit(spec(4, 3)).unwrap();
        drop(handle);
        let report = join.join().unwrap();
        assert_eq!(report.run.completed.len(), 1);
    }
}
