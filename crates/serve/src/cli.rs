//! Command-line helpers shared by the `daemon` and `loadgen` bins.

use dynp_core::DeciderKind;
use dynp_rms::Policy;
use dynp_sim::SchedulerSpec;

/// Parses a scheduler recipe from its command-line spelling — the same
/// syntax the batch `sweep` bin accepts:
///
/// | spec                          | meaning                                |
/// |-------------------------------|----------------------------------------|
/// | `FCFS` / `SJF` / `LJF` / …    | static policy (planning)               |
/// | `easy` / `easy:SJF`           | EASY backfilling (queue order)         |
/// | `dynp` / `dynp:advanced`      | dynP with the advanced decider         |
/// | `dynp:simple`                 | dynP with the simple decider           |
/// | `dynp:preferred:SJF`          | dynP, SJF-preferred decider            |
/// | `dynp:preferred:SJF:0.05`     | …with a 5 % threshold                  |
pub fn parse_scheduler(spec: &str) -> Result<SchedulerSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        [p] if Policy::parse(p).is_some() => Ok(SchedulerSpec::Static(Policy::parse(p).unwrap())),
        ["easy"] => Ok(SchedulerSpec::Easy(Policy::Fcfs)),
        ["easy", p] => Policy::parse(p)
            .map(SchedulerSpec::Easy)
            .ok_or_else(|| format!("unknown policy {p:?}")),
        ["dynp"] | ["dynp", "advanced"] => Ok(SchedulerSpec::dynp(DeciderKind::Advanced)),
        ["dynp", "simple"] => Ok(SchedulerSpec::dynp(DeciderKind::Simple)),
        ["dynp", "preferred", p] => Policy::parse(p)
            .map(|policy| {
                SchedulerSpec::dynp(DeciderKind::Preferred {
                    policy,
                    threshold: 0.0,
                })
            })
            .ok_or_else(|| format!("unknown policy {p:?}")),
        ["dynp", "preferred", p, th] => {
            let policy = Policy::parse(p).ok_or_else(|| format!("unknown policy {p:?}"))?;
            let threshold: f64 = th.parse().map_err(|_| format!("bad threshold {th:?}"))?;
            Ok(SchedulerSpec::dynp(DeciderKind::Preferred {
                policy,
                threshold,
            }))
        }
        _ => Err(format!("unrecognized scheduler spec {spec:?}")),
    }
}

/// Renders a spec back into the command-line spelling [`parse_scheduler`]
/// accepts — the round-trippable textual form the journal headers store,
/// so `--recover` can rebuild the scheduler from the journal alone.
/// (dynP objectives and decision triggers have no CLI spelling; the
/// service only builds paper-default dynP specs, which do.)
pub fn render_scheduler(spec: &SchedulerSpec) -> String {
    match spec {
        SchedulerSpec::Static(p) => p.name().to_string(),
        SchedulerSpec::Easy(Policy::Fcfs) => "easy".to_string(),
        SchedulerSpec::Easy(p) => format!("easy:{}", p.name()),
        SchedulerSpec::DynP { decider, .. } => match decider {
            DeciderKind::Advanced => "dynp".to_string(),
            DeciderKind::Simple => "dynp:simple".to_string(),
            DeciderKind::Preferred { policy, threshold } => {
                if *threshold == 0.0 {
                    format!("dynp:preferred:{}", policy.name())
                } else {
                    format!("dynp:preferred:{}:{}", policy.name(), threshold)
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_the_lineup() {
        assert_eq!(parse_scheduler("FCFS").unwrap().name(), "FCFS");
        assert_eq!(parse_scheduler("easy").unwrap().name(), "EASY");
        assert_eq!(parse_scheduler("easy:SJF").unwrap().name(), "EASY[SJF]");
        assert_eq!(parse_scheduler("dynp").unwrap().name(), "dynP[advanced]");
        assert_eq!(
            parse_scheduler("dynp:simple").unwrap().name(),
            "dynP[simple]"
        );
        assert_eq!(
            parse_scheduler("dynp:preferred:SJF").unwrap().name(),
            "dynP[SJF-preferred]"
        );
        assert!(parse_scheduler("round-robin").is_err());
        assert!(parse_scheduler("dynp:preferred:XYZ").is_err());
    }

    #[test]
    fn render_round_trips_through_parse() {
        for spelling in [
            "FCFS",
            "SJF",
            "LJF",
            "easy",
            "easy:SJF",
            "dynp",
            "dynp:simple",
            "dynp:preferred:SJF",
            "dynp:preferred:LJF:0.05",
        ] {
            let spec = parse_scheduler(spelling).unwrap();
            assert_eq!(
                parse_scheduler(&render_scheduler(&spec)).unwrap(),
                spec,
                "spelling {spelling:?} did not round-trip"
            );
        }
    }
}
