//! Open-loop load generator for the `dynp-serve` daemon.
//!
//! Modeled on berserker-style generators: arrivals are scheduled by the
//! clock, **never** by the service's responses, so a slow daemon cannot
//! throttle its own load (the coordinated-omission trap closed-loop
//! generators fall into). The workload is a Zipfian population of users
//! — a few heavy hitters, a long tail — each submitting jobs from a
//! per-user profile (width, run-time scale, overestimation factor);
//! per-user arrivals are Poisson because the global Poisson stream is
//! thinned by the Zipf pick (superposition), and users churn: after each
//! submission a user departs with probability `--departure` and is
//! replaced by a fresh profile.
//!
//! Workers fan the target rate out (`--rate / --workers` each), submit
//! without waiting for verdicts, and a per-worker collector measures
//! admission latency (submit → accept/reject roundtrip) into a
//! log-bucketed [`LatencyHistogram`]; the per-worker histograms are
//! merged for the report. Latency and rejections are additionally
//! broken down by user group — the Zipf head (user 0) versus the tail —
//! which is how the fairness claim of quota-based overload control is
//! measured: with `--quota` set, the head hits `user_quota`
//! backpressure first and tail p99 stays near the uncontended baseline.
//!
//! Two transports:
//!
//! * default — spawn the daemon **in process** (one per `--rate` step)
//!   and drive it over the command channel; the daemon is drained after
//!   each step so completion/loss counts are exact; `--journal DIR`
//!   journals the first rate's session durably;
//! * `--connect SOCK` — drive an external daemon over its Unix socket
//!   with NDJSON (one connection per worker); connections retry with
//!   bounded exponential backoff (a restarting daemon is reachable
//!   within a few hundred ms), replies carry a per-request timeout
//!   (`--timeout-ms`, reported separately from rejections), counts come
//!   from a final `status` query, and `--shutdown-after` asks the
//!   daemon to drain.
//!
//! The report — sustained throughput, p50/p99/p999 admission latency
//! (overall and per user group), rejection rates by reason, and
//! `speedup = achieved_eps / target_eps` (the open-loop health ratio
//! the perf gate tracks) — is printed to stdout and written to `--out`
//! (committed as `BENCH_service.json`).

use dynp_des::SimDuration;
use dynp_metrics::LatencyHistogram;
use dynp_obs::parse::Json;
use dynp_serve::{
    parse_scheduler, spawn, Command, FsyncPolicy, OverloadReason, QuotaConfig, Reply,
    ServiceConfig, SubmitError, SubmitSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: loadgen [--rate R1[,R2,…]] [--duration SECS] [--workers N]
               [--users N] [--zipf S] [--departure P] [--seed N]
               [--machine N] [--scheduler SPEC] [--max-queue N]
               [--speedup N] [--journal DIR] [--fsync POLICY]
               [--quota RATE:BURST] [--out PATH]
               [--connect SOCK] [--timeout-ms N] [--shutdown-after]

  --rate R1[,R2,…]    target submissions/sec, one report row per rate
                      (default 100,200)
  --duration SECS     open-loop send window per rate (default 3)
  --workers N         sender threads sharing the rate (default 4)
  --users N           Zipfian user population (default 100)
  --zipf S            Zipf exponent (default 1.1)
  --departure P       per-submission user churn probability (default 0.02)
  --seed N            workload seed (default 24301)
  --machine N         in-process daemon: machine size (default 128)
  --scheduler SPEC    in-process daemon: scheduler recipe (default dynp)
  --max-queue N       in-process daemon: queue bound (default 512)
  --speedup N         in-process daemon: sim ms per wall ms (default 2000)
  --journal DIR       in-process daemon: journal the first rate's session
  --fsync POLICY      in-process daemon: journal fsync policy
                      (always|rotate|never, default always)
  --quota RATE:BURST  in-process daemon: per-user token bucket
                      (millitokens/sim-second : millitokens capacity)
  --out PATH          write the JSON report here (e.g. BENCH_service.json)
  --connect SOCK      drive an external daemon over its Unix socket
                      (retries with exponential backoff while it starts)
  --timeout-ms N      with --connect: per-reply timeout in wall ms
                      (default 5000; timeouts are reported separately)
  --shutdown-after    with --connect: ask the daemon to drain at the end";

struct Args {
    rates: Vec<f64>,
    duration: f64,
    workers: usize,
    users: usize,
    zipf: f64,
    departure: f64,
    seed: u64,
    machine: u32,
    scheduler: String,
    max_queue: usize,
    speedup: u64,
    journal: Option<PathBuf>,
    fsync: FsyncPolicy,
    quota: QuotaConfig,
    out: Option<PathBuf>,
    connect: Option<PathBuf>,
    timeout_ms: u64,
    shutdown_after: bool,
}

fn bail(why: &str) -> ! {
    eprintln!("{why}\n{USAGE}");
    std::process::exit(2);
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a str {
    match it.next() {
        Some(v) => v,
        None => bail(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| bail(&format!("{flag} needs a number, got {raw:?}")))
}

fn parse_quota(raw: &str) -> QuotaConfig {
    let Some((rate, burst)) = raw.split_once(':') else {
        bail(&format!("--quota needs RATE:BURST, got {raw:?}"));
    };
    QuotaConfig {
        rate_mtok_per_sec: parse_num(rate, "--quota RATE"),
        burst_mtok: parse_num(burst, "--quota BURST"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        rates: vec![100.0, 200.0],
        duration: 3.0,
        workers: 4,
        users: 100,
        zipf: 1.1,
        departure: 0.02,
        seed: 24301,
        machine: 128,
        scheduler: "dynp".to_string(),
        max_queue: 512,
        speedup: 2000,
        journal: None,
        fsync: FsyncPolicy::Always,
        quota: QuotaConfig::disabled(),
        out: None,
        connect: None,
        timeout_ms: 5000,
        shutdown_after: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--rate" => {
                args.rates = next_value(&mut it, flag)
                    .split(',')
                    .map(|r| parse_num(r, flag))
                    .collect();
            }
            "--duration" => args.duration = parse_num(next_value(&mut it, flag), flag),
            "--workers" => args.workers = parse_num(next_value(&mut it, flag), flag),
            "--users" => args.users = parse_num(next_value(&mut it, flag), flag),
            "--zipf" => args.zipf = parse_num(next_value(&mut it, flag), flag),
            "--departure" => args.departure = parse_num(next_value(&mut it, flag), flag),
            "--seed" => args.seed = parse_num(next_value(&mut it, flag), flag),
            "--machine" => args.machine = parse_num(next_value(&mut it, flag), flag),
            "--scheduler" => args.scheduler = next_value(&mut it, flag).to_string(),
            "--max-queue" => args.max_queue = parse_num(next_value(&mut it, flag), flag),
            "--speedup" => args.speedup = parse_num(next_value(&mut it, flag), flag),
            "--journal" => args.journal = Some(PathBuf::from(next_value(&mut it, flag))),
            "--fsync" => {
                let raw = next_value(&mut it, flag);
                args.fsync = FsyncPolicy::parse(raw)
                    .unwrap_or_else(|| bail(&format!("unknown fsync policy {raw:?}")));
            }
            "--quota" => args.quota = parse_quota(next_value(&mut it, flag)),
            "--out" => args.out = Some(PathBuf::from(next_value(&mut it, flag))),
            "--connect" => args.connect = Some(PathBuf::from(next_value(&mut it, flag))),
            "--timeout-ms" => args.timeout_ms = parse_num(next_value(&mut it, flag), flag),
            "--shutdown-after" => args.shutdown_after = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if args.rates.is_empty() || args.rates.iter().any(|r| *r <= 0.0) {
        bail("--rate needs positive rates");
    }
    if args.workers == 0 || args.users == 0 {
        bail("--workers and --users must be at least 1");
    }
    args
}

/// Normalized Zipf CDF over ranks `1..=users` with exponent `s`.
fn zipf_cdf(users: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=users)
        .map(|k| {
            acc += 1.0 / (k as f64).powf(s);
            acc
        })
        .collect();
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

fn pick_user(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1) as u32
}

/// What a user's jobs look like. Deterministic in (seed, user,
/// generation): a departing user's replacement rolls a fresh profile by
/// bumping the generation.
#[derive(Clone, Copy)]
struct Profile {
    width: u32,
    mean_ms: f64,
    overestimate: f64,
}

fn profile(seed: u64, user: u32, generation: u64, machine: u32) -> Profile {
    let mix = seed ^ ((user as u64) << 24) ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(mix);
    Profile {
        // Powers of two from 1 to 16, capped at the machine.
        width: (1u32 << rng.gen_range_u64(0, 5)).min(machine),
        // Mean run time 30–300 simulated seconds.
        mean_ms: 30_000.0 + rng.gen::<f64>() * 270_000.0,
        // Users over-request by 1.2–3×, like real SWF traces.
        overestimate: 1.2 + rng.gen::<f64>() * 1.8,
    }
}

fn sample_spec(p: Profile, user: u32, rng: &mut StdRng) -> SubmitSpec {
    let exp = Exp::new(1.0 / p.mean_ms).expect("positive rate");
    let actual_ms = exp.sample(rng).clamp(1_000.0, 3_600_000.0) as u64;
    let estimate_ms = (actual_ms as f64 * p.overestimate) as u64;
    SubmitSpec {
        width: p.width,
        estimate: SimDuration::from_millis(estimate_ms),
        actual: SimDuration::from_millis(actual_ms),
        user,
    }
}

/// Everything a sender thread needs to generate its share of the load.
#[derive(Clone)]
struct GenParams {
    seed: u64,
    rate_per_worker: f64,
    duration: f64,
    zipf: Arc<Vec<f64>>,
    departure: f64,
    machine: u32,
}

/// One submission the sender hands its collector: the send instant, the
/// submitting user (for the head/tail breakdown), plus whatever the
/// collector needs to wait for the verdict.
struct InFlight<T> {
    sent_at: Instant,
    user: u32,
    wait: T,
}

/// Per-user-group tallies: the Zipf head (user 0) is tracked separately
/// from the tail, because fairness-aware overload control is *about*
/// the difference between the two.
#[derive(Default)]
struct GroupStats {
    accepted: u64,
    rejected: u64,
    hist: LatencyHistogram,
}

impl GroupStats {
    fn absorb(&mut self, other: &GroupStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.hist.merge(&other.hist);
    }
}

/// Collector-side tallies for one worker.
#[derive(Default)]
struct WorkerStats {
    accepted: u64,
    rejected_queue_full: u64,
    rejected_shutdown: u64,
    rejected_invalid: u64,
    rejected_user_quota: u64,
    /// Replies that missed the per-request timeout (socket mode only).
    timeouts: u64,
    hist: LatencyHistogram,
    head: GroupStats,
    tail: GroupStats,
}

impl WorkerStats {
    fn absorb(&mut self, other: &WorkerStats) {
        self.accepted += other.accepted;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_shutdown += other.rejected_shutdown;
        self.rejected_invalid += other.rejected_invalid;
        self.rejected_user_quota += other.rejected_user_quota;
        self.timeouts += other.timeouts;
        self.hist.merge(&other.hist);
        self.head.absorb(&other.head);
        self.tail.absorb(&other.tail);
    }

    fn group(&mut self, user: u32) -> &mut GroupStats {
        if user == 0 {
            &mut self.head
        } else {
            &mut self.tail
        }
    }

    /// Records one verdict: latency into the overall and group
    /// histograms, the outcome into the matching counters.
    fn tally(&mut self, user: u32, latency_us: u64, accepted: bool) {
        self.hist.record(latency_us);
        let group = self.group(user);
        group.hist.record(latency_us);
        if accepted {
            group.accepted += 1;
            self.accepted += 1;
        } else {
            group.rejected += 1;
        }
    }
}

/// The open-loop send schedule, shared by both transports: sleeps out
/// exponential gaps and calls `submit` once per arrival until the window
/// closes. Returns the number of submissions sent.
fn send_loop(params: &GenParams, worker: usize, mut submit: impl FnMut(SubmitSpec) -> bool) -> u64 {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(worker as u64 * 0x9E37));
    let inter = Exp::new(params.rate_per_worker).expect("positive rate");
    let mut generations: HashMap<u32, u64> = HashMap::new();
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(params.duration);
    let mut next_at = 0.0f64;
    let mut sent = 0u64;
    loop {
        next_at += inter.sample(&mut rng);
        let target = start + Duration::from_secs_f64(next_at);
        if target >= deadline {
            return sent;
        }
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let user = pick_user(&params.zipf, &mut rng);
        let generation = generations.entry(user).or_insert(0);
        let p = profile(params.seed, user, *generation, params.machine);
        if !submit(sample_spec(p, user, &mut rng)) {
            return sent;
        }
        sent += 1;
        if rng.gen_bool(params.departure) {
            *generation += 1;
        }
    }
}

/// One report row: the outcome of one rate step.
struct Row {
    target_eps: f64,
    achieved_eps: f64,
    sent: u64,
    stats: WorkerStats,
    completed: u64,
    lost: u64,
}

impl Row {
    fn render(&self) -> String {
        let s = &self.stats;
        let h = &s.hist;
        format!(
            "{{\"target_eps\": {}, \"achieved_eps\": {}, \"sent\": {}, \"accepted\": {}, \
             \"rejected_queue_full\": {}, \"rejected_shutdown\": {}, \"rejected_invalid\": {}, \
             \"rejected_user_quota\": {}, \"timeouts\": {}, \
             \"completed\": {}, \"lost\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"max_us\": {}, \"mean_us\": {}, \
             \"head_accepted\": {}, \"head_rejected\": {}, \"head_p99_us\": {}, \
             \"tail_accepted\": {}, \"tail_rejected\": {}, \"tail_p99_us\": {}, \
             \"speedup\": {}}}",
            self.target_eps,
            self.achieved_eps,
            self.sent,
            s.accepted,
            s.rejected_queue_full,
            s.rejected_shutdown,
            s.rejected_invalid,
            s.rejected_user_quota,
            s.timeouts,
            self.completed,
            self.lost,
            h.p50(),
            h.p99(),
            h.p999(),
            h.max(),
            h.mean(),
            s.head.accepted,
            s.head.rejected,
            s.head.hist.p99(),
            s.tail.accepted,
            s.tail.rejected,
            s.tail.hist.p99(),
            self.achieved_eps / self.target_eps,
        )
    }
}

/// Runs one rate step against an in-process daemon, draining it at the
/// end so completion and loss counts are exact.
fn run_inproc(args: &Args, rate: f64, journal: Option<PathBuf>) -> Row {
    let spec = parse_scheduler(&args.scheduler).unwrap_or_else(|why| bail(&why));
    let mut config = ServiceConfig::new(args.machine, spec);
    config.max_queue = args.max_queue;
    config.speedup = args.speedup;
    config.journal = journal;
    config.fsync = args.fsync;
    config.quota = args.quota;
    let (handle, join) = spawn(config).unwrap_or_else(|e| {
        eprintln!("cannot start daemon: {e}");
        std::process::exit(2);
    });

    let params = GenParams {
        seed: args.seed,
        rate_per_worker: rate / args.workers as f64,
        duration: args.duration,
        zipf: Arc::new(zipf_cdf(args.users, args.zipf)),
        departure: args.departure,
        machine: args.machine,
    };
    let start = Instant::now();
    let mut senders = Vec::new();
    let mut collectors = Vec::new();
    for worker in 0..args.workers {
        let (pending_tx, pending_rx) = mpsc::channel::<InFlight<mpsc::Receiver<Reply>>>();
        collectors.push(std::thread::spawn(move || {
            let mut stats = WorkerStats::default();
            while let Ok(inflight) = pending_rx.recv() {
                let reply = inflight.wait.recv();
                let latency_us = inflight.sent_at.elapsed().as_micros() as u64;
                let accepted = matches!(reply, Ok(Reply::Accepted(_)));
                stats.tally(inflight.user, latency_us, accepted);
                match reply {
                    Ok(Reply::Accepted(_)) => {}
                    Ok(Reply::Rejected(SubmitError::Overload(OverloadReason::QueueFull))) => {
                        stats.rejected_queue_full += 1
                    }
                    Ok(Reply::Rejected(SubmitError::Overload(OverloadReason::UserQuota))) => {
                        stats.rejected_user_quota += 1
                    }
                    Ok(Reply::Rejected(SubmitError::Invalid(_))) => stats.rejected_invalid += 1,
                    // A dropped reply channel means the daemon exited
                    // under us — count it with the shutdown refusals.
                    Ok(_) | Err(_) => stats.rejected_shutdown += 1,
                }
            }
            stats
        }));
        let params = params.clone();
        let tx = handle.sender();
        senders.push(std::thread::spawn(move || {
            send_loop(&params, worker, |spec| {
                let (reply_tx, reply_rx) = mpsc::channel();
                let sent_at = Instant::now();
                let user = spec.user;
                if tx.send(Command::Submit(spec, reply_tx)).is_err() {
                    return false;
                }
                pending_tx
                    .send(InFlight {
                        sent_at,
                        user,
                        wait: reply_rx,
                    })
                    .is_ok()
            })
        }));
    }
    let sent: u64 = senders.into_iter().map(|h| h.join().unwrap()).sum();
    let send_elapsed = start.elapsed().as_secs_f64();
    let mut stats = WorkerStats::default();
    for c in collectors {
        stats.absorb(&c.join().unwrap());
    }
    handle.shutdown();
    drop(handle);
    let report = join.join().expect("daemon thread panicked");
    Row {
        target_eps: rate,
        achieved_eps: sent as f64 / send_elapsed,
        sent,
        stats,
        completed: report.run.completed.len() as u64,
        lost: report.run.faults.lost,
    }
}

fn render_submit(spec: &SubmitSpec) -> String {
    format!(
        "{{\"cmd\":\"submit\",\"width\":{},\"estimate_ms\":{},\"actual_ms\":{},\"user\":{}}}",
        spec.width,
        spec.estimate.as_millis(),
        spec.actual.as_millis(),
        spec.user
    )
}

fn classify_reply(line: &str, user: u32, latency_us: u64, stats: &mut WorkerStats) {
    let Ok(json) = Json::parse(line) else {
        stats.tally(user, latency_us, false);
        stats.rejected_invalid += 1;
        return;
    };
    if json.get("job").is_some() {
        stats.tally(user, latency_us, true);
        return;
    }
    stats.tally(user, latency_us, false);
    match json.get("reason").and_then(Json::as_str) {
        Some("queue_full") => stats.rejected_queue_full += 1,
        Some("user_quota") => stats.rejected_user_quota += 1,
        Some("shutting_down") => stats.rejected_shutdown += 1,
        _ => stats.rejected_invalid += 1,
    }
}

/// Connects to the daemon's socket, retrying with bounded exponential
/// backoff (50 ms doubling to 1.6 s, 8 attempts ≈ 6 s total) — a daemon
/// that is still starting, or restarting with `--recover`, becomes
/// reachable without the load generator giving up.
fn connect_with_retry(path: &std::path::Path) -> std::io::Result<UnixStream> {
    let mut backoff = Duration::from_millis(50);
    let mut last_err = None;
    for attempt in 0..8 {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if attempt > 0 {
                    eprintln!(
                        "loadgen: connect to {} failed ({e}), retrying in {}ms",
                        path.display(),
                        backoff.as_millis()
                    );
                }
                last_err = Some(e);
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// One request/one reply over a fresh connection (status, shutdown).
fn socket_roundtrip(path: &std::path::Path, request: &str) -> Option<String> {
    let mut stream = connect_with_retry(path).ok()?;
    writeln!(stream, "{request}").ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    Some(line)
}

/// Runs one rate step against an external daemon over its Unix socket,
/// one connection per worker.
fn run_socket(args: &Args, rate: f64, path: &std::path::Path) -> Row {
    let params = GenParams {
        seed: args.seed,
        rate_per_worker: rate / args.workers as f64,
        duration: args.duration,
        zipf: Arc::new(zipf_cdf(args.users, args.zipf)),
        departure: args.departure,
        machine: args.machine,
    };
    let timeout = Duration::from_millis(args.timeout_ms.max(1));
    let start = Instant::now();
    let mut senders = Vec::new();
    let mut readers = Vec::new();
    for worker in 0..args.workers {
        let stream = connect_with_retry(path).unwrap_or_else(|e| {
            eprintln!("cannot connect to {}: {e}", path.display());
            std::process::exit(2);
        });
        let read_half = stream.try_clone().expect("clone socket");
        read_half
            .set_read_timeout(Some(timeout))
            .expect("set_read_timeout");
        let (pending_tx, pending_rx) = mpsc::channel::<InFlight<()>>();
        readers.push(std::thread::spawn(move || {
            let mut stats = WorkerStats::default();
            let mut reader = BufReader::new(read_half);
            // One pending entry per reply, in order. A read that trips
            // the timeout abandons its entry (counted separately); the
            // late reply, if it ever lands, then matches the *next*
            // entry — counts stay right, one latency sample is skewed.
            // The line buffer survives timeouts because read_line
            // appends: a partially received reply is completed by a
            // later read, never dropped mid-frame.
            let mut line = String::new();
            while let Ok(inflight) = pending_rx.recv() {
                match reader.read_line(&mut line) {
                    Ok(0) => break, // daemon hung up
                    Ok(_) => {
                        let latency_us = inflight.sent_at.elapsed().as_micros() as u64;
                        classify_reply(line.trim(), inflight.user, latency_us, &mut stats);
                        line.clear();
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        stats.timeouts += 1;
                    }
                    Err(_) => break,
                }
            }
            stats
        }));
        let params = params.clone();
        let mut stream = stream;
        senders.push(std::thread::spawn(move || {
            let sent = send_loop(&params, worker, |spec| {
                let sent_at = Instant::now();
                let inflight = InFlight {
                    sent_at,
                    user: spec.user,
                    wait: (),
                };
                if pending_tx.send(inflight).is_err() {
                    return false;
                }
                writeln!(stream, "{}", render_submit(&spec)).is_ok()
            });
            // Half-close so the daemon answers everything then hangs up,
            // which ends the reader at exactly the last reply.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            sent
        }));
    }
    let sent: u64 = senders.into_iter().map(|h| h.join().unwrap()).sum();
    let send_elapsed = start.elapsed().as_secs_f64();
    let mut stats = WorkerStats::default();
    for r in readers {
        stats.absorb(&r.join().unwrap());
    }
    // Completion counts from the daemon itself (jobs may still be
    // running — the external daemon's lifetime is not ours to drain).
    let (mut completed, mut lost) = (0, 0);
    if let Some(line) = socket_roundtrip(path, "{\"cmd\":\"status\"}") {
        if let Ok(json) = Json::parse(line.trim()) {
            completed = json.get("completed").and_then(Json::as_u64).unwrap_or(0);
            lost = json.get("lost").and_then(Json::as_u64).unwrap_or(0);
        }
    }
    if args.shutdown_after {
        let _ = socket_roundtrip(path, "{\"cmd\":\"shutdown\"}");
    }
    Row {
        target_eps: rate,
        achieved_eps: sent as f64 / send_elapsed,
        sent,
        stats,
        completed,
        lost,
    }
}

fn render_report(args: &Args, scheduler_name: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"report\": \"service\",\n");
    out.push_str(&format!("  \"scheduler\": \"{scheduler_name}\",\n"));
    out.push_str(&format!("  \"machine\": {},\n", args.machine));
    out.push_str(&format!("  \"workers\": {},\n", args.workers));
    out.push_str(&format!("  \"users\": {},\n", args.users));
    out.push_str(&format!("  \"zipf_s\": {},\n", args.zipf));
    out.push_str(&format!("  \"duration_secs\": {},\n", args.duration));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!(
        "  \"quota\": {{\"rate_mtok_per_sec\": {}, \"burst_mtok\": {}}},\n",
        args.quota.rate_mtok_per_sec, args.quota.burst_mtok
    ));
    out.push_str(
        "  \"unit\": \"admission latency in wall microseconds; \
         speedup = achieved_eps / target_eps (open-loop health)\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", row.render()));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let scheduler_name = parse_scheduler(&args.scheduler)
        .unwrap_or_else(|why| bail(&why))
        .name();
    let mut rows = Vec::new();
    match &args.connect {
        Some(path) => {
            for &rate in &args.rates {
                rows.push(run_socket(&args, rate, path));
            }
        }
        None => {
            for (i, &rate) in args.rates.iter().enumerate() {
                // Only the first rate journals: JournalWriter::create
                // refuses a directory that already holds a session.
                let journal = if i == 0 { args.journal.clone() } else { None };
                rows.push(run_inproc(&args, rate, journal));
            }
        }
    }
    for row in &rows {
        let s = &row.stats;
        eprintln!(
            "rate {:.0}/s: sent {} ({:.1}/s achieved), accepted {}, overloaded {}, \
             quota {}, invalid {}, timeouts {}, completed {}, lost {} — admission \
             p50 {}µs p99 {}µs p999 {}µs (head p99 {}µs, tail p99 {}µs)",
            row.target_eps,
            row.sent,
            row.achieved_eps,
            s.accepted,
            s.rejected_queue_full + s.rejected_shutdown,
            s.rejected_user_quota,
            s.rejected_invalid,
            s.timeouts,
            row.completed,
            row.lost,
            s.hist.p50(),
            s.hist.p99(),
            s.hist.p999(),
            s.head.hist.p99(),
            s.tail.hist.p99(),
        );
    }
    let report = render_report(&args, &scheduler_name, &rows);
    print!("{report}");
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &report) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", out.display());
    }
    let healthy = rows
        .iter()
        .all(|r| r.stats.accepted > 0 && r.lost == 0 && r.sent > 0);
    if !healthy {
        eprintln!("loadgen: unhealthy run (no accepted submissions or lost jobs)");
        std::process::exit(1);
    }
}
