//! The `dynp-serve` daemon: the planning core as a long-running,
//! crash-safe service.
//!
//! ```text
//! cargo run --release -p dynp-serve --bin daemon -- \
//!     --machine 128 --scheduler dynp --socket /tmp/dynp.sock \
//!     --journal /var/lib/dynp/journal
//! ```
//!
//! Transports (newline-delimited JSON, see `dynp_serve::proto`):
//!
//! * `--socket PATH` — listen on a Unix domain socket; any number of
//!   concurrent connections, one reply per request line in order;
//! * default — read requests from stdin, write replies to stdout
//!   (EOF drains and exits, so `loadgen | daemon` style pipes work).
//!
//! With `--journal DIR` every accepted command is durably journaled
//! before the client sees the acknowledgement; after a crash,
//! `--journal DIR --recover` rebuilds the exact pre-crash state from
//! the newest checkpoint plus the journal suffix and resumes serving
//! (the machine size, speedup, and scheduler come from the journal
//! header — flags may be omitted). `--recover --drain` instead drains
//! the recovered jobs and exits with the summary, which is how the CI
//! crash-recovery job verifies no acknowledged work was lost.
//!
//! Shutdown is always graceful: a `{"cmd":"shutdown"}` request, SIGINT,
//! SIGTERM, or stdin EOF stops admissions, drains the in-flight jobs in
//! virtual time, fsyncs the journal, prints a summary JSON line to
//! stdout and exits 0.

use dynp_serve::{
    parse_request, parse_scheduler, read_journal_header, recover, render_reply, spawn, Command,
    FsyncPolicy, JournalError, OverloadReason, QuotaConfig, Reply, Request, ServiceConfig,
    ServiceHandle, ServiceReport, SubmitError,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const USAGE: &str = "\
usage: daemon [--machine N] [--scheduler SPEC] [--max-queue N]
              [--speedup N] [--journal DIR] [--recover] [--drain]
              [--fsync POLICY] [--checkpoint-every N] [--compact]
              [--quota RATE:BURST] [--socket PATH]

  --machine N          machine size in processors (default 128)
  --scheduler SPEC     FCFS|SJF|LJF|easy[:P]|dynp[:simple|:advanced|:preferred:P[:T]]
                       (default dynp)
  --max-queue N        bounded-queue backpressure limit (default 1024)
  --speedup N          simulated ms per wall ms (default 1 = real time)
  --journal DIR        durable write-ahead log + checkpoints in DIR
  --recover            rebuild state from the journal in DIR and resume
                       (machine/scheduler/speedup default to the journal
                       header's values)
  --drain              begin shutdown immediately after start: drain the
                       (recovered) jobs, print the summary, exit
  --fsync POLICY       when journal writes reach disk: always (default),
                       rotate, never
  --checkpoint-every N checkpoint every N journaled records
                       (default 0 = only at segment rotations)
  --compact            delete rotated segments once a checkpoint covers them
  --quota RATE:BURST   per-user token bucket: RATE millitokens/sim-second,
                       BURST millitokens capacity (1000 mtok = 1 submission)
  --socket PATH        serve NDJSON on a Unix socket (default: stdin/stdout)";

struct Args {
    config: ServiceConfig,
    socket: Option<PathBuf>,
    recover: bool,
    drain: bool,
}

fn bail(why: &str) -> ! {
    eprintln!("{why}\n{USAGE}");
    std::process::exit(2);
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a str {
    match it.next() {
        Some(v) => v,
        None => bail(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| bail(&format!("{flag} needs a number, got {raw:?}")))
}

fn parse_quota(raw: &str) -> QuotaConfig {
    let Some((rate, burst)) = raw.split_once(':') else {
        bail(&format!("--quota needs RATE:BURST, got {raw:?}"));
    };
    QuotaConfig {
        rate_mtok_per_sec: parse_num(rate, "--quota RATE"),
        burst_mtok: parse_num(burst, "--quota BURST"),
    }
}

fn parse_args() -> Args {
    let mut machine: Option<u32> = None;
    let mut scheduler: Option<String> = None;
    let mut max_queue = 1024usize;
    let mut speedup: Option<u64> = None;
    let mut journal: Option<PathBuf> = None;
    let mut recover = false;
    let mut drain = false;
    let mut fsync = FsyncPolicy::Always;
    let mut checkpoint_every = 0u64;
    let mut compact = false;
    let mut quota = QuotaConfig::disabled();
    let mut socket: Option<PathBuf> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine = Some(parse_num(next_value(&mut it, flag), flag)),
            "--scheduler" => scheduler = Some(next_value(&mut it, flag).to_string()),
            "--max-queue" => max_queue = parse_num(next_value(&mut it, flag), flag),
            "--speedup" => speedup = Some(parse_num(next_value(&mut it, flag), flag)),
            "--journal" => journal = Some(PathBuf::from(next_value(&mut it, flag))),
            "--recover" => recover = true,
            "--drain" => drain = true,
            "--fsync" => {
                let raw = next_value(&mut it, flag);
                fsync = FsyncPolicy::parse(raw)
                    .unwrap_or_else(|| bail(&format!("unknown fsync policy {raw:?}")));
            }
            "--checkpoint-every" => checkpoint_every = parse_num(next_value(&mut it, flag), flag),
            "--compact" => compact = true,
            "--quota" => quota = parse_quota(next_value(&mut it, flag)),
            "--socket" => socket = Some(PathBuf::from(next_value(&mut it, flag))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }

    // Recovery reads the service shape from the journal header, so the
    // restart command line needs nothing but the directory; explicit
    // flags still win (and recover() rejects them if they disagree).
    // Only the first segment's header is read here — recover() does the
    // full journal read exactly once.
    if recover {
        let Some(dir) = &journal else {
            bail("--recover needs --journal DIR");
        };
        match read_journal_header(dir) {
            Ok(header) => {
                machine = machine.or(Some(header.machine_size));
                speedup = speedup.or(Some(header.speedup));
                scheduler = scheduler.or(Some(header.scheduler));
            }
            // Nothing was ever journaled; recover() removes the torn
            // file and starts fresh on the flag defaults.
            Err(JournalError::TornGenesis { .. }) => {}
            Err(e) => {
                eprintln!("cannot recover from {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }

    let spec =
        parse_scheduler(scheduler.as_deref().unwrap_or("dynp")).unwrap_or_else(|why| bail(&why));
    let mut config = ServiceConfig::new(machine.unwrap_or(128), spec);
    config.max_queue = max_queue;
    config.speedup = speedup.unwrap_or(1);
    config.journal = journal;
    config.fsync = fsync;
    config.checkpoint_every = checkpoint_every;
    config.compact = compact;
    config.quota = quota;
    Args {
        config,
        socket,
        recover,
        drain,
    }
}

/// Set by the SIGINT/SIGTERM handlers; polled by the watcher thread (a
/// signal handler may only do async-signal-safe work, and an atomic
/// store is).
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
}

extern "C" {
    // POSIX signal(2); the return value (previous handler) is unused.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    const SIGINT_NO: i32 = 2;
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGINT_NO, on_shutdown_signal);
        signal(SIGTERM_NO, on_shutdown_signal);
    }
}

/// Sends one command and waits for its reply; a closed daemon channel
/// becomes the typed shutting-down overload.
fn roundtrip(
    tx: &mpsc::Sender<Command>,
    make: impl FnOnce(mpsc::Sender<Reply>) -> Command,
) -> String {
    let refused = || {
        render_reply(&Reply::Rejected(SubmitError::Overload(
            OverloadReason::ShuttingDown,
        )))
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(make(reply_tx)).is_err() {
        return refused();
    }
    match reply_rx.recv() {
        Ok(reply) => render_reply(&reply),
        Err(_) => refused(),
    }
}

/// Handles one request line and returns the reply line.
fn handle_line(tx: &mpsc::Sender<Command>, line: &str, done: &AtomicBool) -> String {
    match parse_request(line) {
        Err(why) => render_reply(&Reply::Rejected(SubmitError::Invalid(why))),
        Ok(Request::Submit(spec)) => roundtrip(tx, |r| Command::Submit(spec, r)),
        Ok(Request::Cancel(job)) => roundtrip(tx, |r| Command::Cancel(job, r)),
        Ok(Request::Status) => roundtrip(tx, Command::Status),
        Ok(Request::Shutdown) => {
            done.store(true, Ordering::SeqCst);
            roundtrip(tx, |r| Command::Shutdown(Some(r)))
        }
    }
}

/// One socket connection: request lines in, reply lines out, in order.
fn serve_connection(stream: UnixStream, handle: ServiceHandle, done: Arc<AtomicBool>) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let tx = handle.sender();
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&tx, &line, &done);
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
    }
}

fn serve_socket(path: PathBuf, handle: ServiceHandle, done: Arc<AtomicBool>) {
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", path.display());
        std::process::exit(2);
    });
    listener.set_nonblocking(true).expect("set_nonblocking");
    eprintln!("dynp-serve: listening on {}", path.display());
    std::thread::spawn(move || {
        while !done.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let handle = handle.clone();
                    let done = done.clone();
                    std::thread::spawn(move || serve_connection(stream, handle, done));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
    });
}

fn serve_stdin(handle: ServiceHandle, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let tx = handle.sender();
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = handle_line(&tx, &line, &done);
            let mut out = std::io::stdout().lock();
            if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
                break;
            }
            if done.load(Ordering::SeqCst) {
                return;
            }
        }
        // EOF: the client hung up; drain and exit like a shutdown.
        handle.shutdown();
        done.store(true, Ordering::SeqCst);
    });
}

/// The end-of-session summary line. The `replay` bin prints the same
/// shape from the journal alone, so the two can be diffed field by
/// field (the CI crash-recovery job does exactly that).
fn render_summary(report: &ServiceReport) -> String {
    let fingerprint = match report.fingerprint {
        Some(fp) => format!("\"{fp:032x}\""),
        None => "null".to_string(),
    };
    format!(
        "{{\"accepted\":{},\"completed\":{},\"lost\":{},\"rejected_queue_full\":{},\
         \"rejected_shutdown\":{},\"rejected_invalid\":{},\"rejected_user_quota\":{},\
         \"cancelled\":{},\"events\":{},\"sldwa\":{:.6},\"fingerprint\":{}}}",
        report.accepted,
        report.run.completed.len(),
        report.run.faults.lost,
        report.rejected_queue_full,
        report.rejected_shutdown,
        report.rejected_invalid,
        report.rejected_user_quota,
        report.cancelled,
        report.run.result.events,
        report.run.result.metrics.sldwa,
        fingerprint,
    )
}

fn main() {
    let args = parse_args();
    let socket = args.socket.clone();
    let (handle, join) = if args.recover {
        recover(args.config).unwrap_or_else(|e| {
            eprintln!("cannot recover daemon: {e}");
            std::process::exit(2);
        })
    } else {
        spawn(args.config).unwrap_or_else(|e| {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(2);
        })
    };
    install_signal_handlers();
    let done = Arc::new(AtomicBool::new(false));

    if args.drain {
        // Drain mode: no transport — finish the (recovered) session and
        // report. Used by the CI crash-recovery job and by operators
        // closing out a journal.
        handle.shutdown();
        drop(handle);
        let report = join.join().expect("daemon thread panicked");
        println!("{}", render_summary(&report));
        std::process::exit(0);
    }

    // Signal watcher: turns SIGINT/SIGTERM into a graceful drain.
    {
        let handle = handle.clone();
        let done = done.clone();
        std::thread::spawn(move || loop {
            if SHUTDOWN_SIGNAL.load(Ordering::SeqCst) {
                handle.shutdown();
                done.store(true, Ordering::SeqCst);
                return;
            }
            if done.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }

    match socket.clone() {
        Some(path) => serve_socket(path, handle.clone(), done.clone()),
        None => serve_stdin(handle.clone(), done.clone()),
    }
    drop(handle);

    // Block until the daemon drains (shutdown command, signal, or EOF).
    let report = join.join().expect("daemon thread panicked");
    done.store(true, Ordering::SeqCst);
    if let Some(path) = socket {
        let _ = std::fs::remove_file(path);
    }
    println!("{}", render_summary(&report));
    // Transport threads may still be blocked in reads; exiting the
    // process is the clean way out once the drain has finished.
    std::process::exit(0);
}
