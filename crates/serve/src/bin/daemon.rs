//! The `dynp-serve` daemon: the planning core as a long-running service.
//!
//! ```text
//! cargo run --release -p dynp-serve --bin daemon -- \
//!     --machine 128 --scheduler dynp --socket /tmp/dynp.sock \
//!     --session-log /tmp/session.swf
//! ```
//!
//! Transports (newline-delimited JSON, see `dynp_serve::proto`):
//!
//! * `--socket PATH` — listen on a Unix domain socket; any number of
//!   concurrent connections, one reply per request line in order;
//! * default — read requests from stdin, write replies to stdout
//!   (EOF drains and exits, so `loadgen | daemon` style pipes work).
//!
//! Shutdown is always graceful: a `{"cmd":"shutdown"}` request, SIGINT,
//! or stdin EOF stops admissions, drains the in-flight jobs in virtual
//! time, flushes the session log, prints a summary JSON line to stdout
//! and exits 0.

use dynp_serve::{
    parse_request, parse_scheduler, render_reply, spawn, Command, OverloadReason, Reply, Request,
    ServiceConfig, ServiceHandle, SubmitError,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const USAGE: &str = "\
usage: daemon [--machine N] [--scheduler SPEC] [--max-queue N]
              [--speedup N] [--session-log PATH] [--socket PATH]

  --machine N        machine size in processors (default 128)
  --scheduler SPEC   FCFS|SJF|LJF|easy[:P]|dynp[:simple|:advanced|:preferred:P[:T]]
                     (default dynp)
  --max-queue N      bounded-queue backpressure limit (default 1024)
  --speedup N        simulated ms per wall ms (default 1 = real time)
  --session-log PATH record accepted submissions as a replayable SWF log
  --socket PATH      serve NDJSON on a Unix socket (default: stdin/stdout)";

struct Args {
    config: ServiceConfig,
    socket: Option<PathBuf>,
}

fn bail(why: &str) -> ! {
    eprintln!("{why}\n{USAGE}");
    std::process::exit(2);
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a str {
    match it.next() {
        Some(v) => v,
        None => bail(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| bail(&format!("{flag} needs a number, got {raw:?}")))
}

fn parse_args() -> Args {
    let mut machine = 128u32;
    let mut scheduler = "dynp".to_string();
    let mut max_queue = 1024usize;
    let mut speedup = 1u64;
    let mut session_log: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine = parse_num(next_value(&mut it, flag), flag),
            "--scheduler" => scheduler = next_value(&mut it, flag).to_string(),
            "--max-queue" => max_queue = parse_num(next_value(&mut it, flag), flag),
            "--speedup" => speedup = parse_num(next_value(&mut it, flag), flag),
            "--session-log" => session_log = Some(PathBuf::from(next_value(&mut it, flag))),
            "--socket" => socket = Some(PathBuf::from(next_value(&mut it, flag))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let spec = parse_scheduler(&scheduler).unwrap_or_else(|why| bail(&why));
    let mut config = ServiceConfig::new(machine, spec);
    config.max_queue = max_queue;
    config.speedup = speedup;
    config.session_log = session_log;
    Args { config, socket }
}

/// Set by the SIGINT handler; polled by the watcher thread (a signal
/// handler may only do async-signal-safe work, and an atomic store is).
static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

extern "C" {
    // POSIX signal(2); the return value (previous handler) is unused.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_sigint_handler() {
    const SIGINT_NO: i32 = 2;
    unsafe {
        signal(SIGINT_NO, on_sigint);
    }
}

/// Sends one command and waits for its reply; a closed daemon channel
/// becomes the typed shutting-down overload.
fn roundtrip(
    tx: &mpsc::Sender<Command>,
    make: impl FnOnce(mpsc::Sender<Reply>) -> Command,
) -> String {
    let refused = || {
        render_reply(&Reply::Rejected(SubmitError::Overload(
            OverloadReason::ShuttingDown,
        )))
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(make(reply_tx)).is_err() {
        return refused();
    }
    match reply_rx.recv() {
        Ok(reply) => render_reply(&reply),
        Err(_) => refused(),
    }
}

/// Handles one request line and returns the reply line.
fn handle_line(tx: &mpsc::Sender<Command>, line: &str, done: &AtomicBool) -> String {
    match parse_request(line) {
        Err(why) => render_reply(&Reply::Rejected(SubmitError::Invalid(why))),
        Ok(Request::Submit(spec)) => roundtrip(tx, |r| Command::Submit(spec, r)),
        Ok(Request::Cancel(job)) => roundtrip(tx, |r| Command::Cancel(job, r)),
        Ok(Request::Status) => roundtrip(tx, Command::Status),
        Ok(Request::Shutdown) => {
            done.store(true, Ordering::SeqCst);
            roundtrip(tx, |r| Command::Shutdown(Some(r)))
        }
    }
}

/// One socket connection: request lines in, reply lines out, in order.
fn serve_connection(stream: UnixStream, handle: ServiceHandle, done: Arc<AtomicBool>) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let tx = handle.sender();
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&tx, &line, &done);
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
    }
}

fn serve_socket(path: PathBuf, handle: ServiceHandle, done: Arc<AtomicBool>) {
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", path.display());
        std::process::exit(2);
    });
    listener.set_nonblocking(true).expect("set_nonblocking");
    eprintln!("dynp-serve: listening on {}", path.display());
    std::thread::spawn(move || {
        while !done.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let handle = handle.clone();
                    let done = done.clone();
                    std::thread::spawn(move || serve_connection(stream, handle, done));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
    });
}

fn serve_stdin(handle: ServiceHandle, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let tx = handle.sender();
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = handle_line(&tx, &line, &done);
            let mut out = std::io::stdout().lock();
            if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
                break;
            }
            if done.load(Ordering::SeqCst) {
                return;
            }
        }
        // EOF: the client hung up; drain and exit like a shutdown.
        handle.shutdown();
        done.store(true, Ordering::SeqCst);
    });
}

fn main() {
    let args = parse_args();
    let socket = args.socket.clone();
    let (handle, join) = spawn(args.config).unwrap_or_else(|e| {
        eprintln!("cannot start daemon: {e}");
        std::process::exit(2);
    });
    install_sigint_handler();
    let done = Arc::new(AtomicBool::new(false));

    // SIGINT watcher: turns the flag into a graceful drain.
    {
        let handle = handle.clone();
        let done = done.clone();
        std::thread::spawn(move || loop {
            if SIGINT.load(Ordering::SeqCst) {
                handle.shutdown();
                done.store(true, Ordering::SeqCst);
                return;
            }
            if done.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }

    match socket.clone() {
        Some(path) => serve_socket(path, handle.clone(), done.clone()),
        None => serve_stdin(handle.clone(), done.clone()),
    }
    drop(handle);

    // Block until the daemon drains (shutdown command, SIGINT, or EOF).
    let report = join.join().expect("daemon thread panicked");
    done.store(true, Ordering::SeqCst);
    if let Some(path) = socket {
        let _ = std::fs::remove_file(path);
    }
    println!(
        "{{\"accepted\":{},\"completed\":{},\"lost\":{},\"rejected_queue_full\":{},\
         \"rejected_shutdown\":{},\"rejected_invalid\":{},\"cancelled\":{},\"events\":{},\
         \"sldwa\":{:.6}}}",
        report.accepted,
        report.run.completed.len(),
        report.run.faults.lost,
        report.rejected_queue_full,
        report.rejected_shutdown,
        report.rejected_invalid,
        report.cancelled,
        report.run.result.events,
        report.run.result.metrics.sldwa,
    );
    // Transport threads may still be blocked in reads; exiting the
    // process is the clean way out once the drain has finished.
    std::process::exit(0);
}
