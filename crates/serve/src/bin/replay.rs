//! The `replay` bin: re-derives a daemon summary from a journal alone.
//!
//! ```text
//! cargo run --release -p dynp-serve --bin replay -- --journal DIR
//! ```
//!
//! Reads the journal directory a daemon wrote, rebuilds the scheduler
//! from the header's recipe (override with `--scheduler` if needed),
//! replays every journaled command through the batch DES driver, and
//! prints the same summary JSON line the daemon prints at drain. A
//! daemon session and its journal replay are bit-identical by
//! construction — same accepted/completed counts, same SLDwA, same
//! fingerprint — which is exactly what the CI crash-recovery job
//! asserts by diffing the two lines.

use dynp_serve::{parse_scheduler, read_journal, replay_records};
use std::path::PathBuf;

const USAGE: &str = "\
usage: replay --journal DIR [--scheduler SPEC]

  --journal DIR    journal directory written by the daemon
  --scheduler SPEC override the scheduler recipe recorded in the journal
                   header (FCFS|SJF|LJF|easy[:P]|dynp[...])";

fn bail(why: &str) -> ! {
    eprintln!("{why}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut journal: Option<PathBuf> = None;
    let mut scheduler: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--journal" => match it.next() {
                Some(v) => journal = Some(PathBuf::from(v)),
                None => bail("--journal needs a value"),
            },
            "--scheduler" => match it.next() {
                Some(v) => scheduler = Some(v.clone()),
                None => bail("--scheduler needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let Some(dir) = journal else {
        bail("--journal DIR is required");
    };
    let journal = read_journal(&dir).unwrap_or_else(|e| {
        eprintln!("cannot read journal {}: {e}", dir.display());
        std::process::exit(1);
    });
    if journal.torn {
        eprintln!(
            "replay: note: journal has a torn tail (crash mid-append); \
             replaying the {} complete records",
            journal.records.len()
        );
    }
    let spec = parse_scheduler(scheduler.as_deref().unwrap_or(&journal.scheduler))
        .unwrap_or_else(|why| bail(&why));
    let replay =
        replay_records(journal.machine_size, &journal.records, &spec).unwrap_or_else(|e| {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        });
    let fingerprint = match replay.fingerprint {
        Some(fp) => format!("\"{fp:032x}\""),
        None => "null".to_string(),
    };
    // The same shape the daemon prints at drain; rejection counters are
    // zero because rejected submissions are (deliberately) not journaled.
    println!(
        "{{\"accepted\":{},\"completed\":{},\"lost\":{},\"rejected_queue_full\":0,\
         \"rejected_shutdown\":0,\"rejected_invalid\":0,\"rejected_user_quota\":0,\
         \"cancelled\":{},\"events\":{},\"sldwa\":{:.6},\"fingerprint\":{}}}",
        replay.accepted,
        replay.run.completed.len(),
        replay.run.faults.lost,
        replay.cancelled,
        replay.run.result.events,
        replay.run.result.metrics.sldwa,
        fingerprint,
    );
}
