//! # dynp-core — the self-tuning dynP job scheduler
//!
//! The paper's contribution: a scheduler for planning-based resource
//! management systems that *switches the active scheduling policy
//! dynamically at run time*. At every scheduling event it
//!
//! 1. computes a full schedule for each available policy
//!    ([`dynp_rms::Planner`]),
//! 2. scores each schedule with a performance metric
//!    ([`dynp_metrics::Objective`]),
//! 3. lets a **decider** pick the policy to use next.
//!
//! Three deciders are implemented (module [`decider`]):
//!
//! * **simple** — plain argmin with FCFS → SJF → LJF tie-break; the prior
//!   work baseline whose four wrong tie decisions the paper's Table 1
//!   catalogues (module [`table1`] reproduces that analysis);
//! * **advanced** — the "fair" decider: argmin that stays with the old
//!   policy whenever it ties for best;
//! * **preferred** — the paper's new "unfair" decider: a designated
//!   preferred policy is kept unless another policy is *clearly* better,
//!   and is returned to as soon as it performs at least equally.
//!
//! [`SelfTuningScheduler`] packages the loop behind the
//! [`dynp_rms::Scheduler`] trait so the same simulation driver runs
//! static baselines and dynP side by side.

pub mod compare;
pub mod decider;
pub mod history;
pub mod self_tuning;
pub mod table1;

pub use compare::{approx_eq, approx_le, EPSILON};
pub use decider::{advanced_decide, preferred_decide, simple_decide, DeciderKind};
pub use history::{PolicyHistory, PolicySegment};
pub use self_tuning::{
    resolve_planner_threads, try_resolve_planner_threads, DecideOn, DynPConfig,
    PlannerThreadsError, SelfTuningScheduler, SwitchStats,
};
