//! The paper's Table 1: the complete case analysis of the simple decider.
//!
//! The table enumerates every ordering/tie pattern of the three per-policy
//! values together with the old policy, the simple decider's choice and
//! the correct decision. "In four cases (1, 6b, 8c, and 10c) a wrong
//! decision is made by the simple decider" — this module encodes all
//! rows so tests can assert our simple and advanced deciders reproduce
//! both columns exactly, and the `table1` binary re-prints the table.

use crate::compare::EPSILON;
use crate::decider::{advanced_decide, simple_decide};
use dynp_rms::Policy;

/// One row of Table 1: a value pattern, an old policy, and the two
/// expected decisions.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// Case label as printed in the paper ("6b" etc.).
    pub case: &'static str,
    /// Human-readable description of the value combination.
    pub combination: &'static str,
    /// Concrete (FCFS, SJF, LJF) values realizing the pattern.
    pub values: (f64, f64, f64),
    /// The currently active policy.
    pub old: Policy,
    /// The simple decider's (sometimes wrong) choice.
    pub simple: Policy,
    /// The correct decision (the advanced decider's choice).
    pub correct: Policy,
    /// True for the four rows where the simple decider errs.
    pub simple_is_wrong: bool,
}

use Policy::{Fcfs, Ljf, Sjf};

/// All rows of Table 1. Cases without an explicit old-policy split are
/// expanded to all three old policies when the decisions depend on it
/// (case 1) and kept as one row per old policy otherwise (the decision is
/// old-independent, asserted by tests).
pub fn table1_rows() -> Vec<Table1Row> {
    let row = |case, combination, values, old, simple, correct| Table1Row {
        case,
        combination,
        values,
        old,
        simple,
        correct,
        simple_is_wrong: simple != correct,
    };
    vec![
        // Case 1: FCFS = SJF = LJF → simple picks FCFS, correct keeps old.
        row("1", "FCFS = SJF = LJF", (2.0, 2.0, 2.0), Fcfs, Fcfs, Fcfs),
        row("1", "FCFS = SJF = LJF", (2.0, 2.0, 2.0), Sjf, Fcfs, Sjf),
        row("1", "FCFS = SJF = LJF", (2.0, 2.0, 2.0), Ljf, Fcfs, Ljf),
        // Case 2: SJF strictly best.
        row(
            "2",
            "SJF < FCFS, SJF < LJF",
            (3.0, 1.0, 2.0),
            Fcfs,
            Sjf,
            Sjf,
        ),
        // Case 3: FCFS strictly best.
        row(
            "3",
            "FCFS < SJF, FCFS < LJF",
            (1.0, 3.0, 2.0),
            Sjf,
            Fcfs,
            Fcfs,
        ),
        // Case 4: LJF strictly best, FCFS/SJF in any relation.
        row("4a", "LJF < *, FCFS < SJF", (2.0, 3.0, 1.0), Fcfs, Ljf, Ljf),
        row("4b", "LJF < *, FCFS = SJF", (2.0, 2.0, 1.0), Fcfs, Ljf, Ljf),
        row("4c", "LJF < *, FCFS > SJF", (3.0, 2.0, 1.0), Fcfs, Ljf, Ljf),
        // Case 5: FCFS = SJF, LJF below both.
        row(
            "5",
            "FCFS = SJF, LJF < FCFS",
            (2.0, 2.0, 1.0),
            Sjf,
            Ljf,
            Ljf,
        ),
        // Case 6: FCFS = SJF, both below LJF — the old policy decides.
        row("6a", "FCFS = SJF < LJF", (1.0, 1.0, 2.0), Fcfs, Fcfs, Fcfs),
        row("6b", "FCFS = SJF < LJF", (1.0, 1.0, 2.0), Sjf, Fcfs, Sjf),
        row("6c", "FCFS = SJF < LJF", (1.0, 1.0, 2.0), Ljf, Fcfs, Fcfs),
        // Case 7: FCFS = LJF, SJF below both.
        row(
            "7",
            "FCFS = LJF, SJF < FCFS",
            (2.0, 1.0, 2.0),
            Fcfs,
            Sjf,
            Sjf,
        ),
        // Case 8: FCFS = LJF, both below SJF.
        row("8a", "FCFS = LJF < SJF", (1.0, 2.0, 1.0), Fcfs, Fcfs, Fcfs),
        row("8b", "FCFS = LJF < SJF", (1.0, 2.0, 1.0), Sjf, Fcfs, Fcfs),
        row("8c", "FCFS = LJF < SJF", (1.0, 2.0, 1.0), Ljf, Fcfs, Ljf),
        // Case 9: SJF = LJF, FCFS below both.
        row(
            "9",
            "SJF = LJF, FCFS < SJF",
            (1.0, 2.0, 2.0),
            Ljf,
            Fcfs,
            Fcfs,
        ),
        // Case 10: SJF = LJF, both below FCFS.
        row("10a", "SJF = LJF < FCFS", (2.0, 1.0, 1.0), Fcfs, Sjf, Sjf),
        row("10b", "SJF = LJF < FCFS", (2.0, 1.0, 1.0), Sjf, Sjf, Sjf),
        row("10c", "SJF = LJF < FCFS", (2.0, 1.0, 1.0), Ljf, Sjf, Ljf),
    ]
}

/// The reverse lookup for the trace audit: classifies a live `(FCFS,
/// SJF, LJF)` score triple plus the active policy into its Table 1 case
/// label, so `trace_report` can replay the table against recorded
/// decider inputs.
///
/// Ties use the same `epsilon` the deciders use. Cases 4b and 5
/// describe the identical value pattern (FCFS = SJF with LJF strictly
/// below), so that pattern reports as the combined label `"4b/5"`.
/// Returns `None` when `old` is not one of the three basic policies —
/// Table 1 only covers those.
pub fn classify(values: (f64, f64, f64), old: Policy, epsilon: f64) -> Option<&'static str> {
    let sub = |a: &'static str, b: &'static str, c: &'static str| match old {
        Fcfs => Some(a),
        Sjf => Some(b),
        Ljf => Some(c),
        _ => None,
    };
    if !Policy::BASIC.contains(&old) {
        return None;
    }
    let (f, s, l) = values;
    let eq = |a: f64, b: f64| (a - b).abs() <= epsilon;
    if eq(f, s) && eq(s, l) && eq(f, l) {
        Some("1")
    } else if eq(f, s) {
        if l < f {
            Some("4b/5")
        } else {
            sub("6a", "6b", "6c")
        }
    } else if eq(f, l) {
        if s < f {
            Some("7")
        } else {
            sub("8a", "8b", "8c")
        }
    } else if eq(s, l) {
        if f < s {
            Some("9")
        } else {
            sub("10a", "10b", "10c")
        }
    } else if s < f && s < l {
        Some("2")
    } else if f < s && f < l {
        Some("3")
    } else if f < s {
        Some("4a")
    } else {
        Some("4c")
    }
}

/// Runs both deciders over every row and renders the table, flagging the
/// rows where the simple decider errs (the paper prints them bold).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("case | combination              | old  | simple | correct | simple errs\n");
    out.push_str("-----+--------------------------+------+--------+---------+------------\n");
    for r in table1_rows() {
        let scores = vec![(Fcfs, r.values.0), (Sjf, r.values.1), (Ljf, r.values.2)];
        let simple = simple_decide(&scores, r.old, EPSILON);
        let advanced = advanced_decide(&scores, r.old, EPSILON);
        out.push_str(&format!(
            "{:<4} | {:<24} | {:<4} | {:<6} | {:<7} | {}\n",
            r.case,
            r.combination,
            r.old.name(),
            simple.name(),
            advanced.name(),
            if simple != advanced { "  ** wrong" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(r: &Table1Row) -> Vec<(Policy, f64)> {
        vec![(Fcfs, r.values.0), (Sjf, r.values.1), (Ljf, r.values.2)]
    }

    /// The headline check: our simple decider reproduces the paper's
    /// "simple decider" column for all 20 rows.
    #[test]
    fn simple_decider_matches_table1_column() {
        for r in table1_rows() {
            let got = simple_decide(&scores(&r), r.old, EPSILON);
            assert_eq!(
                got,
                r.simple,
                "case {} (old={}): simple decider chose {}, table says {}",
                r.case,
                r.old.name(),
                got.name(),
                r.simple.name()
            );
        }
    }

    /// The advanced decider reproduces the "correct decision" column for
    /// all 20 rows.
    #[test]
    fn advanced_decider_matches_correct_column() {
        for r in table1_rows() {
            let got = advanced_decide(&scores(&r), r.old, EPSILON);
            assert_eq!(
                got,
                r.correct,
                "case {} (old={}): advanced decider chose {}, table says {}",
                r.case,
                r.old.name(),
                got.name(),
                r.correct.name()
            );
        }
    }

    /// "In four cases (1, 6b, 8c, and 10c) a wrong decision is made by
    /// the simple decider" — case 1 errs for two of its three old
    /// policies, plus 6b, 8c, 10c: five wrong rows over four case labels.
    #[test]
    fn exactly_the_papers_cases_are_wrong() {
        let wrong: Vec<(&str, Policy)> = table1_rows()
            .iter()
            .filter(|r| r.simple_is_wrong)
            .map(|r| (r.case, r.old))
            .collect();
        assert_eq!(
            wrong,
            vec![
                ("1", Sjf),
                ("1", Ljf),
                ("6b", Sjf),
                ("8c", Ljf),
                ("10c", Ljf),
            ]
        );
        let wrong_cases: std::collections::BTreeSet<&str> = table1_rows()
            .iter()
            .filter(|r| r.simple_is_wrong)
            .map(|r| {
                // Strip the sub-case letter to compare against the
                // paper's "cases 1, 6b, 8c, 10c" list at case granularity.
                r.case
            })
            .collect();
        assert_eq!(
            wrong_cases.into_iter().collect::<Vec<_>>(),
            vec!["1", "10c", "6b", "8c"]
        );
    }

    /// "FCFS is favored in three and SJF in one case" (among the wrong
    /// decisions, counted per case label as the paper counts).
    #[test]
    fn simple_favoritism_counts() {
        let rows = table1_rows();
        let wrong: Vec<&Table1Row> = rows.iter().filter(|r| r.simple_is_wrong).collect();
        // Per case label: 1 → FCFS, 6b → FCFS, 8c → FCFS, 10c → SJF.
        let mut by_case: std::collections::BTreeMap<&str, Policy> =
            std::collections::BTreeMap::new();
        for r in &wrong {
            by_case.insert(r.case, r.simple);
        }
        let fcfs = by_case.values().filter(|&&p| p == Fcfs).count();
        let sjf = by_case.values().filter(|&&p| p == Sjf).count();
        assert_eq!(fcfs, 3);
        assert_eq!(sjf, 1);
    }

    /// Rows not split by old policy must not depend on it.
    #[test]
    fn unsplit_rows_are_old_independent() {
        for r in table1_rows() {
            if r.case.len() == 1 || matches!(r.case, "4a" | "4b" | "4c") {
                // Cases 2,3,4,5,7,9 (and 1 which IS split) — check both
                // deciders give the same answer for every old policy
                // except where the table splits.
                if r.case == "1" {
                    continue;
                }
                for old in Policy::BASIC {
                    let s = simple_decide(&scores(&r), old, EPSILON);
                    assert_eq!(s, r.simple, "case {} simple varies with old", r.case);
                    let a = advanced_decide(&scores(&r), old, EPSILON);
                    // Advanced may keep `old` when it ties the best; the
                    // unsplit rows have a strict unique minimum or the
                    // tie excludes the winner, so the answer is fixed.
                    assert_eq!(a, r.correct, "case {} advanced varies with old", r.case);
                }
            }
        }
    }

    /// `classify` inverts the table: every row's value pattern + old
    /// policy maps back to its own case label (4b and 5 share a pattern
    /// and map to the combined label).
    #[test]
    fn classify_recovers_every_rows_case() {
        for r in table1_rows() {
            let got = classify(r.values, r.old, EPSILON).unwrap();
            let expected = match r.case {
                "4b" | "5" => "4b/5",
                other => other,
            };
            assert_eq!(got, expected, "values {:?} old {}", r.values, r.old.name());
        }
    }

    #[test]
    fn classify_rejects_non_basic_policies() {
        assert_eq!(classify((1.0, 2.0, 3.0), Policy::Saf, EPSILON), None);
    }

    #[test]
    fn rendered_table_flags_five_wrong_rows() {
        let table = render_table1();
        assert_eq!(table.matches("** wrong").count(), 5);
        assert!(table.contains("6b"));
    }
}
