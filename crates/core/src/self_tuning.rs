//! The self-tuning dynP scheduler: plan per policy → score → decide.

use crate::compare::EPSILON;
use crate::decider::DeciderKind;
use dynp_des::SimTime;
use dynp_metrics::Objective;
use dynp_rms::{Planner, Policy, ReplanReason, RmsState, Schedule, Scheduler};
use dynp_workload::Job;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which events trigger a self-tuning step. "An option for the
/// self-tuning dynP scheduler is to do the self-tuning dynP step only
/// e.g. when new jobs are submitted" — the paper names the option but
/// studies the all-events variant; both are implemented (ablation A3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecideOn {
    /// Decide at every scheduling event (paper default).
    AllEvents,
    /// Decide only when jobs are submitted; completions replan with the
    /// active policy without reconsidering it.
    SubmissionsOnly,
}

/// Configuration of a self-tuning dynP scheduler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DynPConfig {
    /// Candidate policies in canonical order (ties break towards earlier
    /// entries). Defaults to the paper's FCFS, SJF, LJF.
    pub policies: Vec<Policy>,
    /// The decider mechanism.
    pub decider: DeciderKind,
    /// The metric planned schedules are scored with.
    pub objective: Objective,
    /// Policy active before the first decision.
    pub initial_policy: Policy,
    /// Relative tolerance for score equality.
    pub epsilon: f64,
    /// Which events trigger a decision.
    pub decide_on: DecideOn,
}

impl DynPConfig {
    /// The paper's configuration with the given decider: FCFS/SJF/LJF
    /// candidates, SLDwA objective, FCFS initial policy, decisions at
    /// every event.
    pub fn paper(decider: DeciderKind) -> Self {
        DynPConfig {
            policies: Policy::BASIC.to_vec(),
            decider,
            objective: Objective::SlowdownWeightedByArea,
            initial_policy: Policy::Fcfs,
            epsilon: EPSILON,
            decide_on: DecideOn::AllEvents,
        }
    }
}

/// Bookkeeping of the decisions a dynP run made.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Number of self-tuning steps (decisions) taken.
    pub decisions: u64,
    /// Number of decisions that changed the active policy.
    pub switches: u64,
    /// Decisions won per policy name.
    pub chosen: BTreeMap<String, u64>,
    /// The switch log: (time, new policy name), recorded only on change.
    pub log: Vec<(SimTime, String)>,
}

impl SwitchStats {
    /// Fraction of decisions the given policy won.
    pub fn share(&self, policy: Policy) -> f64 {
        if self.decisions == 0 {
            return 0.0;
        }
        *self.chosen.get(policy.name()).unwrap_or(&0) as f64 / self.decisions as f64
    }
}

/// The self-tuning dynP scheduler.
///
/// Implements [`Scheduler`], so the simulation driver treats it exactly
/// like a static policy: at every event it returns a full schedule — it
/// merely chooses anew, each time, *which policy's* schedule that is.
pub struct SelfTuningScheduler {
    config: DynPConfig,
    active: Policy,
    planner: Planner,
    queue_buf: Vec<Job>,
    /// Per-policy plan of the current step; reused across steps.
    plans: Vec<(Policy, Schedule, f64)>,
    /// Decision bookkeeping.
    pub stats: SwitchStats,
}

impl SelfTuningScheduler {
    /// Creates a scheduler from a configuration.
    ///
    /// # Panics
    /// Panics if the candidate list is empty or the initial policy is not
    /// a candidate.
    pub fn new(config: DynPConfig) -> Self {
        assert!(!config.policies.is_empty(), "dynP needs candidate policies");
        assert!(
            config.policies.contains(&config.initial_policy),
            "initial policy must be a candidate"
        );
        SelfTuningScheduler {
            active: config.initial_policy,
            planner: Planner::new(),
            queue_buf: Vec::new(),
            plans: Vec::new(),
            config,
            stats: SwitchStats::default(),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &DynPConfig {
        &self.config
    }

    /// Plans the waiting queue under one policy.
    fn plan_policy(&mut self, policy: Policy, state: &RmsState, now: SimTime) -> Schedule {
        self.queue_buf.clear();
        self.queue_buf.extend_from_slice(state.waiting());
        policy.sort_queue(&mut self.queue_buf);
        self.planner
            .plan(state.machine_size(), now, state.running(), &self.queue_buf)
    }

    /// One self-tuning dynP step: full schedule per policy, score each,
    /// decide, install.
    fn self_tuning_step(&mut self, state: &RmsState, now: SimTime) -> Schedule {
        self.plans.clear();
        let policies = self.config.policies.clone();
        for policy in policies {
            let schedule = self.plan_policy(policy, state, now);
            let score = self.config.objective.evaluate(&schedule, now);
            self.plans.push((policy, schedule, score));
        }
        let scores: Vec<(Policy, f64)> =
            self.plans.iter().map(|&(p, _, v)| (p, v)).collect();
        let next = self
            .config
            .decider
            .decide(&scores, self.active, self.config.epsilon);

        self.stats.decisions += 1;
        *self.stats.chosen.entry(next.name().to_string()).or_insert(0) += 1;
        if next != self.active {
            self.stats.switches += 1;
            self.stats.log.push((now, next.name().to_string()));
            self.active = next;
        }

        let idx = self
            .plans
            .iter()
            .position(|&(p, _, _)| p == next)
            .expect("decider returned a non-candidate policy");
        std::mem::take(&mut self.plans[idx].1)
    }
}

impl Scheduler for SelfTuningScheduler {
    fn replan(&mut self, state: &RmsState, now: SimTime, reason: ReplanReason) -> Schedule {
        match (self.config.decide_on, reason) {
            (DecideOn::SubmissionsOnly, ReplanReason::Completion) => {
                self.plan_policy(self.active, state, now)
            }
            _ => self.self_tuning_step(state, now),
        }
    }

    fn active_policy(&self) -> Policy {
        self.active
    }

    fn name(&self) -> String {
        format!("dynP[{}]", self.config.decider.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn dynp(decider: DeciderKind) -> SelfTuningScheduler {
        SelfTuningScheduler::new(DynPConfig::paper(decider))
    }

    #[test]
    fn empty_queue_keeps_the_active_policy() {
        let state = RmsState::new(4);
        let mut s = dynp(DeciderKind::Advanced);
        let schedule = s.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        assert!(schedule.is_empty());
        assert_eq!(s.active_policy(), Policy::Fcfs);
        assert_eq!(s.stats.decisions, 1);
        assert_eq!(s.stats.switches, 0);
    }

    #[test]
    fn switches_to_sjf_when_short_jobs_benefit() {
        // Machine 2. A long wide job and a short narrow job contend:
        // SJF's plan scores better than FCFS's.
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000)); // long, submitted first
        state.submit(j(1, 1, 2, 10)); // short
        let mut s = dynp(DeciderKind::Advanced);
        let schedule = s.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.active_policy(), Policy::Sjf);
        assert_eq!(s.stats.switches, 1);
        // The installed schedule is SJF's: the short job starts first.
        assert_eq!(schedule.entries[0].job.id, JobId(1));
    }

    #[test]
    fn single_candidate_dynp_equals_static_policy() {
        let mut config = DynPConfig::paper(DeciderKind::Advanced);
        config.policies = vec![Policy::Ljf];
        config.initial_policy = Policy::Ljf;
        let mut dynp1 = SelfTuningScheduler::new(config);
        let mut stat = dynp_rms::StaticScheduler::new(Policy::Ljf);

        let mut state = RmsState::new(4);
        for i in 0..6 {
            state.submit(j(i, i as u64, (i % 3) + 1, 100 * (i as u64 + 1)));
        }
        let now = SimTime::from_secs(10);
        let a = dynp1.replan(&state, now, ReplanReason::Submission);
        let b = stat.replan(&state, now, ReplanReason::Submission);
        assert_eq!(a.entries, b.entries);
        assert_eq!(dynp1.active_policy(), Policy::Ljf);
    }

    #[test]
    fn submissions_only_skips_decisions_on_completions() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000));
        state.submit(j(1, 1, 2, 10));
        let mut config = DynPConfig::paper(DeciderKind::Advanced);
        config.decide_on = DecideOn::SubmissionsOnly;
        let mut s = SelfTuningScheduler::new(config);
        let _ = s.replan(&state, SimTime::from_secs(1), ReplanReason::Completion);
        // No decision happened: still on the initial FCFS policy.
        assert_eq!(s.stats.decisions, 0);
        assert_eq!(s.active_policy(), Policy::Fcfs);
        let _ = s.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.stats.decisions, 1);
        assert_eq!(s.active_policy(), Policy::Sjf);
    }

    #[test]
    fn preferred_decider_reports_its_name() {
        let s = dynp(DeciderKind::Preferred {
            policy: Policy::Sjf,
            threshold: 0.0,
        });
        assert_eq!(s.name(), "dynP[SJF-preferred]");
    }

    #[test]
    fn stats_track_chosen_policies() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000));
        state.submit(j(1, 1, 2, 10));
        let mut s = dynp(DeciderKind::Advanced);
        let now = SimTime::from_secs(1);
        let _ = s.replan(&state, now, ReplanReason::Submission);
        let _ = s.replan(&state, now, ReplanReason::Completion);
        assert_eq!(s.stats.decisions, 2);
        assert!(s.stats.share(Policy::Sjf) > 0.99);
        assert_eq!(s.stats.log.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be a candidate")]
    fn initial_policy_must_be_candidate() {
        let mut config = DynPConfig::paper(DeciderKind::Simple);
        config.policies = vec![Policy::Sjf];
        let _ = SelfTuningScheduler::new(config);
    }

    #[test]
    fn installed_schedule_matches_decided_policy_plan() {
        // The schedule dynP returns must be exactly the plan of the
        // policy it decided for (not a stale or mixed plan).
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 500));
        state.submit(j(1, 1, 2, 100));
        state.submit(j(2, 2, 2, 300));
        let mut s = dynp(DeciderKind::Advanced);
        let now = SimTime::from_secs(2);
        let got = s.replan(&state, now, ReplanReason::Submission);
        let decided = s.active_policy();
        let mut reference = dynp_rms::StaticScheduler::new(decided);
        let want = reference.replan(&state, now, ReplanReason::Submission);
        assert_eq!(got.entries, want.entries);
    }
}
