//! The self-tuning dynP scheduler: plan per policy → score → decide.

use crate::compare::EPSILON;
use crate::decider::DeciderKind;
use dynp_des::SimTime;
use dynp_metrics::Objective;
use dynp_obs::{TraceClass, TraceEvent, Tracer};
use dynp_rms::{
    PlanTiming, Planner, Policy, QueueChange, ReferencePlanner, ReplanReason, RmsState, Schedule,
    Scheduler, SchedulerSnapshot,
};
use dynp_workload::Job;
use serde::{Deserialize, Serialize};

/// Which events trigger a self-tuning step. "An option for the
/// self-tuning dynP scheduler is to do the self-tuning dynP step only
/// e.g. when new jobs are submitted" — the paper names the option but
/// studies the all-events variant; both are implemented (ablation A3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecideOn {
    /// Decide at every scheduling event (paper default).
    AllEvents,
    /// Decide only when jobs are submitted; completions replan with the
    /// active policy without reconsidering it.
    SubmissionsOnly,
}

/// Configuration of a self-tuning dynP scheduler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DynPConfig {
    /// Candidate policies in canonical order (ties break towards earlier
    /// entries). Defaults to the paper's FCFS, SJF, LJF.
    pub policies: Vec<Policy>,
    /// The decider mechanism.
    pub decider: DeciderKind,
    /// The metric planned schedules are scored with.
    pub objective: Objective,
    /// Policy active before the first decision.
    pub initial_policy: Policy,
    /// Relative tolerance for score equality.
    pub epsilon: f64,
    /// Which events trigger a decision.
    pub decide_on: DecideOn,
    /// Worker threads for the per-policy plan fan-out. `0` (the default)
    /// resolves to the `DYNP_PLANNER_THREADS` environment variable if
    /// set, else to the host's available parallelism. Whatever the
    /// resolved count, schedules are bit-identical to a single-threaded
    /// run — each candidate policy plans independently against the same
    /// immutable base profile, and results merge in policy order.
    pub planner_threads: usize,
}

impl DynPConfig {
    /// The paper's configuration with the given decider: FCFS/SJF/LJF
    /// candidates, SLDwA objective, FCFS initial policy, decisions at
    /// every event.
    pub fn paper(decider: DeciderKind) -> Self {
        DynPConfig {
            policies: Policy::BASIC.to_vec(),
            decider,
            objective: Objective::SlowdownWeightedByArea,
            initial_policy: Policy::Fcfs,
            epsilon: EPSILON,
            decide_on: DecideOn::AllEvents,
            planner_threads: 0,
        }
    }
}

/// A malformed `DYNP_PLANNER_THREADS` environment variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannerThreadsError {
    /// The raw value that failed to parse as a thread count.
    pub raw: String,
}

impl std::fmt::Display for PlannerThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DYNP_PLANNER_THREADS must be a non-negative integer, got {:?}",
            self.raw
        )
    }
}

impl std::error::Error for PlannerThreadsError {}

/// Resolves a configured thread count: explicit config wins, then the
/// `DYNP_PLANNER_THREADS` environment variable (how `cargo test` runs
/// opt in, since libtest swallows custom flags), then the host's
/// available parallelism. `0` — configured or in the environment —
/// means auto. A `DYNP_PLANNER_THREADS` value that doesn't parse is an
/// error, not a silent fallback.
pub fn try_resolve_planner_threads(configured: usize) -> Result<usize, PlannerThreadsError> {
    if configured > 0 {
        return Ok(configured);
    }
    if let Ok(raw) = std::env::var("DYNP_PLANNER_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return Ok(n),
            Ok(_) => {} // 0 = auto, same as the config default
            Err(_) => return Err(PlannerThreadsError { raw }),
        }
    }
    Ok(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Like [`try_resolve_planner_threads`], but panics on a malformed
/// environment variable — for call sites with no error channel
/// (scheduler construction).
pub fn resolve_planner_threads(configured: usize) -> usize {
    match try_resolve_planner_threads(configured) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Bookkeeping of the decisions a dynP run made.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Number of self-tuning steps (decisions) taken.
    pub decisions: u64,
    /// Number of decisions that changed the active policy.
    pub switches: u64,
    /// Decisions won per policy, indexed by [`Policy::index`].
    pub chosen: [u64; Policy::COUNT],
    /// Switches *into* each policy, indexed by [`Policy::index`].
    /// Sums to [`SwitchStats::switches`]; unlike counts re-derived from
    /// a [`PolicyHistory`](crate::PolicyHistory), these are exact even
    /// when several switches share one timestamp (history segments
    /// collapse coincident switch times).
    pub switched_to: [u64; Policy::COUNT],
    /// The switch log: (time, new policy), recorded only on change.
    pub log: Vec<(SimTime, Policy)>,
}

impl SwitchStats {
    /// Fraction of decisions the given policy won.
    pub fn share(&self, policy: Policy) -> f64 {
        if self.decisions == 0 {
            return 0.0;
        }
        self.chosen[policy.index()] as f64 / self.decisions as f64
    }

    /// Number of switches that installed the given policy (exact, from
    /// the keyed counter — not re-derived from the switch log).
    pub fn switches_into(&self, policy: Policy) -> u64 {
        self.switched_to[policy.index()]
    }
}

/// The self-tuning dynP scheduler.
///
/// Implements [`Scheduler`], so the simulation driver treats it exactly
/// like a static policy: at every event it returns a full schedule — it
/// merely chooses anew, each time, *which policy's* schedule that is.
pub struct SelfTuningScheduler {
    config: DynPConfig,
    active: Policy,
    planner: Planner,
    /// From-scratch planner used when [`reference_mode`] is on.
    reference_planner: ReferencePlanner,
    /// When true, every step re-sorts every queue and rebuilds every
    /// profile from scratch (the pre-incremental algorithm), bypassing all
    /// incremental state. Kept as the correctness oracle: incremental and
    /// reference runs must produce bit-identical schedules and stats.
    reference_mode: bool,
    /// Scratch queue for reference-mode planning.
    queue_buf: Vec<Job>,
    /// Persistent sorted waiting-queue view per candidate policy (parallel
    /// to `config.policies`), maintained incrementally across events.
    orders: Vec<Vec<Job>>,
    /// How far into the state's queue change log the orders are synced.
    log_cursor: usize,
    /// Per-policy schedule of the current step (parallel to
    /// `config.policies`); reused across steps.
    plan_schedules: Vec<Schedule>,
    /// Per-policy objective score of the current step.
    plan_scores: Vec<f64>,
    /// Per-policy wall-clock timing of the current step's planning pass
    /// (filled by the batch fan-out when span tracing is on).
    plan_timings: Vec<PlanTiming>,
    /// Resolved worker cap for the plan fan-out (≥ 1).
    max_workers: usize,
    /// Total queue depth below which planning stays sequential.
    parallel_min_depth: usize,
    /// Scratch score vector handed to the decider; reused across steps.
    scores: Vec<(Policy, f64)>,
    /// Observability tracer (disabled by default: one branch per step).
    tracer: Tracer,
    /// Decision bookkeeping.
    pub stats: SwitchStats,
}

impl SelfTuningScheduler {
    /// Creates a scheduler from a configuration.
    ///
    /// # Panics
    /// Panics if the candidate list is empty or the initial policy is not
    /// a candidate.
    pub fn new(config: DynPConfig) -> Self {
        assert!(!config.policies.is_empty(), "dynP needs candidate policies");
        assert!(
            config.policies.contains(&config.initial_policy),
            "initial policy must be a candidate"
        );
        let n = config.policies.len();
        SelfTuningScheduler {
            active: config.initial_policy,
            planner: Planner::new(),
            reference_planner: ReferencePlanner::new(),
            reference_mode: false,
            queue_buf: Vec::new(),
            orders: vec![Vec::new(); n],
            log_cursor: 0,
            plan_schedules: vec![Schedule::default(); n],
            plan_scores: vec![0.0; n],
            plan_timings: vec![PlanTiming::default(); n],
            max_workers: resolve_planner_threads(config.planner_threads),
            parallel_min_depth: dynp_rms::PARALLEL_MIN_DEPTH,
            scores: Vec::new(),
            tracer: Tracer::disabled(),
            config,
            stats: SwitchStats::default(),
        }
    }

    /// Overrides the resolved fan-out worker cap (tests force specific
    /// counts; production resolution happens in [`SelfTuningScheduler::new`]
    /// from the config / environment / host parallelism).
    pub fn set_planner_threads(&mut self, workers: usize) {
        self.max_workers = workers.max(1);
    }

    /// Overrides the queue depth below which planning stays sequential.
    /// Equivalence tests set `0` so tiny queues still exercise the
    /// threaded path; production keeps
    /// [`dynp_rms::PARALLEL_MIN_DEPTH`].
    pub fn set_parallel_min_depth(&mut self, depth: usize) {
        self.parallel_min_depth = depth;
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &DynPConfig {
        &self.config
    }

    /// Switches between the incremental engine (default) and the
    /// from-scratch reference algorithm. Both produce bit-identical
    /// schedules and stats; the reference exists as the oracle the
    /// equivalence tests check the incremental engine against.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
    }

    /// Brings the per-policy sorted queue views in sync with the RMS
    /// waiting queue by replaying the tail of the state's queue change
    /// log: newly submitted jobs are binary-inserted into every policy
    /// order, jobs that started are binary-search removed. Cost is
    /// O(changes × policies × queue) per event instead of a full
    /// O(policies × queue log queue) copy-and-re-sort.
    ///
    /// # Panics
    /// Panics if the state's log is shorter than the cursor — the
    /// incremental engine must observe a single `RmsState` over its whole
    /// lifetime (as the simulation driver guarantees).
    fn sync_orders(&mut self, state: &RmsState) {
        let log = state.queue_log();
        assert!(
            self.log_cursor <= log.len(),
            "scheduler observed a different RmsState: queue log shrank"
        );
        for change in &log[self.log_cursor..] {
            match change {
                QueueChange::Entered(job) => {
                    for (policy, order) in self.config.policies.iter().zip(&mut self.orders) {
                        let pos = order
                            .binary_search_by(|probe| policy.cmp_jobs(probe, job))
                            .unwrap_err();
                        order.insert(pos, *job);
                    }
                }
                QueueChange::Left(job) => {
                    for (policy, order) in self.config.policies.iter().zip(&mut self.orders) {
                        let pos = order
                            .binary_search_by(|probe| policy.cmp_jobs(probe, job))
                            .expect("departed job must be present in every policy order");
                        order.remove(pos);
                    }
                }
            }
        }
        self.log_cursor = log.len();
        debug_assert_eq!(self.orders[0].len(), state.waiting().len());
    }

    /// Records one decision's outcome in the stats and installs the
    /// winning policy.
    fn record_decision(&mut self, now: SimTime, next: Policy) {
        self.stats.decisions += 1;
        self.stats.chosen[next.index()] += 1;
        if next != self.active {
            self.stats.switches += 1;
            self.stats.switched_to[next.index()] += 1;
            self.stats.log.push((now, next));
            self.active = next;
        }
    }

    /// Emits the decision audit events (verdict + switch, if any). Must
    /// run *before* [`record_decision`](Self::record_decision) installs
    /// the verdict, while `self.active` is still the old policy.
    fn trace_decision(&self, now: SimTime, next: Policy, rule: &'static str) {
        if !self.tracer.wants(TraceClass::Decision) {
            return;
        }
        self.tracer.record(
            now,
            TraceEvent::Decision {
                old: self.active.name(),
                verdict: next.name(),
                rule,
                scores: self.scores.iter().map(|&(p, v)| (p.name(), v)).collect(),
            },
        );
        if next != self.active {
            self.tracer.record(
                now,
                TraceEvent::PolicySwitch {
                    from: self.active.name(),
                    to: next.name(),
                },
            );
        }
    }

    /// Plans the waiting queue under one policy, from scratch (reference
    /// algorithm: copy the queue, sort it, rebuild the profile).
    fn plan_policy_reference(
        &mut self,
        policy: Policy,
        state: &RmsState,
        now: SimTime,
    ) -> Schedule {
        self.queue_buf.clear();
        self.queue_buf.extend_from_slice(state.waiting());
        policy.sort_queue(&mut self.queue_buf);
        self.reference_planner.plan_with_reservations(
            state.plan_capacity(),
            now,
            state.running(),
            state.reservation_slice(),
            &self.queue_buf,
        )
    }

    /// Plans the active policy's queue without a decision (the
    /// SubmissionsOnly completion path).
    fn plan_active(&mut self, state: &RmsState, now: SimTime) -> Schedule {
        if self.reference_mode {
            return self.plan_policy_reference(self.active, state, now);
        }
        self.sync_orders(state);
        self.planner.prepare(
            state.plan_capacity(),
            now,
            state.running(),
            state.reservation_slice(),
        );
        let slot = self
            .config
            .policies
            .iter()
            .position(|&p| p == self.active)
            .expect("active policy is always a candidate");
        self.planner.plan_prepared(&self.orders[slot])
    }

    /// One self-tuning dynP step: full schedule per policy, score each,
    /// decide, install.
    fn self_tuning_step(&mut self, state: &RmsState, now: SimTime) -> Schedule {
        if self.reference_mode {
            return self.self_tuning_step_reference(state, now);
        }
        self.sync_orders(state);

        // Fast path: an empty queue plans to the empty schedule under
        // every policy, so every score is the objective's empty value
        // (0.0) and the decision is whatever the decider does on uniform
        // scores — identical to the general path, without planning.
        if state.waiting().is_empty() {
            self.scores.clear();
            self.scores
                .extend(self.config.policies.iter().map(|&p| (p, 0.0)));
            let (next, rule) = self.config.decider.decide_explained(
                &self.scores,
                self.active,
                self.config.epsilon,
            );
            self.trace_decision(now, next, rule);
            self.record_decision(now, next);
            return Schedule::default();
        }

        // The base profile (running jobs + admitted reservation windows)
        // is identical for every candidate policy: build it once, restore
        // per policy. This is where the incremental endpoint sweep folds
        // reservation endpoints in. Capacity is the *usable* machine:
        // down nodes shrink every candidate plan identically.
        self.planner.prepare(
            state.plan_capacity(),
            now,
            state.running(),
            state.reservation_slice(),
        );

        // Fast path: with a single candidate every decider returns it
        // regardless of score (argmin of one; the advanced/preferred
        // variants degenerate likewise), so skip scoring and plan once.
        if let [policy] = self.config.policies[..] {
            if self.tracer.wants(TraceClass::Decision) {
                self.scores.clear();
                self.scores.push((policy, 0.0));
                self.trace_decision(now, policy, "single-candidate");
            }
            self.record_decision(now, policy);
            return self.planner.plan_prepared(&self.orders[0]);
        }

        // Fan the independent per-policy planning passes across workers
        // once the queue is deep enough to amortize thread hand-off.
        // Schedules land in policy order regardless of worker count, and
        // scoring stays on this thread in that same order, so the step
        // is bit-identical for every `max_workers`.
        let workers = if state.waiting().len() >= self.parallel_min_depth {
            self.max_workers
        } else {
            1
        };
        let workers_used = self.planner.plan_prepared_batch(
            &self.orders,
            &mut self.plan_schedules,
            &mut self.plan_timings,
            workers,
        );
        for i in 0..self.config.policies.len() {
            self.plan_scores[i] = self.config.objective.evaluate(&self.plan_schedules[i], now);
        }
        if self.tracer.wants(TraceClass::Span) {
            for (i, &policy) in self.config.policies.iter().enumerate() {
                self.tracer.record_at(
                    now,
                    self.plan_timings[i].start_ns,
                    TraceEvent::PlanBuilt {
                        policy: policy.name(),
                        queue_depth: self.orders[i].len() as u32,
                        profile_points: self.planner.base_points() as u32,
                        workers: workers_used as u32,
                        dur_ns: self.plan_timings[i].dur_ns,
                    },
                );
            }
        }
        self.scores.clear();
        self.scores.extend(
            self.config
                .policies
                .iter()
                .zip(&self.plan_scores)
                .map(|(&p, &v)| (p, v)),
        );
        let (next, rule) =
            self.config
                .decider
                .decide_explained(&self.scores, self.active, self.config.epsilon);
        self.trace_decision(now, next, rule);
        self.record_decision(now, next);

        let idx = self
            .config
            .policies
            .iter()
            .position(|&p| p == next)
            .expect("decider returned a non-candidate policy");
        std::mem::take(&mut self.plan_schedules[idx])
    }

    /// The pre-incremental step: re-sort every queue, rebuild every
    /// profile, score, decide. Kept verbatim as the correctness oracle.
    fn self_tuning_step_reference(&mut self, state: &RmsState, now: SimTime) -> Schedule {
        let policies = self.config.policies.clone();
        for (i, policy) in policies.into_iter().enumerate() {
            let schedule = self.plan_policy_reference(policy, state, now);
            self.plan_scores[i] = self.config.objective.evaluate(&schedule, now);
            self.plan_schedules[i] = schedule;
        }
        self.scores.clear();
        self.scores.extend(
            self.config
                .policies
                .iter()
                .zip(&self.plan_scores)
                .map(|(&p, &v)| (p, v)),
        );
        let (next, rule) =
            self.config
                .decider
                .decide_explained(&self.scores, self.active, self.config.epsilon);
        self.trace_decision(now, next, rule);
        self.record_decision(now, next);

        let idx = self
            .config
            .policies
            .iter()
            .position(|&p| p == next)
            .expect("decider returned a non-candidate policy");
        std::mem::take(&mut self.plan_schedules[idx])
    }
}

impl Scheduler for SelfTuningScheduler {
    fn replan(&mut self, state: &RmsState, now: SimTime, reason: ReplanReason) -> Schedule {
        let _span = self.tracer.span(now, "replan");
        match (self.config.decide_on, reason) {
            // SubmissionsOnly: completions, reservation-book changes and
            // fault events replan with the active policy, without
            // reconsidering it (only submissions trigger a decision).
            (DecideOn::SubmissionsOnly, ReplanReason::Completion)
            | (DecideOn::SubmissionsOnly, ReplanReason::Reservation)
            | (DecideOn::SubmissionsOnly, ReplanReason::Fault) => self.plan_active(state, now),
            _ => self.self_tuning_step(state, now),
        }
    }

    fn active_policy(&self) -> Policy {
        self.active
    }

    fn name(&self) -> String {
        format!("dynP[{}]", self.config.decider.name())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.planner.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Encodes the cross-event state: the active policy and the switch
    /// statistics. The per-policy queue orders and `log_cursor` are NOT
    /// captured — they are a pure function of the state's queue-change
    /// log (every policy comparator is a *total* order with an
    /// (submit, id) tail, so replaying the full log from cursor 0
    /// reproduces them bit-identically), and `restore` resets them so
    /// the next `sync_orders` rebuilds from scratch. Planner internals
    /// are caches rebuilt every event.
    fn snapshot(&self) -> Option<SchedulerSnapshot> {
        let s = &self.stats;
        let mut words = vec![
            self.active.index() as u64,
            s.decisions,
            s.switches,
            s.log.len() as u64,
        ];
        words.extend_from_slice(&s.chosen);
        words.extend_from_slice(&s.switched_to);
        for (t, p) in &s.log {
            words.push(t.as_millis());
            words.push(p.index() as u64);
        }
        Some(SchedulerSnapshot { tag: "dynp", words })
    }

    fn restore(&mut self, snap: &SchedulerSnapshot) {
        assert_eq!(snap.tag, "dynp", "snapshot from a different scheduler");
        let w = &snap.words;
        self.active = Policy::ALL[w[0] as usize];
        let n = Policy::COUNT;
        let log_len = w[3] as usize;
        let mut stats = SwitchStats {
            decisions: w[1],
            switches: w[2],
            ..SwitchStats::default()
        };
        stats.chosen.copy_from_slice(&w[4..4 + n]);
        stats.switched_to.copy_from_slice(&w[4 + n..4 + 2 * n]);
        let mut at = 4 + 2 * n;
        for _ in 0..log_len {
            stats
                .log
                .push((SimTime::from_millis(w[at]), Policy::ALL[w[at + 1] as usize]));
            at += 2;
        }
        self.stats = stats;
        // Force a full queue-order rebuild from the (restored) state's
        // complete queue-change log on the next replan.
        for order in &mut self.orders {
            order.clear();
        }
        self.log_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn dynp(decider: DeciderKind) -> SelfTuningScheduler {
        SelfTuningScheduler::new(DynPConfig::paper(decider))
    }

    #[test]
    fn empty_queue_keeps_the_active_policy() {
        let state = RmsState::new(4);
        let mut s = dynp(DeciderKind::Advanced);
        let schedule = s.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        assert!(schedule.is_empty());
        assert_eq!(s.active_policy(), Policy::Fcfs);
        assert_eq!(s.stats.decisions, 1);
        assert_eq!(s.stats.switches, 0);
    }

    #[test]
    fn switches_to_sjf_when_short_jobs_benefit() {
        // Machine 2. A long wide job and a short narrow job contend:
        // SJF's plan scores better than FCFS's.
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000)); // long, submitted first
        state.submit(j(1, 1, 2, 10)); // short
        let mut s = dynp(DeciderKind::Advanced);
        let schedule = s.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.active_policy(), Policy::Sjf);
        assert_eq!(s.stats.switches, 1);
        // The installed schedule is SJF's: the short job starts first.
        assert_eq!(schedule.entries[0].job.id, JobId(1));
    }

    #[test]
    fn single_candidate_dynp_equals_static_policy() {
        let mut config = DynPConfig::paper(DeciderKind::Advanced);
        config.policies = vec![Policy::Ljf];
        config.initial_policy = Policy::Ljf;
        let mut dynp1 = SelfTuningScheduler::new(config);
        let mut stat = dynp_rms::StaticScheduler::new(Policy::Ljf);

        let mut state = RmsState::new(4);
        for i in 0..6 {
            state.submit(j(i, i as u64, (i % 3) + 1, 100 * (i as u64 + 1)));
        }
        let now = SimTime::from_secs(10);
        let a = dynp1.replan(&state, now, ReplanReason::Submission);
        let b = stat.replan(&state, now, ReplanReason::Submission);
        assert_eq!(a.entries, b.entries);
        assert_eq!(dynp1.active_policy(), Policy::Ljf);
    }

    #[test]
    fn submissions_only_skips_decisions_on_completions() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000));
        state.submit(j(1, 1, 2, 10));
        let mut config = DynPConfig::paper(DeciderKind::Advanced);
        config.decide_on = DecideOn::SubmissionsOnly;
        let mut s = SelfTuningScheduler::new(config);
        let _ = s.replan(&state, SimTime::from_secs(1), ReplanReason::Completion);
        // No decision happened: still on the initial FCFS policy.
        assert_eq!(s.stats.decisions, 0);
        assert_eq!(s.active_policy(), Policy::Fcfs);
        let _ = s.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.stats.decisions, 1);
        assert_eq!(s.active_policy(), Policy::Sjf);
    }

    #[test]
    fn preferred_decider_reports_its_name() {
        let s = dynp(DeciderKind::Preferred {
            policy: Policy::Sjf,
            threshold: 0.0,
        });
        assert_eq!(s.name(), "dynP[SJF-preferred]");
    }

    #[test]
    fn stats_track_chosen_policies() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 10_000));
        state.submit(j(1, 1, 2, 10));
        let mut s = dynp(DeciderKind::Advanced);
        let now = SimTime::from_secs(1);
        let _ = s.replan(&state, now, ReplanReason::Submission);
        let _ = s.replan(&state, now, ReplanReason::Completion);
        assert_eq!(s.stats.decisions, 2);
        assert!(s.stats.share(Policy::Sjf) > 0.99);
        assert_eq!(s.stats.log.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be a candidate")]
    fn initial_policy_must_be_candidate() {
        let mut config = DynPConfig::paper(DeciderKind::Simple);
        config.policies = vec![Policy::Sjf];
        let _ = SelfTuningScheduler::new(config);
    }

    #[test]
    fn empty_queue_fast_path_still_decides() {
        // The empty-queue fast path must go through the decider: a
        // preferred decider switches to its preferred policy on uniform
        // (all-zero) scores even with nothing to plan.
        let state = RmsState::new(4);
        let mut s = dynp(DeciderKind::Preferred {
            policy: Policy::Sjf,
            threshold: 0.1,
        });
        let _ = s.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        assert_eq!(s.active_policy(), Policy::Sjf);
        assert_eq!(s.stats.decisions, 1);
        assert_eq!(s.stats.switches, 1);
        assert_eq!(s.stats.log, vec![(SimTime::ZERO, Policy::Sjf)]);
    }

    #[test]
    fn single_candidate_fast_path_counts_stats() {
        let mut config = DynPConfig::paper(DeciderKind::Advanced);
        config.policies = vec![Policy::Sjf];
        config.initial_policy = Policy::Sjf;
        let mut s = SelfTuningScheduler::new(config);
        let mut state = RmsState::new(4);
        state.submit(j(0, 0, 2, 100));
        let _ = s.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        let _ = s.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        assert_eq!(s.stats.decisions, 2);
        assert_eq!(s.stats.switches, 0);
        assert!((s.stats.share(Policy::Sjf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_reference_across_events() {
        // Drive incremental and reference schedulers through the same
        // event sequence (submissions, starts, completions) and demand
        // bit-identical schedules and stats at every step.
        for decider in [
            DeciderKind::Simple,
            DeciderKind::Advanced,
            DeciderKind::Preferred {
                policy: Policy::Ljf,
                threshold: 0.05,
            },
        ] {
            let mut incremental = dynp(decider);
            let mut reference = dynp(decider);
            reference.set_reference_mode(true);

            let mut state = RmsState::new(4);
            let check = |state: &RmsState,
                         now: SimTime,
                         reason: ReplanReason,
                         a: &mut SelfTuningScheduler,
                         b: &mut SelfTuningScheduler| {
                let x = a.replan(state, now, reason);
                let y = b.replan(state, now, reason);
                assert_eq!(x.entries, y.entries, "{decider:?} at {now:?}");
                assert_eq!(a.stats, b.stats, "{decider:?} at {now:?}");
                assert_eq!(a.active_policy(), b.active_policy());
                x
            };

            // Event 1: empty queue.
            check(
                &state,
                SimTime::ZERO,
                ReplanReason::Submission,
                &mut incremental,
                &mut reference,
            );
            // Events 2..5: staggered submissions.
            for i in 0..4u32 {
                let now = SimTime::from_secs(10 * (i as u64 + 1));
                state.submit(j(i, 10 * (i as u64 + 1), (i % 3) + 1, 50 * (4 - i as u64)));
                check(
                    &state,
                    now,
                    ReplanReason::Submission,
                    &mut incremental,
                    &mut reference,
                );
            }
            // Event 6: the first planned job starts, then one completes.
            let now = SimTime::from_secs(60);
            let sched = check(
                &state,
                now,
                ReplanReason::Submission,
                &mut incremental,
                &mut reference,
            );
            let first = sched.entries[0].job.id;
            state.start(first, now);
            check(
                &state,
                now,
                ReplanReason::Submission,
                &mut incremental,
                &mut reference,
            );
            let end = state.running()[0].actual_end();
            state.complete(first, end);
            check(
                &state,
                end,
                ReplanReason::Completion,
                &mut incremental,
                &mut reference,
            );
        }
    }

    #[test]
    fn incremental_matches_reference_with_reservations() {
        // A reservation-bearing state: both engines must fold the admitted
        // windows into their base profiles and stay bit-identical.
        for decider in [DeciderKind::Simple, DeciderKind::Advanced] {
            let mut incremental = dynp(decider);
            let mut reference = dynp(decider);
            reference.set_reference_mode(true);

            let mut state = RmsState::new(4);
            state.admit_reservation(SimTime::from_secs(120), SimDuration::from_secs(60), 3);
            for i in 0..4u32 {
                let now = SimTime::from_secs(10 * (i as u64 + 1));
                state.submit(j(i, 10 * (i as u64 + 1), (i % 3) + 1, 50 * (4 - i as u64)));
                let x = incremental.replan(&state, now, ReplanReason::Submission);
                let y = reference.replan(&state, now, ReplanReason::Submission);
                assert_eq!(x.entries, y.entries, "{decider:?} at {now:?}");
                assert_eq!(incremental.stats, reference.stats);
            }
            // Admitting another window mid-stream is a Reservation replan.
            state.admit_reservation(SimTime::from_secs(300), SimDuration::from_secs(50), 4);
            let now = SimTime::from_secs(45);
            let x = incremental.replan(&state, now, ReplanReason::Reservation);
            let y = reference.replan(&state, now, ReplanReason::Reservation);
            assert_eq!(x.entries, y.entries, "{decider:?} post-admit");
            assert_eq!(incremental.active_policy(), reference.active_policy());
            // The schedules actually avoid the windows.
            for e in &x.entries {
                let end = e.start.saturating_add(e.job.estimate);
                if e.job.width > 1 {
                    let w_start = SimTime::from_secs(120);
                    let w_end = SimTime::from_secs(180);
                    assert!(
                        end <= w_start || e.start >= w_end,
                        "width-{} job at {:?} overlaps the 3-wide window",
                        e.job.width,
                        e.start
                    );
                }
            }
        }
    }

    #[test]
    fn installed_schedule_matches_decided_policy_plan() {
        // The schedule dynP returns must be exactly the plan of the
        // policy it decided for (not a stale or mixed plan).
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 500));
        state.submit(j(1, 1, 2, 100));
        state.submit(j(2, 2, 2, 300));
        let mut s = dynp(DeciderKind::Advanced);
        let now = SimTime::from_secs(2);
        let got = s.replan(&state, now, ReplanReason::Submission);
        let decided = s.active_policy();
        let mut reference = dynp_rms::StaticScheduler::new(decided);
        let want = reference.replan(&state, now, ReplanReason::Submission);
        assert_eq!(got.entries, want.entries);
    }
}
