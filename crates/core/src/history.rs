//! Post-hoc analysis of a dynP run's policy-switch history.
//!
//! The switch log ([`crate::SwitchStats::log`]) records *when* the active
//! policy changed; this module turns it into the quantities one asks
//! about a policy-switching scheduler: how long was each policy in force,
//! how often did it switch, did it oscillate?

use crate::self_tuning::SwitchStats;
use dynp_des::{SimDuration, SimTime};
use dynp_rms::Policy;
use std::collections::BTreeMap;

/// One interval during which a single policy was active.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySegment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// Active policy.
    pub policy: Policy,
}

impl PolicySegment {
    /// Length of the segment.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The reconstructed policy timeline of one run.
#[derive(Clone, Debug, Default)]
pub struct PolicyHistory {
    segments: Vec<PolicySegment>,
}

impl PolicyHistory {
    /// Reconstructs the timeline from a run's switch statistics: the
    /// initial policy holds from `start` until the first logged switch,
    /// and the last policy holds until `end`.
    pub fn reconstruct(
        initial: Policy,
        stats: &SwitchStats,
        start: SimTime,
        end: SimTime,
    ) -> PolicyHistory {
        let mut segments = Vec::with_capacity(stats.log.len() + 1);
        let mut current = initial;
        let mut seg_start = start;
        for &(time, next) in &stats.log {
            if time > seg_start {
                segments.push(PolicySegment {
                    start: seg_start,
                    end: time,
                    policy: current,
                });
                seg_start = time;
            }
            current = next;
        }
        if end > seg_start {
            segments.push(PolicySegment {
                start: seg_start,
                end,
                policy: current,
            });
        }
        PolicyHistory { segments }
    }

    /// The timeline segments, in order.
    pub fn segments(&self) -> &[PolicySegment] {
        &self.segments
    }

    /// Total simulated time covered.
    pub fn span(&self) -> SimDuration {
        match (self.segments.first(), self.segments.last()) {
            (Some(first), Some(last)) => last.end.saturating_since(first.start),
            _ => SimDuration::ZERO,
        }
    }

    /// Time the given policy was in force.
    pub fn time_in(&self, policy: Policy) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.policy == policy)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Fraction of the span the given policy was in force (0 when the
    /// span is empty).
    pub fn fraction_in(&self, policy: Policy) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.time_in(policy).as_secs_f64() / span
    }

    /// Number of policy changes.
    pub fn switches(&self) -> usize {
        self.segments.len().saturating_sub(1)
    }

    /// Mean time between switches; the whole span when there were none.
    pub fn mean_residence_secs(&self) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        self.span().as_secs_f64() / self.segments.len() as f64
    }

    /// Per-policy time shares, by policy name, for reporting.
    pub fn shares(&self) -> BTreeMap<&'static str, f64> {
        let mut out = BTreeMap::new();
        for policy in Policy::ALL {
            let f = self.fraction_in(policy);
            if f > 0.0 {
                out.insert(policy.name(), f);
            }
        }
        out
    }

    /// Detects rapid oscillation: the share of segments shorter than
    /// `window`. A value near 1 means the decider flaps.
    pub fn flapping_share(&self, window: SimDuration) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        let short = self
            .segments
            .iter()
            .filter(|s| s.duration() < window)
            .count();
        short as f64 / self.segments.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn stats_with_log(entries: &[(u64, Policy)]) -> SwitchStats {
        SwitchStats {
            decisions: entries.len() as u64,
            switches: entries.len() as u64,
            chosen: Default::default(),
            switched_to: Default::default(),
            log: entries.iter().map(|&(s, p)| (t(s), p)).collect(),
        }
    }

    #[test]
    fn reconstructs_segments_with_boundaries() {
        let stats = stats_with_log(&[(100, Policy::Sjf), (300, Policy::Ljf)]);
        let h = PolicyHistory::reconstruct(Policy::Fcfs, &stats, t(0), t(1_000));
        assert_eq!(h.segments().len(), 3);
        assert_eq!(h.segments()[0].policy, Policy::Fcfs);
        assert_eq!(h.segments()[0].duration(), SimDuration::from_secs(100));
        assert_eq!(h.segments()[1].policy, Policy::Sjf);
        assert_eq!(h.segments()[1].duration(), SimDuration::from_secs(200));
        assert_eq!(h.segments()[2].policy, Policy::Ljf);
        assert_eq!(h.segments()[2].duration(), SimDuration::from_secs(700));
        assert_eq!(h.switches(), 2);
        assert_eq!(h.span(), SimDuration::from_secs(1_000));
    }

    #[test]
    fn time_accounting_sums_split_segments() {
        let stats = stats_with_log(&[(100, Policy::Sjf), (200, Policy::Fcfs), (400, Policy::Sjf)]);
        let h = PolicyHistory::reconstruct(Policy::Fcfs, &stats, t(0), t(500));
        // FCFS: [0,100) + [200,400) = 300; SJF: [100,200) + [400,500) = 200.
        assert_eq!(h.time_in(Policy::Fcfs), SimDuration::from_secs(300));
        assert_eq!(h.time_in(Policy::Sjf), SimDuration::from_secs(200));
        assert_eq!(h.time_in(Policy::Ljf), SimDuration::ZERO);
        assert!((h.fraction_in(Policy::Fcfs) - 0.6).abs() < 1e-12);
        let shares = h.shares();
        assert_eq!(shares.len(), 2);
        assert!((shares["SJF"] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn no_switches_is_one_segment() {
        let stats = SwitchStats::default();
        let h = PolicyHistory::reconstruct(Policy::Sjf, &stats, t(0), t(100));
        assert_eq!(h.segments().len(), 1);
        assert_eq!(h.switches(), 0);
        assert_eq!(h.fraction_in(Policy::Sjf), 1.0);
        assert_eq!(h.mean_residence_secs(), 100.0);
    }

    #[test]
    fn empty_span_is_benign() {
        let stats = SwitchStats::default();
        let h = PolicyHistory::reconstruct(Policy::Sjf, &stats, t(5), t(5));
        assert!(h.segments().is_empty());
        assert_eq!(h.fraction_in(Policy::Sjf), 0.0);
        assert_eq!(h.flapping_share(SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn flapping_detection() {
        // Three 1-second segments then a long one.
        let stats = stats_with_log(&[(1, Policy::Sjf), (2, Policy::Fcfs), (3, Policy::Ljf)]);
        let h = PolicyHistory::reconstruct(Policy::Fcfs, &stats, t(0), t(1_000));
        let share = h.flapping_share(SimDuration::from_secs(5));
        assert!((share - 0.75).abs() < 1e-12, "{share}");
    }

    #[test]
    fn coincident_switch_times_collapse() {
        // A switch logged at the same instant as the previous one
        // produces no zero-length segment.
        let stats = stats_with_log(&[(10, Policy::Sjf), (10, Policy::Ljf)]);
        let h = PolicyHistory::reconstruct(Policy::Fcfs, &stats, t(0), t(100));
        assert_eq!(h.segments().len(), 2);
        assert_eq!(h.segments()[1].policy, Policy::Ljf);
    }
}
