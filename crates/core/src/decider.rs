//! The decider mechanisms: simple, advanced, and the paper's new
//! preferred decider.
//!
//! A decider receives one score per candidate policy (lower = better; see
//! [`dynp_metrics::Objective`]) plus the currently active ("old") policy,
//! and returns the policy to use next.
//!
//! Conventions shared by all deciders:
//! * scores arrive in the canonical candidate order (FCFS, SJF, LJF for
//!   the paper's setup) — ties that must break *somewhere* break towards
//!   the earlier candidate, which reproduces the FCFS/SJF preferences in
//!   the paper's Table 1;
//! * score equality is ε-tolerant ([`crate::compare`]).

use crate::compare::{approx_le, approx_lt};
use dynp_rms::Policy;
use serde::{Deserialize, Serialize};

/// Index of the minimum score (first of the argmin set under ε).
fn argmin(scores: &[(Policy, f64)], eps: f64) -> usize {
    debug_assert!(!scores.is_empty());
    let mut best = scores[0].1;
    for &(_, v) in &scores[1..] {
        if v < best {
            best = v;
        }
    }
    scores
        .iter()
        .position(|&(_, v)| approx_le(v, best, eps))
        .expect("argmin set cannot be empty")
}

fn score_of(scores: &[(Policy, f64)], p: Policy) -> Option<f64> {
    scores.iter().find(|&&(q, _)| q == p).map(|&(_, v)| v)
}

fn min_score(scores: &[(Policy, f64)]) -> f64 {
    scores.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min)
}

/// Number of policies tied for the best score under ε.
fn argmin_set_size(scores: &[(Policy, f64)], eps: f64) -> usize {
    let best = min_score(scores);
    scores
        .iter()
        .filter(|&&(_, v)| approx_le(v, best, eps))
        .count()
}

/// The **simple decider** of the earlier dynP work: pure argmin with
/// candidate-order tie-break, ignoring the old policy. Equivalent to the
/// paper's three if-then-else constructs
/// (`FCFS if vF ≤ vS ∧ vF ≤ vL, else SJF if vS ≤ vL, else LJF`) —
/// and therefore wrong in the four tie cases of Table 1.
pub fn simple_decide(scores: &[(Policy, f64)], old: Policy, eps: f64) -> Policy {
    simple_decide_explained(scores, old, eps).0
}

/// [`simple_decide`] plus the tie-break rule that fired — `"argmin"` for
/// a unique minimum, `"tie-first-candidate"` when the candidate-order
/// tie-break (the flaw Table 1 documents) picked among equals.
pub fn simple_decide_explained(
    scores: &[(Policy, f64)],
    _old: Policy,
    eps: f64,
) -> (Policy, &'static str) {
    let chosen = scores[argmin(scores, eps)].0;
    if argmin_set_size(scores, eps) > 1 {
        (chosen, "tie-first-candidate")
    } else {
        (chosen, "argmin")
    }
}

/// The **advanced decider**: the "correct decision" column of Table 1.
/// Stays with the old policy whenever it ties for best; otherwise picks
/// the best policy (candidate-order tie-break among equals).
pub fn advanced_decide(scores: &[(Policy, f64)], old: Policy, eps: f64) -> Policy {
    advanced_decide_explained(scores, old, eps).0
}

/// [`advanced_decide`] plus the rule that fired: `"argmin"` (unique
/// best, incumbent or not), `"stay-incumbent-tied"` (the incumbent tied
/// for best and was kept — the Table 1 correction), or
/// `"tie-first-candidate"` (incumbent out of the argmin set, which has a
/// tie among the others).
pub fn advanced_decide_explained(
    scores: &[(Policy, f64)],
    old: Policy,
    eps: f64,
) -> (Policy, &'static str) {
    let best = min_score(scores);
    if let Some(v_old) = score_of(scores, old) {
        if approx_le(v_old, best, eps) {
            let rule = if argmin_set_size(scores, eps) > 1 {
                "stay-incumbent-tied"
            } else {
                "argmin"
            };
            return (old, rule);
        }
    }
    simple_decide_explained(scores, old, eps)
}

/// The **preferred decider** — the paper's contribution. "The new
/// preferred decider stays with its preferred policy, unless any other
/// policy is clearly better. Whenever any of the other, non-preferred
/// policies are currently used, the preferred policy has to achieve only
/// an equal performance and the preferred decider switches back."
///
/// `threshold` quantifies "clearly better" as a relative margin: while
/// the preferred policy is active, another policy only wins if its score
/// undercuts the preferred score by more than `threshold` (relative).
/// The paper does not quantify the margin; `threshold = 0` makes
/// "clearly better" mean "strictly better", which is the setting used for
/// the headline experiments (an ablation sweeps it).
pub fn preferred_decide(
    scores: &[(Policy, f64)],
    old: Policy,
    preferred: Policy,
    threshold: f64,
    eps: f64,
) -> Policy {
    preferred_decide_explained(scores, old, preferred, threshold, eps).0
}

/// [`preferred_decide`] plus the rule that fired: `"preferred-best"`
/// (the preferred policy ties for best), `"preferred-holds"` (it is
/// active and no other policy is clearly better), `"clearly-better"`
/// (another policy beat it past the threshold), `"switch-back-parity"`
/// (a non-preferred policy was active and the preferred one matched it),
/// `"advanced-fallback"` (preferred policy not among the candidates), or
/// an advanced-decider rule when none of the unfair rules applied.
pub fn preferred_decide_explained(
    scores: &[(Policy, f64)],
    old: Policy,
    preferred: Policy,
    threshold: f64,
    eps: f64,
) -> (Policy, &'static str) {
    let best = min_score(scores);
    let v_pref = match score_of(scores, preferred) {
        Some(v) => v,
        // Preferred policy not among the candidates: degenerate to the
        // advanced decider.
        None => return (advanced_decide(scores, old, eps), "advanced-fallback"),
    };

    // Preferred ties for best → use it (covers both "stay" and "switch
    // back on equal performance").
    if approx_le(v_pref, best, eps) {
        return (preferred, "preferred-best");
    }

    if old == preferred {
        // Leave the preferred policy only for a CLEARLY better one.
        let margin = v_pref - v_pref.abs() * threshold;
        if approx_lt(best, margin, eps) {
            return (advanced_decide(scores, old, eps), "clearly-better");
        }
        (preferred, "preferred-holds")
    } else {
        // A non-preferred policy is active. Switching back needs only
        // equal performance *against the active policy*.
        if let Some(v_old) = score_of(scores, old) {
            if approx_le(v_pref, v_old, eps) {
                return (preferred, "switch-back-parity");
            }
        }
        advanced_decide_explained(scores, old, eps)
    }
}

/// A decider selection, carried by experiment configurations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DeciderKind {
    /// The prior-work simple decider.
    Simple,
    /// The fair advanced decider.
    Advanced,
    /// The unfair preferred decider with its preferred policy and
    /// "clearly better" threshold.
    Preferred {
        /// The policy the decider is unfair towards.
        policy: Policy,
        /// Relative margin another policy must beat the preferred one by
        /// while it is active (0 = strictly better).
        threshold: f64,
    },
}

impl DeciderKind {
    /// Applies the decider.
    pub fn decide(self, scores: &[(Policy, f64)], old: Policy, eps: f64) -> Policy {
        self.decide_explained(scores, old, eps).0
    }

    /// Applies the decider and also names the rule that produced the
    /// verdict (for the decision audit trail; the label set is documented
    /// on the `*_decide_explained` functions).
    pub fn decide_explained(
        self,
        scores: &[(Policy, f64)],
        old: Policy,
        eps: f64,
    ) -> (Policy, &'static str) {
        match self {
            DeciderKind::Simple => simple_decide_explained(scores, old, eps),
            DeciderKind::Advanced => advanced_decide_explained(scores, old, eps),
            DeciderKind::Preferred { policy, threshold } => {
                preferred_decide_explained(scores, old, policy, threshold, eps)
            }
        }
    }

    /// Display name, e.g. `"advanced"` or `"SJF-preferred"`.
    pub fn name(self) -> String {
        match self {
            DeciderKind::Simple => "simple".to_string(),
            DeciderKind::Advanced => "advanced".to_string(),
            DeciderKind::Preferred { policy, threshold } => {
                if threshold == 0.0 {
                    format!("{}-preferred", policy.name())
                } else {
                    format!("{}-preferred(th={threshold})", policy.name())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::EPSILON;
    use Policy::{Fcfs, Ljf, Sjf};

    fn scores(f: f64, s: f64, l: f64) -> Vec<(Policy, f64)> {
        vec![(Fcfs, f), (Sjf, s), (Ljf, l)]
    }

    #[test]
    fn simple_picks_strict_minimum() {
        assert_eq!(simple_decide(&scores(3.0, 1.0, 2.0), Fcfs, EPSILON), Sjf);
        assert_eq!(simple_decide(&scores(1.0, 3.0, 2.0), Ljf, EPSILON), Fcfs);
        assert_eq!(simple_decide(&scores(3.0, 2.0, 1.0), Sjf, EPSILON), Ljf);
    }

    #[test]
    fn simple_breaks_ties_towards_fcfs_then_sjf() {
        // All equal → FCFS regardless of old (the Table 1 case-1 flaw).
        assert_eq!(simple_decide(&scores(2.0, 2.0, 2.0), Ljf, EPSILON), Fcfs);
        // SJF = LJF < FCFS → SJF.
        assert_eq!(simple_decide(&scores(3.0, 2.0, 2.0), Ljf, EPSILON), Sjf);
    }

    #[test]
    fn advanced_stays_with_old_on_ties() {
        assert_eq!(advanced_decide(&scores(2.0, 2.0, 2.0), Ljf, EPSILON), Ljf);
        assert_eq!(advanced_decide(&scores(2.0, 2.0, 3.0), Sjf, EPSILON), Sjf);
        // Old not in the argmin → best wins.
        assert_eq!(advanced_decide(&scores(2.0, 1.0, 3.0), Fcfs, EPSILON), Sjf);
    }

    #[test]
    fn preferred_stays_unless_clearly_better() {
        // Preferred SJF active and tied with FCFS → stay on SJF (the
        // simple/advanced deciders would both leave for FCFS here only if
        // FCFS were better; with a tie advanced also stays — the
        // difference shows when SJF is slightly WORSE).
        assert_eq!(
            preferred_decide(&scores(2.0, 2.0, 3.0), Sjf, Sjf, 0.0, EPSILON),
            Sjf
        );
        // FCFS strictly better → with threshold 0 that is "clearly
        // better": leave.
        assert_eq!(
            preferred_decide(&scores(1.9, 2.0, 3.0), Sjf, Sjf, 0.0, EPSILON),
            Fcfs
        );
        // With a 10% threshold a 5% advantage is not clear enough.
        assert_eq!(
            preferred_decide(&scores(1.9, 2.0, 3.0), Sjf, Sjf, 0.10, EPSILON),
            Sjf
        );
        // A 20% advantage is.
        assert_eq!(
            preferred_decide(&scores(1.6, 2.0, 3.0), Sjf, Sjf, 0.10, EPSILON),
            Fcfs
        );
    }

    #[test]
    fn preferred_switches_back_on_equal_performance() {
        // FCFS active; SJF merely EQUAL to FCFS → switch back to SJF.
        assert_eq!(
            preferred_decide(&scores(2.0, 2.0, 3.0), Fcfs, Sjf, 0.0, EPSILON),
            Sjf
        );
        // SJF even slightly worse than the active FCFS → no switch;
        // advanced semantics keep FCFS (it is the argmin).
        assert_eq!(
            preferred_decide(&scores(2.0, 2.1, 3.0), Fcfs, Sjf, 0.0, EPSILON),
            Fcfs
        );
        // SJF worse than active FCFS but LJF best → go to LJF.
        assert_eq!(
            preferred_decide(&scores(2.0, 2.5, 1.0), Fcfs, Sjf, 0.0, EPSILON),
            Ljf
        );
        // SJF beats the ACTIVE policy but a third policy is even better:
        // the paper's rule only requires parity with the active policy,
        // so the preferred policy wins.
        assert_eq!(
            preferred_decide(&scores(2.5, 2.0, 1.8), Fcfs, Sjf, 0.0, EPSILON),
            Sjf
        );
    }

    #[test]
    fn preferred_is_argmin_when_it_ties_the_best() {
        assert_eq!(
            preferred_decide(&scores(2.0, 2.0, 2.0), Ljf, Sjf, 0.0, EPSILON),
            Sjf
        );
    }

    #[test]
    fn preferred_without_candidate_falls_back_to_advanced() {
        let two = vec![(Fcfs, 2.0), (Ljf, 1.0)];
        assert_eq!(preferred_decide(&two, Fcfs, Sjf, 0.0, EPSILON), Ljf);
    }

    #[test]
    fn kinds_dispatch_and_name() {
        let s = scores(2.0, 2.0, 2.0);
        assert_eq!(DeciderKind::Simple.decide(&s, Ljf, EPSILON), Fcfs);
        assert_eq!(DeciderKind::Advanced.decide(&s, Ljf, EPSILON), Ljf);
        let pref = DeciderKind::Preferred {
            policy: Sjf,
            threshold: 0.0,
        };
        assert_eq!(pref.decide(&s, Ljf, EPSILON), Sjf);
        assert_eq!(pref.name(), "SJF-preferred");
        assert_eq!(DeciderKind::Advanced.name(), "advanced");
        assert_eq!(
            DeciderKind::Preferred {
                policy: Fcfs,
                threshold: 0.05
            }
            .name(),
            "FCFS-preferred(th=0.05)"
        );
    }

    #[test]
    fn explained_rules_name_the_branch_taken() {
        // Unique minimum: plain argmin for everyone.
        let s = scores(3.0, 1.0, 2.0);
        assert_eq!(simple_decide_explained(&s, Fcfs, EPSILON), (Sjf, "argmin"));
        assert_eq!(
            advanced_decide_explained(&s, Fcfs, EPSILON),
            (Sjf, "argmin")
        );

        // Three-way tie: the simple decider's flawed tie-break vs the
        // advanced decider's stay rule (Table 1 case 1).
        let tie = scores(2.0, 2.0, 2.0);
        assert_eq!(
            simple_decide_explained(&tie, Ljf, EPSILON),
            (Fcfs, "tie-first-candidate")
        );
        assert_eq!(
            advanced_decide_explained(&tie, Ljf, EPSILON),
            (Ljf, "stay-incumbent-tied")
        );
        // Incumbent out of a tied argmin set → the tie-break fires.
        let pair = scores(2.0, 2.0, 3.0);
        assert_eq!(
            advanced_decide_explained(&pair, Ljf, EPSILON),
            (Fcfs, "tie-first-candidate")
        );

        // Preferred-decider rules.
        assert_eq!(
            preferred_decide_explained(&tie, Ljf, Sjf, 0.0, EPSILON),
            (Sjf, "preferred-best")
        );
        assert_eq!(
            preferred_decide_explained(&scores(1.9, 2.0, 3.0), Sjf, Sjf, 0.10, EPSILON),
            (Sjf, "preferred-holds")
        );
        assert_eq!(
            preferred_decide_explained(&scores(1.6, 2.0, 3.0), Sjf, Sjf, 0.10, EPSILON),
            (Fcfs, "clearly-better")
        );
        assert_eq!(
            preferred_decide_explained(&scores(2.5, 2.0, 1.8), Fcfs, Sjf, 0.0, EPSILON),
            (Sjf, "switch-back-parity")
        );
        let two = vec![(Fcfs, 2.0), (Ljf, 1.0)];
        assert_eq!(
            preferred_decide_explained(&two, Fcfs, Sjf, 0.0, EPSILON),
            (Ljf, "advanced-fallback")
        );
    }

    mod properties {
        use super::*;
        use crate::compare::EPSILON;
        use proptest::prelude::*;

        fn score_of(scores: &[(Policy, f64)], p: Policy) -> f64 {
            scores.iter().find(|&&(q, _)| q == p).unwrap().1
        }

        fn arb_scores() -> impl Strategy<Value = Vec<(Policy, f64)>> {
            // Draw from a small grid so exact ties happen often — the
            // tie cases are where the deciders differ.
            let v = prop_oneof![Just(1.0f64), Just(2.0), Just(3.0), 0.5f64..5.0];
            (v.clone(), v.clone(), v).prop_map(|(f, s, l)| vec![(Fcfs, f), (Sjf, s), (Ljf, l)])
        }

        fn arb_old() -> impl Strategy<Value = Policy> {
            prop_oneof![Just(Fcfs), Just(Sjf), Just(Ljf)]
        }

        proptest! {
            /// No decider ever installs a policy scored worse than the
            /// incumbent: dynP can only keep or improve the planned
            /// metric at each step.
            #[test]
            fn never_worse_than_the_incumbent(
                scores in arb_scores(),
                old in arb_old(),
                threshold in 0.0f64..0.5,
            ) {
                let v_old = score_of(&scores, old);
                for (label, chosen) in [
                    ("simple", simple_decide(&scores, old, EPSILON)),
                    ("advanced", advanced_decide(&scores, old, EPSILON)),
                    (
                        "preferred",
                        preferred_decide(&scores, old, Sjf, threshold, EPSILON),
                    ),
                ] {
                    let v_new = score_of(&scores, chosen);
                    prop_assert!(
                        v_new <= v_old + 1e-9,
                        "{label} switched {old}→{chosen}: {v_old} → {v_new}"
                    );
                }
            }

            /// Simple and advanced always return an argmin policy; they
            /// only differ in WHICH argmin member they pick.
            #[test]
            fn simple_and_advanced_return_argmin(
                scores in arb_scores(),
                old in arb_old(),
            ) {
                let best = scores.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
                for chosen in [
                    simple_decide(&scores, old, EPSILON),
                    advanced_decide(&scores, old, EPSILON),
                ] {
                    prop_assert!(score_of(&scores, chosen) <= best + 1e-9);
                }
            }

            /// The preferred decider with the preferred policy in the
            /// argmin set always returns it, whatever was active.
            #[test]
            fn preferred_takes_ties(
                scores in arb_scores(),
                old in arb_old(),
            ) {
                let best = scores.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
                let chosen = preferred_decide(&scores, old, Sjf, 0.0, EPSILON);
                if (score_of(&scores, Sjf) - best).abs() < 1e-12 {
                    prop_assert_eq!(chosen, Sjf);
                }
            }

            /// Deciders are deterministic and total over their inputs.
            #[test]
            fn decisions_are_deterministic(
                scores in arb_scores(),
                old in arb_old(),
            ) {
                for kind in [
                    DeciderKind::Simple,
                    DeciderKind::Advanced,
                    DeciderKind::Preferred { policy: Sjf, threshold: 0.1 },
                ] {
                    let a = kind.decide(&scores, old, EPSILON);
                    let b = kind.decide(&scores, old, EPSILON);
                    prop_assert_eq!(a, b);
                    prop_assert!(scores.iter().any(|&(p, _)| p == a));
                }
            }
        }
    }

    #[test]
    fn epsilon_ties_are_respected() {
        // Scores differing by round-off count as equal: advanced stays.
        let s = vec![(Fcfs, 0.1 + 0.2), (Sjf, 0.3), (Ljf, 0.5)];
        assert_eq!(advanced_decide(&s, Sjf, EPSILON), Sjf);
        assert_eq!(simple_decide(&s, Sjf, EPSILON), Fcfs);
    }
}
