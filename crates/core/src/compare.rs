//! ε-tolerant comparison of schedule scores.
//!
//! The decision tables of the dynP papers distinguish `<`, `=` and `>`
//! between per-policy metric values. Schedule scores are floating-point
//! sums, so two policies that produce the *same* schedule (common with
//! short queues) must compare equal despite round-off; a relative ε does
//! that.

/// Default relative tolerance for score equality.
pub const EPSILON: f64 = 1e-9;

/// `a == b` up to relative tolerance `eps` (absolute near zero).
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= eps * scale
}

/// `a <= b` up to tolerance: true when `a` is smaller or approximately
/// equal.
pub fn approx_le(a: f64, b: f64, eps: f64) -> bool {
    a < b || approx_eq(a, b, eps)
}

/// `a < b` strictly beyond tolerance: true only when `a` is smaller *and*
/// not approximately equal.
pub fn approx_lt(a: f64, b: f64, eps: f64) -> bool {
    a < b && !approx_eq(a, b, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_compare_as_expected() {
        assert!(approx_eq(1.0, 1.0, EPSILON));
        assert!(!approx_eq(1.0, 2.0, EPSILON));
        assert!(approx_le(1.0, 2.0, EPSILON));
        assert!(approx_le(2.0, 2.0, EPSILON));
        assert!(!approx_le(2.0, 1.0, EPSILON));
        assert!(approx_lt(1.0, 2.0, EPSILON));
        assert!(!approx_lt(2.0, 2.0, EPSILON));
    }

    #[test]
    fn round_off_counts_as_equal() {
        let a = 0.1 + 0.2;
        let b = 0.3;
        assert!(a != b, "premise: binary round-off differs");
        assert!(approx_eq(a, b, EPSILON));
        assert!(!approx_lt(b, a, EPSILON));
    }

    #[test]
    fn tolerance_is_relative_to_magnitude() {
        // 1e9 vs 1e9+1: relative difference 1e-9 → equal at eps 1e-8.
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1e9, 1e9 + 100.0, 1e-9));
        // Near zero the scale floor (1.0) makes the tolerance absolute.
        assert!(approx_eq(0.0, 1e-12, EPSILON));
    }

    #[test]
    fn lt_and_le_are_consistent() {
        for &(a, b) in &[(1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (0.0, 0.0)] {
            assert_eq!(
                approx_lt(a, b, EPSILON),
                approx_le(a, b, EPSILON) && !approx_eq(a, b, EPSILON)
            );
        }
    }
}
