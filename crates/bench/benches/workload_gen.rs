//! Benchmarks synthetic workload generation and the shrinking-factor
//! transform — the setup cost of every experiment run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_workload::{traces, transform};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    for model in traces::standard_models() {
        group.bench_with_input(
            BenchmarkId::new("jobs_2000", &model.name),
            &model,
            |b, m| b.iter(|| black_box(m.generate(2_000, black_box(42)))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("transform");
    let set = traces::ctc().generate(10_000, 42);
    group.bench_function("shrink_10k", |b| {
        b.iter(|| black_box(transform::shrink(black_box(&set), 0.7)))
    });
    group.bench_function("stats_10k", |b| {
        b.iter(|| black_box(dynp_workload::TraceStats::measure(black_box(&set))))
    });
    group.finish();

    let mut group = c.benchmark_group("swf");
    let set = traces::sdsc().generate(5_000, 9);
    group.bench_function("write_5k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(512 * 1024);
            dynp_workload::swf::write_swf(black_box(&set), &mut buf).unwrap();
            black_box(buf)
        })
    });
    let mut swf_bytes = Vec::new();
    dynp_workload::swf::write_swf(&set, &mut swf_bytes).unwrap();
    group.bench_function("read_5k", |b| {
        b.iter(|| {
            black_box(
                dynp_workload::swf::read_swf(
                    std::io::BufReader::new(black_box(swf_bytes.as_slice())),
                    "bench",
                    128,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
