//! End-to-end simulation benchmarks: whole job sets through the event
//! loop, for the static baseline and the self-tuning dynP scheduler —
//! per-table cost estimates for the experiment binaries.
//!
//! One bench per paper artifact family:
//! * `table4_cell` — one static-policy run (Figures 1–2 / Table 4 cell),
//! * `table5_cell` — one dynP run (Figures 3–4 / Table 5 cell),
//! * `table1` — the full decision-table analysis (exact, no simulation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::bench_workload;
use dynp_core::DeciderKind;
use dynp_rms::Policy;
use dynp_sim::{simulate, SchedulerSpec};
use dynp_workload::transform;

fn bench_end_to_end(c: &mut Criterion) {
    let base = bench_workload(600);
    let set = transform::shrink(&base, 0.8);

    let mut group = c.benchmark_group("simulate_600_jobs");
    group.sample_size(10);
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::Ljf] {
        group.bench_with_input(
            BenchmarkId::new("table4_cell", policy.name()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut s = SchedulerSpec::Static(p).build();
                    black_box(simulate(black_box(&set), s.as_mut()))
                })
            },
        );
    }
    for (label, decider) in [
        ("advanced", DeciderKind::Advanced),
        (
            "sjf_preferred",
            DeciderKind::Preferred {
                policy: Policy::Sjf,
                threshold: 0.0,
            },
        ),
        ("simple", DeciderKind::Simple),
    ] {
        group.bench_with_input(BenchmarkId::new("table5_cell", label), &decider, |b, &d| {
            b.iter(|| {
                let mut s = SchedulerSpec::dynp(d).build();
                black_box(simulate(black_box(&set), s.as_mut()))
            })
        });
    }
    // The incremental replanning engine against its from-scratch
    // reference: both produce bit-identical runs, the gap is pure
    // scheduling overhead.
    for (label, reference) in [("incremental", false), ("reference", true)] {
        group.bench_with_input(
            BenchmarkId::new("dynp_engine", label),
            &reference,
            |b, &reference| {
                b.iter(|| {
                    let mut s = dynp_core::SelfTuningScheduler::new(dynp_core::DynPConfig::paper(
                        DeciderKind::Advanced,
                    ));
                    s.set_reference_mode(reference);
                    black_box(simulate(black_box(&set), &mut s))
                })
            },
        );
    }
    group.finish();

    c.bench_function("table1_analysis", |b| {
        b.iter(|| black_box(dynp_core::table1::render_table1()))
    });
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
