//! Benchmarks the two pending-event-set backends of `dynp-des`: the
//! binary heap default and the calendar queue, under a hold-model
//! workload (the classic event-queue benchmark: steady-state push/pop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_des::{BinaryHeapQueue, CalendarQueue, EventQueue, SimTime};

/// One "hold" operation: pop the earliest event and push a replacement a
/// pseudo-random offset in the future.
fn hold<Q: EventQueue<u64>>(queue: &mut Q, n_ops: usize) {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..n_ops {
        let (t, e) = queue.pop().expect("queue never drains in hold model");
        // xorshift offset in [1, 65536] ms
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let offset = (state & 0xFFFF) + 1;
        queue.push(SimTime::from_millis(t.as_millis() + offset), e);
    }
}

fn prefill<Q: EventQueue<u64>>(queue: &mut Q, population: usize) {
    let mut state = 0x0BAD_F00Du64;
    for i in 0..population {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        queue.push(SimTime::from_millis(state & 0xFFFFF), i as u64);
    }
}

fn bench_event_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for &population in &[64usize, 1_024, 16_384] {
        group.bench_with_input(
            BenchmarkId::new("binary_heap", population),
            &population,
            |b, &n| {
                let mut q = BinaryHeapQueue::new();
                prefill(&mut q, n);
                b.iter(|| hold(black_box(&mut q), 256));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("calendar", population),
            &population,
            |b, &n| {
                let mut q = CalendarQueue::new();
                prefill(&mut q, n);
                b.iter(|| hold(black_box(&mut q), 256));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queues);
criterion_main!(benches);
