//! Benchmarks the free-capacity profile of `dynp-rms`: earliest-fit
//! search and allocation at different reservation densities — the inner
//! loop of every planning step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_des::{SimDuration, SimTime};
use dynp_rms::Profile;

/// Builds a profile with `n` staggered reservations (width 3 of 32).
fn crowded_profile(n: usize) -> Profile {
    let mut p = Profile::new(32, SimTime::ZERO);
    for i in 0..n {
        let start = SimTime::from_secs((i as u64) * 50);
        p.allocate(start, SimDuration::from_secs(400), 3);
    }
    p
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile");
    for &n in &[16usize, 128, 1_024] {
        let p = crowded_profile(n);
        group.bench_with_input(BenchmarkId::new("earliest_fit", n), &n, |b, _| {
            b.iter(|| {
                black_box(p.earliest_fit(
                    black_box(SimTime::ZERO),
                    SimDuration::from_secs(300),
                    black_box(30),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("allocate_earliest", n), &n, |b, _| {
            b.iter_batched(
                || p.clone(),
                |mut p| {
                    black_box(p.allocate_earliest(SimTime::ZERO, SimDuration::from_secs(300), 30))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("reset_reuse", |b| {
        let mut p = crowded_profile(256);
        b.iter(|| {
            p.reset(32, SimTime::ZERO);
            p.allocate(SimTime::ZERO, SimDuration::from_secs(10), 32);
            black_box(p.free_at(SimTime::from_secs(5)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
