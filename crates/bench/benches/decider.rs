//! Benchmarks one complete self-tuning dynP step (plan per policy →
//! score → decide) against a single static replan, at several queue
//! depths: the cost of policy switching itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::bench_model;
use dynp_core::{DeciderKind, DynPConfig, SelfTuningScheduler};
use dynp_des::SimTime;
use dynp_rms::{Policy, ReplanReason, RmsState, Scheduler, StaticScheduler};

fn state_with_queue(depth: usize) -> RmsState {
    let jobs = bench_model().generate(depth, 11).into_jobs();
    let mut state = RmsState::new(100);
    for job in jobs {
        state.submit(job);
    }
    state
}

fn bench_decider_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan_step");
    for &depth in &[16usize, 128, 512] {
        let state = state_with_queue(depth);
        let now = SimTime::from_secs(1_000_000);

        group.bench_with_input(BenchmarkId::new("static_sjf", depth), &depth, |b, _| {
            let mut s = StaticScheduler::new(Policy::Sjf);
            b.iter(|| black_box(s.replan(&state, now, ReplanReason::Submission)))
        });
        group.bench_with_input(BenchmarkId::new("dynp_advanced", depth), &depth, |b, _| {
            let mut s = SelfTuningScheduler::new(DynPConfig::paper(DeciderKind::Advanced));
            b.iter(|| black_box(s.replan(&state, now, ReplanReason::Submission)))
        });
        group.bench_with_input(
            BenchmarkId::new("dynp_sjf_preferred", depth),
            &depth,
            |b, _| {
                let mut s = SelfTuningScheduler::new(DynPConfig::paper(DeciderKind::Preferred {
                    policy: Policy::Sjf,
                    threshold: 0.0,
                }));
                b.iter(|| black_box(s.replan(&state, now, ReplanReason::Submission)))
            },
        );
    }
    group.finish();

    // The pure decision functions (no planning) — nanosecond territory.
    let mut group = c.benchmark_group("decide_only");
    let scores = vec![
        (Policy::Fcfs, 3.5),
        (Policy::Sjf, 2.71),
        (Policy::Ljf, 2.71),
    ];
    group.bench_function("simple", |b| {
        b.iter(|| {
            black_box(dynp_core::simple_decide(
                black_box(&scores),
                Policy::Ljf,
                1e-9,
            ))
        })
    });
    group.bench_function("advanced", |b| {
        b.iter(|| {
            black_box(dynp_core::advanced_decide(
                black_box(&scores),
                Policy::Ljf,
                1e-9,
            ))
        })
    });
    group.bench_function("preferred", |b| {
        b.iter(|| {
            black_box(dynp_core::preferred_decide(
                black_box(&scores),
                Policy::Ljf,
                Policy::Sjf,
                0.0,
                1e-9,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decider_step);
criterion_main!(benches);
