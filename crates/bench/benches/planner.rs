//! Benchmarks full-schedule construction: how planning cost scales with
//! the waiting-queue depth — the quantity that dominates dynP's overhead
//! (three plans per scheduling event).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::bench_model;
use dynp_des::SimTime;
use dynp_rms::{Planner, Policy};
use dynp_workload::Job;

fn queue_of(depth: usize) -> Vec<Job> {
    // Draw realistic jobs from the KTH model (small machine → deep
    // queues in the real experiments).
    bench_model().generate(depth, 7).into_jobs()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_plan");
    for &depth in &[8usize, 64, 256, 1_024] {
        let queue = queue_of(depth);
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Ljf] {
            let mut sorted = queue.clone();
            policy.sort_queue(&mut sorted);
            group.bench_with_input(
                BenchmarkId::new(policy.name(), depth),
                &depth,
                |b, _| {
                    let mut planner = Planner::new();
                    b.iter(|| {
                        black_box(planner.plan(
                            100,
                            SimTime::ZERO,
                            &[],
                            black_box(&sorted),
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    // The queue sort itself, separated out.
    let mut group = c.benchmark_group("policy_sort");
    let queue = queue_of(1_024);
    for policy in Policy::ALL {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || queue.clone(),
                |mut q| {
                    policy.sort_queue(&mut q);
                    black_box(q)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
