//! Benchmarks full-schedule construction: how planning cost scales with
//! the waiting-queue depth — the quantity that dominates dynP's overhead
//! (three plans per scheduling event).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::bench_model;
use dynp_des::{SimDuration, SimTime};
use dynp_rms::{PlanTiming, Planner, Policy, ReferencePlanner, RunningJob};
use dynp_workload::Job;

fn queue_of(depth: usize) -> Vec<Job> {
    // Draw realistic jobs from the KTH model (small machine → deep
    // queues in the real experiments).
    bench_model().generate(depth, 7).into_jobs()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_plan");
    for &depth in &[8usize, 64, 256, 1_024] {
        let queue = queue_of(depth);
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Ljf] {
            let mut sorted = queue.clone();
            policy.sort_queue(&mut sorted);
            group.bench_with_input(BenchmarkId::new(policy.name(), depth), &depth, |b, _| {
                let mut planner = Planner::new();
                b.iter(|| black_box(planner.plan(100, SimTime::ZERO, &[], black_box(&sorted))))
            });
        }
    }
    group.finish();

    // One full self-tuning planning step (3 policies over the same base
    // profile): the incremental engine (one prepare + watermark-restored
    // plans) against the from-scratch reference.
    let mut group = c.benchmark_group("planning_step_3policy");
    for &depth in &[64usize, 256] {
        let queue: Vec<Job> = queue_of(depth)
            .into_iter()
            .map(|mut j| {
                j.submit = SimTime::ZERO;
                j
            })
            .collect();
        let running: Vec<RunningJob> = (0..32u64)
            .map(|i| RunningJob {
                job: Job::new(
                    dynp_workload::JobId(10_000 + i as u32),
                    SimTime::ZERO,
                    (i as u32 % 3) + 1,
                    SimDuration::from_secs(500 + 13 * i),
                    SimDuration::from_secs(500 + 13 * i),
                ),
                start: SimTime::ZERO,
            })
            .collect();
        let machine = 128u32;
        let now = SimTime::from_secs(1);
        let orders: Vec<Vec<Job>> = Policy::BASIC
            .iter()
            .map(|p| {
                let mut q = queue.clone();
                p.sort_queue(&mut q);
                q
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("incremental", depth), &depth, |b, _| {
            let mut planner = Planner::new();
            let mut plans = vec![Default::default(); Policy::BASIC.len()];
            b.iter(|| {
                planner.prepare(machine, now, &running, &[]);
                for (order, out) in orders.iter().zip(plans.iter_mut()) {
                    planner.plan_prepared_into(order, out);
                }
                black_box(&plans);
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", depth), &depth, |b, _| {
            let mut planner = ReferencePlanner::new();
            let mut queue_buf: Vec<Job> = Vec::new();
            b.iter(|| {
                for policy in Policy::BASIC {
                    queue_buf.clear();
                    queue_buf.extend_from_slice(&queue);
                    policy.sort_queue(&mut queue_buf);
                    black_box(planner.plan(machine, now, &running, &queue_buf));
                }
            })
        });
    }
    group.finish();

    // Deep queues through the batched fan-out entry point (the call the
    // self-tuning step actually makes) — where the capacity-indexed
    // profile has to stay sublinear. Bounded sample size: the reference
    // side re-plans from scratch and is quadratic at these depths.
    let mut group = c.benchmark_group("planning_step_3policy_deep");
    group.sample_size(10);
    for &depth in &[4_096usize, 16_384] {
        let queue: Vec<Job> = queue_of(depth)
            .into_iter()
            .map(|mut j| {
                j.submit = SimTime::ZERO;
                j
            })
            .collect();
        let running: Vec<RunningJob> = (0..64u64)
            .map(|i| RunningJob {
                job: Job::new(
                    dynp_workload::JobId(10_000 + i as u32),
                    SimTime::ZERO,
                    (i as u32 % 3) + 1,
                    SimDuration::from_secs(500 + 13 * i),
                    SimDuration::from_secs(500 + 13 * i),
                ),
                start: SimTime::ZERO,
            })
            .collect();
        let machine = 256u32;
        let now = SimTime::from_secs(1);
        let orders: Vec<Vec<Job>> = Policy::BASIC
            .iter()
            .map(|p| {
                let mut q = queue.clone();
                p.sort_queue(&mut q);
                q
            })
            .collect();
        for workers in [1usize, 2] {
            let label = format!("incremental_batch_w{workers}");
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                let mut planner = Planner::new();
                let mut plans = vec![Default::default(); Policy::BASIC.len()];
                let mut timings = vec![PlanTiming::default(); Policy::BASIC.len()];
                b.iter(|| {
                    planner.prepare(machine, now, &running, &[]);
                    planner.plan_prepared_batch(&orders, &mut plans, &mut timings, workers);
                    black_box(&plans);
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("reference", depth), &depth, |b, _| {
            let mut planner = ReferencePlanner::new();
            let mut queue_buf: Vec<Job> = Vec::new();
            b.iter(|| {
                for policy in Policy::BASIC {
                    queue_buf.clear();
                    queue_buf.extend_from_slice(&queue);
                    policy.sort_queue(&mut queue_buf);
                    black_box(planner.plan(machine, now, &running, &queue_buf));
                }
            })
        });
    }
    group.finish();

    // The queue sort itself, separated out.
    let mut group = c.benchmark_group("policy_sort");
    let queue = queue_of(1_024);
    for policy in Policy::ALL {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || queue.clone(),
                |mut q| {
                    policy.sort_queue(&mut q);
                    black_box(q)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
