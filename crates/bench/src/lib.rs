//! # dynp-bench — benchmark support
//!
//! The Criterion benchmarks live in `benches/`; this library only hosts
//! small shared fixtures so every bench file measures the same inputs.

use dynp_workload::{JobSet, TraceModel};

/// A deterministic mid-size CTC workload used by several benches.
pub fn bench_workload(jobs: usize) -> JobSet {
    dynp_workload::traces::ctc().generate(jobs, 0xBEEF)
}

/// A deterministic KTH model (small machine → deeper queues) for
/// planner-scaling benches.
pub fn bench_model() -> TraceModel {
    dynp_workload::traces::kth()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_workload(100);
        let b = bench_workload(100);
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(bench_model().name, "KTH");
    }
}
