//! Feasibility-checked admission of advance-reservation requests.
//!
//! A planning-based RMS can answer a reservation request *exactly*,
//! because it already holds a full schedule: the request is admitted iff
//! the planner can build a schedule that (a) honors every previously
//! admitted window without overcommitting the machine and (b) does not
//! push any already-planned job start past its promised time. Both halves
//! reuse the incremental planner — the capacity check reads the shared
//! base profile ([`crate::Planner::window_fits`]), the guarantee check
//! replans the waiting queue once with the candidate window blocked out
//! and compares promised starts entry by entry.
//!
//! "Promised time" is the job's planned start in the current schedule
//! under the scheduler's active policy, plus the configurable
//! [`AdmissionConfig::guarantee_slack`]. With zero slack (the default) an
//! admitted window may never delay any planned start at all; a positive
//! slack trades batch-job punctuality for a higher acceptance rate.
//!
//! The decision is a pure function of the RMS state, the active policy
//! and the request — identical inputs give identical verdicts, so
//! rejection is deterministic and replayable.

use crate::planner::Planner;
use crate::policy::Policy;
use crate::reservation::Reservation;
use crate::schedule::Schedule;
use crate::state::RmsState;
use dynp_des::{SimDuration, SimTime};
use dynp_obs::Tracer;
use dynp_workload::Job;
use serde::{Deserialize, Serialize};

/// Why a reservation request was turned down.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Zero width, or wider than the machine.
    InvalidWidth,
    /// The window is empty or starts before the decision instant —
    /// advance reservations must lie in the future.
    InPast,
    /// Honoring the window alongside the running jobs and the already
    /// admitted reservations would overcommit the machine.
    NoCapacity,
    /// The window fits, but planning around it would push an
    /// already-promised job start past its guarantee.
    BreaksGuarantee,
}

impl RejectReason {
    /// Short display label (for logs and reports).
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::InvalidWidth => "invalid-width",
            RejectReason::InPast => "in-past",
            RejectReason::NoCapacity => "no-capacity",
            RejectReason::BreaksGuarantee => "breaks-guarantee",
        }
    }
}

/// Admission parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// How far an admitted window may push a currently planned job start
    /// past its promised time. Zero (the default) means admission must
    /// leave every promised start untouched.
    pub guarantee_slack: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            guarantee_slack: SimDuration::ZERO,
        }
    }
}

/// The admission controller: owns its own planner (so feasibility probes
/// never disturb the scheduler's prepared state) and reusable buffers, and
/// evaluates one request at a time against the live RMS state.
#[derive(Debug, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
    planner: Planner,
    queue_buf: Vec<Job>,
    trial_book: Vec<Reservation>,
    baseline: Schedule,
    trial: Schedule,
    tracer: Tracer,
}

impl AdmissionController {
    /// Creates a controller with the given parameters.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            ..Default::default()
        }
    }

    /// The admission parameters in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Installs an observability tracer; each [`evaluate`]
    /// (feasibility probe + guarantee replan) is then measured as an
    /// `"admission"` wall-clock span.
    ///
    /// [`evaluate`]: AdmissionController::evaluate
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.planner.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Decides one reservation request for the window
    /// `[start, start + duration)` of `width` processors at decision
    /// instant `now`. `policy` is the scheduler's active policy — the
    /// order under which the waiting queue's promised starts are read.
    ///
    /// Returns `Ok(())` when the request is admissible; the caller then
    /// records it via [`RmsState::admit_reservation`]. On `Err` the state
    /// is untouched and the reason says which feasibility half failed.
    pub fn evaluate(
        &mut self,
        state: &RmsState,
        now: SimTime,
        policy: Policy,
        start: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> Result<(), RejectReason> {
        let _span = self.tracer.span(now, "admission");
        // Width is judged against the *currently usable* machine: while
        // nodes are down, a window as wide as the nominal machine cannot
        // be guaranteed.
        if width == 0 || width > state.plan_capacity() {
            return Err(RejectReason::InvalidWidth);
        }
        if duration.is_zero() || start < now {
            return Err(RejectReason::InPast);
        }

        // Capacity: the window must fit the base profile (running jobs +
        // already admitted windows) as-is — admitted reservations are
        // guarantees and can never be displaced by a newcomer.
        self.planner.prepare(
            state.plan_capacity(),
            now,
            state.running(),
            state.reservation_slice(),
        );
        if !self.planner.window_fits(start, duration, width) {
            return Err(RejectReason::NoCapacity);
        }

        // Guarantees: replan the waiting queue with the candidate blocked
        // out and compare promised starts. An empty queue has nothing to
        // promise.
        if state.waiting().is_empty() {
            return Ok(());
        }
        self.queue_buf.clear();
        self.queue_buf.extend_from_slice(state.waiting());
        policy.sort_queue(&mut self.queue_buf);
        self.planner
            .plan_prepared_into(&self.queue_buf, &mut self.baseline);

        self.trial_book.clear();
        self.trial_book.extend_from_slice(state.reservation_slice());
        self.trial_book.push(Reservation {
            id: u32::MAX, // probe id; never enters the book
            start,
            duration,
            width,
        });
        self.planner.prepare(
            state.plan_capacity(),
            now,
            state.running(),
            &self.trial_book,
        );
        self.planner
            .plan_prepared_into(&self.queue_buf, &mut self.trial);

        // Same sorted queue in both plans, so entries align by index.
        for (promised, shifted) in self.baseline.entries.iter().zip(&self.trial.entries) {
            debug_assert_eq!(promised.job.id, shifted.job.id);
            if shifted.start > promised.start.saturating_add(self.config.guarantee_slack) {
                return Err(RejectReason::BreaksGuarantee);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    fn controller() -> AdmissionController {
        AdmissionController::new(AdmissionConfig::default())
    }

    #[test]
    fn rejects_invalid_and_past_windows() {
        let state = RmsState::new(4);
        let mut adm = controller();
        let now = t(100);
        assert_eq!(
            adm.evaluate(&state, now, Policy::Fcfs, t(200), d(10), 0),
            Err(RejectReason::InvalidWidth)
        );
        assert_eq!(
            adm.evaluate(&state, now, Policy::Fcfs, t(200), d(10), 5),
            Err(RejectReason::InvalidWidth)
        );
        assert_eq!(
            adm.evaluate(&state, now, Policy::Fcfs, t(50), d(10), 2),
            Err(RejectReason::InPast)
        );
        assert_eq!(
            adm.evaluate(&state, now, Policy::Fcfs, t(200), SimDuration::ZERO, 2),
            Err(RejectReason::InPast)
        );
    }

    #[test]
    fn admits_on_an_idle_machine() {
        let state = RmsState::new(4);
        let mut adm = controller();
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(100), d(50), 4),
            Ok(())
        );
    }

    #[test]
    fn rejects_overcommit_against_admitted_windows() {
        let mut state = RmsState::new(4);
        state.admit_reservation(t(100), d(100), 3);
        let mut adm = controller();
        // One processor left over [100, 200).
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(120), d(30), 1),
            Ok(())
        );
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(120), d(30), 2),
            Err(RejectReason::NoCapacity)
        );
    }

    #[test]
    fn rejects_overcommit_against_running_jobs() {
        let mut state = RmsState::new(4);
        state.submit(j(0, 0, 3, 100));
        state.start(JobId(0), t(0));
        let mut adm = controller();
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(50), d(10), 2),
            Err(RejectReason::NoCapacity)
        );
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(100), d(10), 4),
            Ok(())
        );
    }

    #[test]
    fn rejects_windows_that_delay_promised_starts() {
        // Machine 4, idle; one waiting full-width job promised to start
        // now. Any window overlapping its run pushes it — rejected with
        // zero slack, admitted once the slack covers the shift.
        let mut state = RmsState::new(4);
        state.submit(j(0, 0, 4, 100));
        let mut adm = controller();
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(50), d(20), 1),
            Err(RejectReason::BreaksGuarantee)
        );
        // Behind the promised run: harmless.
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(100), d(20), 4),
            Ok(())
        );
        // With enough slack the same delaying window becomes admissible:
        // the job is pushed from 0 to 70 (window end), within 120 s.
        let mut lax = AdmissionController::new(AdmissionConfig {
            guarantee_slack: SimDuration::from_secs(120),
        });
        assert_eq!(
            lax.evaluate(&state, t(0), Policy::Fcfs, t(50), d(20), 1),
            Ok(())
        );
    }

    #[test]
    fn guarantees_are_read_under_the_active_policy_order() {
        // Two jobs contending for a machine of 2; SJF promises the short
        // one first. A window that delays only the *later* (long) job's
        // promised start under SJF must be judged against SJF's order.
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 1_000)); // long, submitted first
        state.submit(j(1, 0, 2, 10)); // short
        let mut adm = controller();
        // Under SJF: short at 0, long at 10. A window at [5, 8) delays
        // the short job under SJF → reject.
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Sjf, t(5), d(3), 2),
            Err(RejectReason::BreaksGuarantee)
        );
        // Under FCFS the same window lands inside the long job's run and
        // delays it → also rejected, but the probed plans differ; a
        // window after FCFS's makespan but inside SJF's tail shows the
        // order matters.
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Fcfs, t(1_005), d(3), 2),
            Err(RejectReason::BreaksGuarantee)
        );
        assert_eq!(
            adm.evaluate(&state, t(0), Policy::Sjf, t(1_010), d(3), 2),
            Ok(())
        );
    }

    #[test]
    fn verdicts_are_deterministic() {
        let mut state = RmsState::new(8);
        for i in 0..5 {
            state.submit(j(i, 0, (i % 3) + 1, 100 * (i as u64 + 1)));
        }
        state.admit_reservation(t(500), d(200), 4);
        let mut a = controller();
        let mut b = controller();
        for probe in 0..20u64 {
            let start = t(50 * probe);
            let va = a.evaluate(&state, t(0), Policy::Sjf, start, d(150), 3);
            let vb = b.evaluate(&state, t(0), Policy::Sjf, start, d(150), 3);
            assert_eq!(va, vb, "probe {probe}");
        }
    }
}
