//! Queue-ordering scheduling policies.
//!
//! The paper's CCS implements FCFS, SJF and LJF; the self-tuning dynP
//! scheduler switches among them. The SAF/LAF area-based variants are an
//! extension of this reproduction showing the framework is policy-
//! agnostic (they take part in ablation experiments only).
//!
//! A policy is nothing more than an ordering of the waiting queue — the
//! planner then assigns each job, in that order, the earliest feasible
//! start time (implicit backfilling).

use dynp_workload::Job;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduling policy: a total order on waiting jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First come, first serve — order of submission.
    Fcfs,
    /// Shortest job first — ascending estimated run time. Preferred by
    /// interactive users; reduces average wait time.
    Sjf,
    /// Longest job first — descending estimated run time. Binds resources
    /// long, reduces fragmentation, increases utilization and throughput.
    Ljf,
    /// Smallest area first — ascending estimated area (extension).
    Saf,
    /// Largest area first — descending estimated area (extension).
    Laf,
}

impl Policy {
    /// The three basic policies of the paper, in its canonical order.
    pub const BASIC: [Policy; 3] = [Policy::Fcfs, Policy::Sjf, Policy::Ljf];

    /// All implemented policies (basic + extensions).
    pub const ALL: [Policy; 5] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Ljf,
        Policy::Saf,
        Policy::Laf,
    ];

    /// Short display name matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::Ljf => "LJF",
            Policy::Saf => "SAF",
            Policy::Laf => "LAF",
        }
    }

    /// Parses a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_uppercase().as_str() {
            "FCFS" => Some(Policy::Fcfs),
            "SJF" => Some(Policy::Sjf),
            "LJF" => Some(Policy::Ljf),
            "SAF" => Some(Policy::Saf),
            "LAF" => Some(Policy::Laf),
            _ => None,
        }
    }

    /// Sorts `queue` into this policy's order. All orders fall back to
    /// FCFS (submission time, then id) on ties, so every policy is a
    /// total, deterministic order.
    pub fn sort_queue(self, queue: &mut [Job]) {
        match self {
            Policy::Fcfs => queue.sort_by_key(|j| (j.submit, j.id)),
            Policy::Sjf => queue.sort_by_key(|j| (j.estimate, j.submit, j.id)),
            Policy::Ljf => {
                queue.sort_by_key(|j| (std::cmp::Reverse(j.estimate), j.submit, j.id))
            }
            Policy::Saf => queue.sort_by(|a, b| {
                a.estimated_area()
                    .total_cmp(&b.estimated_area())
                    .then_with(|| (a.submit, a.id).cmp(&(b.submit, b.id)))
            }),
            Policy::Laf => queue.sort_by(|a, b| {
                b.estimated_area()
                    .total_cmp(&a.estimated_area())
                    .then_with(|| (a.submit, a.id).cmp(&(b.submit, b.id)))
            }),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::{SimDuration, SimTime};
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn ids(queue: &[Job]) -> Vec<u32> {
        queue.iter().map(|x| x.id.0).collect()
    }

    #[test]
    fn fcfs_orders_by_submission() {
        let mut q = vec![j(0, 30, 1, 10), j(1, 10, 1, 99), j(2, 20, 1, 50)];
        Policy::Fcfs.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn sjf_orders_by_estimate_ascending() {
        let mut q = vec![j(0, 0, 1, 300), j(1, 10, 1, 100), j(2, 20, 1, 200)];
        Policy::Sjf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn ljf_orders_by_estimate_descending() {
        let mut q = vec![j(0, 0, 1, 300), j(1, 10, 1, 100), j(2, 20, 1, 200)];
        Policy::Ljf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![0, 2, 1]);
    }

    #[test]
    fn ties_fall_back_to_fcfs_order() {
        let mut q = vec![j(5, 40, 1, 100), j(1, 10, 1, 100), j(3, 20, 1, 100)];
        Policy::Sjf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 3, 5]);
        Policy::Ljf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 3, 5]);
    }

    #[test]
    fn saf_and_laf_use_area() {
        // Areas: j0 = 4×100 = 400, j1 = 1×300 = 300, j2 = 2×175 = 350.
        let mut q = vec![j(0, 0, 4, 100), j(1, 10, 1, 300), j(2, 20, 2, 175)];
        Policy::Saf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
        Policy::Laf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![0, 2, 1]);
    }

    #[test]
    fn names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert_eq!(Policy::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn basic_is_the_papers_triple() {
        assert_eq!(
            Policy::BASIC.map(|p| p.name()),
            ["FCFS", "SJF", "LJF"]
        );
    }
}
