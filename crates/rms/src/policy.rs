//! Queue-ordering scheduling policies.
//!
//! The paper's CCS implements FCFS, SJF and LJF; the self-tuning dynP
//! scheduler switches among them. The SAF/LAF area-based variants are an
//! extension of this reproduction showing the framework is policy-
//! agnostic (they take part in ablation experiments only).
//!
//! A policy is nothing more than an ordering of the waiting queue — the
//! planner then assigns each job, in that order, the earliest feasible
//! start time (implicit backfilling).

use dynp_workload::Job;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduling policy: a total order on waiting jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First come, first serve — order of submission.
    Fcfs,
    /// Shortest job first — ascending estimated run time. Preferred by
    /// interactive users; reduces average wait time.
    Sjf,
    /// Longest job first — descending estimated run time. Binds resources
    /// long, reduces fragmentation, increases utilization and throughput.
    Ljf,
    /// Smallest area first — ascending estimated area (extension).
    Saf,
    /// Largest area first — descending estimated area (extension).
    Laf,
}

impl Policy {
    /// The three basic policies of the paper, in its canonical order.
    pub const BASIC: [Policy; 3] = [Policy::Fcfs, Policy::Sjf, Policy::Ljf];

    /// All implemented policies (basic + extensions).
    pub const ALL: [Policy; 5] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Ljf,
        Policy::Saf,
        Policy::Laf,
    ];

    /// Short display name matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::Ljf => "LJF",
            Policy::Saf => "SAF",
            Policy::Laf => "LAF",
        }
    }

    /// Parses a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_uppercase().as_str() {
            "FCFS" => Some(Policy::Fcfs),
            "SJF" => Some(Policy::Sjf),
            "LJF" => Some(Policy::Ljf),
            "SAF" => Some(Policy::Saf),
            "LAF" => Some(Policy::Laf),
            _ => None,
        }
    }

    /// Dense index of this policy in [`Policy::ALL`]; lets per-policy
    /// counters live in a fixed array instead of a string-keyed map.
    pub fn index(self) -> usize {
        match self {
            Policy::Fcfs => 0,
            Policy::Sjf => 1,
            Policy::Ljf => 2,
            Policy::Saf => 3,
            Policy::Laf => 4,
        }
    }

    /// Number of policies (the valid range of [`Policy::index`]).
    pub const COUNT: usize = Policy::ALL.len();

    /// This policy's total order on jobs: the comparator behind
    /// [`Policy::sort_queue`], exposed so callers can maintain sorted
    /// queue views incrementally (binary insertion and removal) with
    /// exactly the order a full sort would produce. All orders fall back
    /// to FCFS (submission time, then id) on ties; the unique id makes
    /// every order total and deterministic.
    pub fn cmp_jobs(self, a: &Job, b: &Job) -> std::cmp::Ordering {
        match self {
            Policy::Fcfs => (a.submit, a.id).cmp(&(b.submit, b.id)),
            Policy::Sjf => (a.estimate, a.submit, a.id).cmp(&(b.estimate, b.submit, b.id)),
            Policy::Ljf => (std::cmp::Reverse(a.estimate), a.submit, a.id).cmp(&(
                std::cmp::Reverse(b.estimate),
                b.submit,
                b.id,
            )),
            Policy::Saf => a
                .estimated_area()
                .total_cmp(&b.estimated_area())
                .then_with(|| (a.submit, a.id).cmp(&(b.submit, b.id))),
            Policy::Laf => b
                .estimated_area()
                .total_cmp(&a.estimated_area())
                .then_with(|| (a.submit, a.id).cmp(&(b.submit, b.id))),
        }
    }

    /// Sorts `queue` into this policy's order (see [`Policy::cmp_jobs`]).
    pub fn sort_queue(self, queue: &mut [Job]) {
        queue.sort_by(|a, b| self.cmp_jobs(a, b));
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::{SimDuration, SimTime};
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn ids(queue: &[Job]) -> Vec<u32> {
        queue.iter().map(|x| x.id.0).collect()
    }

    #[test]
    fn fcfs_orders_by_submission() {
        let mut q = vec![j(0, 30, 1, 10), j(1, 10, 1, 99), j(2, 20, 1, 50)];
        Policy::Fcfs.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn sjf_orders_by_estimate_ascending() {
        let mut q = vec![j(0, 0, 1, 300), j(1, 10, 1, 100), j(2, 20, 1, 200)];
        Policy::Sjf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn ljf_orders_by_estimate_descending() {
        let mut q = vec![j(0, 0, 1, 300), j(1, 10, 1, 100), j(2, 20, 1, 200)];
        Policy::Ljf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![0, 2, 1]);
    }

    #[test]
    fn ties_fall_back_to_fcfs_order() {
        let mut q = vec![j(5, 40, 1, 100), j(1, 10, 1, 100), j(3, 20, 1, 100)];
        Policy::Sjf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 3, 5]);
        Policy::Ljf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 3, 5]);
    }

    #[test]
    fn saf_and_laf_use_area() {
        // Areas: j0 = 4×100 = 400, j1 = 1×300 = 300, j2 = 2×175 = 350.
        let mut q = vec![j(0, 0, 4, 100), j(1, 10, 1, 300), j(2, 20, 2, 175)];
        Policy::Saf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![1, 2, 0]);
        Policy::Laf.sort_queue(&mut q);
        assert_eq!(ids(&q), vec![0, 2, 1]);
    }

    #[test]
    fn names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert_eq!(Policy::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn basic_is_the_papers_triple() {
        assert_eq!(Policy::BASIC.map(|p| p.name()), ["FCFS", "SJF", "LJF"]);
    }

    #[test]
    fn index_matches_position_in_all() {
        for (i, p) in Policy::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Policy::COUNT, Policy::ALL.len());
    }

    #[test]
    fn cmp_jobs_is_the_sort_order() {
        // Widths/areas picked to make SAF/LAF disagree with SJF/LJF and
        // to include estimate and submit ties.
        let jobs = vec![
            j(0, 30, 4, 100),
            j(1, 10, 1, 300),
            j(2, 20, 2, 175),
            j(3, 10, 1, 300), // full tie with job 1 except id
            j(4, 5, 3, 100),  // estimate tie with job 0
        ];
        for p in Policy::ALL {
            let mut sorted = jobs.clone();
            p.sort_queue(&mut sorted);
            // The comparator agrees with the sorted order...
            for w in sorted.windows(2) {
                assert_eq!(
                    p.cmp_jobs(&w[0], &w[1]),
                    std::cmp::Ordering::Less,
                    "{p:?}: {:?} !< {:?}",
                    w[0].id,
                    w[1].id
                );
            }
            // ...and is a strict total order (antisymmetric, irreflexive).
            for a in &jobs {
                assert_eq!(p.cmp_jobs(a, a), std::cmp::Ordering::Equal);
                for b in &jobs {
                    if a.id != b.id {
                        assert_eq!(p.cmp_jobs(a, b), p.cmp_jobs(b, a).reverse());
                        assert_ne!(p.cmp_jobs(a, b), std::cmp::Ordering::Equal);
                    }
                }
            }
        }
    }
}
