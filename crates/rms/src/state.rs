//! The RMS job life-cycle state machine: waiting → running → completed.
//!
//! [`RmsState`] owns the job pools and the processor accounting; it is
//! deliberately policy-free — *which* waiting job starts next is the
//! scheduler's decision (see [`crate::scheduler`]), the state machine
//! only enforces physics: processors are finite, a job runs exactly its
//! actual run time, transitions are checked.
//!
//! Processors are tracked as individual *nodes* (one processor = one
//! node): each node is either up or down, and either idle or assigned to
//! one running job. Fault injection drives the node axis — a down node
//! is withheld from every plan ([`RmsState::plan_capacity`]), its
//! occupant is evicted ([`RmsState::fail`]) and either resubmitted
//! ([`RmsState::resubmit`]) or, once its retry budget is spent, moved to
//! the typed [`LostJob`] terminal pool. On a fault-free run no node ever
//! goes down and the accounting below reduces exactly to the historical
//! free-counter arithmetic.

use crate::planner::RUNNING_PAD;
use crate::profile::Profile;
use crate::reservation::{RepairAction, Reservation, ReservationBook};
use dynp_des::{SimDuration, SimTime};
use dynp_workload::{Job, JobId};

/// A job currently executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunningJob {
    /// The job.
    pub job: Job,
    /// When it started.
    pub start: SimTime,
}

impl RunningJob {
    /// When the planner must assume the job ends (start + estimate);
    /// planning systems reserve the estimate and kill jobs that exceed it.
    pub fn estimated_end(&self) -> SimTime {
        self.start.saturating_add(self.job.estimate)
    }

    /// When the job actually ends (start + actual run time) — the
    /// completion event time.
    pub fn actual_end(&self) -> SimTime {
        self.start.saturating_add(self.job.actual)
    }
}

/// A finished job with its realized times — the record metrics are
/// computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompletedJob {
    /// The job.
    pub job: Job,
    /// Realized start time.
    pub start: SimTime,
    /// Realized completion time (start + actual run time).
    pub end: SimTime,
}

impl CompletedJob {
    /// Wait time: start − submit.
    pub fn wait_secs(&self) -> f64 {
        self.start.saturating_since(self.job.submit).as_secs_f64()
    }

    /// Response time: end − submit.
    pub fn response_secs(&self) -> f64 {
        self.end.saturating_since(self.job.submit).as_secs_f64()
    }
}

/// A job that exhausted its retry budget — the typed terminal state of
/// the fault model. Lost jobs leave the system without completing; job
/// conservation becomes `completed + lost == submitted`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LostJob {
    /// The job.
    pub job: Job,
    /// When the final failed attempt was given up.
    pub at: SimTime,
    /// Execution attempts spent (initial attempt + retries).
    pub attempts: u32,
}

/// One change to the waiting queue, in occurrence order. The append-only
/// log of these lets incremental schedulers replay exact queue deltas
/// instead of re-scanning (or re-sorting) the whole queue every event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueChange {
    /// The job entered the waiting queue (submission).
    Entered(Job),
    /// The job left the waiting queue (it started).
    Left(Job),
}

/// The resource-management state: job pools plus processor accounting.
///
/// The whole struct is a *value*: `Clone + Hash + Eq`, with no interior
/// handles — snapshotting a driver is a plain clone, and the model
/// checker hashes it directly into state fingerprints.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RmsState {
    machine_size: u32,
    /// Unoccupied *up* nodes — down nodes are never free.
    free: u32,
    waiting: Vec<Job>,
    running: Vec<RunningJob>,
    completed: Vec<CompletedJob>,
    lost: Vec<LostJob>,
    submitted: usize,
    queue_log: Vec<QueueChange>,
    reservations: ReservationBook,
    /// Per-node occupancy: which running job holds each node.
    nodes: Vec<Option<JobId>>,
    /// Per-node availability.
    down: Vec<bool>,
    down_count: u32,
}

impl RmsState {
    /// Creates an idle machine of `machine_size` processors.
    pub fn new(machine_size: u32) -> Self {
        assert!(machine_size >= 1);
        RmsState {
            machine_size,
            free: machine_size,
            waiting: Vec::new(),
            running: Vec::new(),
            completed: Vec::new(),
            lost: Vec::new(),
            submitted: 0,
            queue_log: Vec::new(),
            reservations: ReservationBook::new(),
            nodes: vec![None; machine_size as usize],
            down: vec![false; machine_size as usize],
            down_count: 0,
        }
    }

    /// Machine size in processors.
    pub fn machine_size(&self) -> u32 {
        self.machine_size
    }

    /// Currently idle *up* processors.
    pub fn free_processors(&self) -> u32 {
        self.free
    }

    /// Processors the planner may use: the up nodes. Equal to
    /// [`RmsState::machine_size`] whenever no node is down, so fault-free
    /// plans are built against the full machine exactly as before.
    pub fn plan_capacity(&self) -> u32 {
        self.machine_size - self.down_count
    }

    /// Number of currently down nodes.
    pub fn down_nodes(&self) -> u32 {
        self.down_count
    }

    /// Whether a node is currently down.
    pub fn is_node_down(&self, node: u32) -> bool {
        self.down[node as usize]
    }

    /// The running job occupying a node, if any.
    pub fn node_occupant(&self, node: u32) -> Option<JobId> {
        self.nodes[node as usize]
    }

    /// The nodes currently assigned to a running job, in index order.
    pub fn nodes_of(&self, id: JobId) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(n, slot)| (*slot == Some(id)).then_some(n as u32))
            .collect()
    }

    /// Jobs that exhausted their retry budget, in loss order.
    pub fn lost(&self) -> &[LostJob] {
        &self.lost
    }

    /// The waiting queue (unordered — policies order copies of it).
    pub fn waiting(&self) -> &[Job] {
        &self.waiting
    }

    /// Currently executing jobs.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Finished jobs in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Number of jobs ever submitted.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// True when no job is waiting or running.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// The append-only waiting-queue change log, complete since this
    /// state's construction. Incremental consumers remember how far they
    /// have read (their cursor into this slice) and replay only the tail;
    /// the log's total length is bounded by two entries per job.
    pub fn queue_log(&self) -> &[QueueChange] {
        &self.queue_log
    }

    /// The advance-reservation book the schedulers plan around.
    pub fn reservations(&self) -> &ReservationBook {
        &self.reservations
    }

    /// The admitted reservation windows as a slice, in admission order —
    /// the exact argument [`crate::Planner::prepare`] and
    /// [`crate::Planner::plan_with_reservations`] take. Empty when no
    /// reservation was ever admitted, so reservation-free runs hand the
    /// planner the same empty slice they always did.
    pub fn reservation_slice(&self) -> &[Reservation] {
        self.reservations.all()
    }

    /// Admits a reservation window into the book and returns its id.
    ///
    /// The state machine performs no feasibility analysis here — that is
    /// the admission controller's job
    /// ([`crate::admission::AdmissionController`]); this method only
    /// enforces physics, like [`RmsState::submit`] does for jobs.
    ///
    /// # Panics
    /// Panics if the window is wider than the machine, or has zero width
    /// or duration.
    pub fn admit_reservation(&mut self, start: SimTime, duration: SimDuration, width: u32) -> u32 {
        assert!(width <= self.machine_size, "reservation wider than machine");
        self.reservations.add(start, duration, width)
    }

    /// Cancels an admitted reservation; returns whether it existed.
    pub fn cancel_reservation(&mut self, id: u32) -> bool {
        self.reservations.cancel(id)
    }

    /// Drops reservations whose windows ended at or before `now`, keeping
    /// `active()` scans and base-profile builds O(live windows) on long
    /// runs. Returns how many were removed.
    pub fn expire_reservations(&mut self, now: SimTime) -> usize {
        self.reservations.expire(now)
    }

    /// Adds a job to the waiting queue.
    ///
    /// # Panics
    /// Panics if the job is wider than the machine (workload and machine
    /// must match).
    pub fn submit(&mut self, job: Job) {
        assert!(
            job.width <= self.machine_size,
            "job {} wider than machine",
            job.id
        );
        self.submitted += 1;
        self.waiting.push(job);
        self.queue_log.push(QueueChange::Entered(job));
    }

    /// Removes a waiting job from the queue without running it — the
    /// federation migration path: the job leaves this cluster's queue and
    /// is resubmitted elsewhere. Returns the withdrawn job.
    ///
    /// # Panics
    /// Panics if the job is not waiting — the router must only migrate
    /// jobs it observed in the queue.
    pub fn withdraw(&mut self, id: JobId) -> Job {
        let idx = self
            .waiting
            .iter()
            .position(|j| j.id == id)
            .unwrap_or_else(|| panic!("job {id} is not waiting"));
        let job = self.waiting.swap_remove(idx);
        self.queue_log.push(QueueChange::Left(job));
        job
    }

    /// Starts a waiting job at `now`, consuming processors. Returns the
    /// running record (whose [`RunningJob::actual_end`] is the completion
    /// event time the caller must schedule).
    ///
    /// # Panics
    /// Panics if the job is not waiting, starts before its submission, or
    /// exceeds the free processors — all indicate a scheduler bug.
    pub fn start(&mut self, id: JobId, now: SimTime) -> RunningJob {
        let idx = self
            .waiting
            .iter()
            .position(|j| j.id == id)
            .unwrap_or_else(|| panic!("job {id} is not waiting"));
        let job = self.waiting.swap_remove(idx);
        assert!(now >= job.submit, "job {id} started before submission");
        assert!(
            job.width <= self.free,
            "job {id} needs {} processors but only {} are free",
            job.width,
            self.free
        );
        self.free -= job.width;
        // Assign the lowest-numbered idle up nodes; a down node is never
        // handed out (the chaos invariant the fault tests pin).
        let mut needed = job.width;
        for (n, slot) in self.nodes.iter_mut().enumerate() {
            if needed == 0 {
                break;
            }
            if slot.is_none() && !self.down[n] {
                *slot = Some(id);
                needed -= 1;
            }
        }
        assert_eq!(needed, 0, "free-processor accounting out of sync");
        self.queue_log.push(QueueChange::Left(job));
        let run = RunningJob { job, start: now };
        self.running.push(run);
        run
    }

    /// Completes a running job at `now`, releasing its processors.
    ///
    /// # Panics
    /// Panics if the job is not running or `now` is not its actual end
    /// time — completions fire exactly when scheduled.
    pub fn complete(&mut self, id: JobId, now: SimTime) -> CompletedJob {
        let idx = self
            .running
            .iter()
            .position(|r| r.job.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running"));
        let run = self.running.swap_remove(idx);
        assert_eq!(
            now,
            run.actual_end(),
            "job {id} completed at the wrong time"
        );
        self.free += run.job.width;
        debug_assert!(self.free <= self.machine_size);
        let released = self.release_nodes(id);
        debug_assert_eq!(released, run.job.width, "node occupancy out of sync");
        let done = CompletedJob {
            job: run.job,
            start: run.start,
            end: now,
        };
        self.completed.push(done);
        done
    }

    /// Clears every node slot held by `id`; returns how many *up* nodes
    /// were released (down nodes stay unavailable).
    fn release_nodes(&mut self, id: JobId) -> u32 {
        let mut released = 0;
        for (n, slot) in self.nodes.iter_mut().enumerate() {
            if *slot == Some(id) {
                *slot = None;
                if !self.down[n] {
                    released += 1;
                }
            }
        }
        released
    }

    /// Takes a node out of service. Returns the occupant, if any — the
    /// caller must immediately [`RmsState::fail`] it (a job cannot keep
    /// running on a lost node).
    ///
    /// # Panics
    /// Panics if the node is already down, or if taking it would leave no
    /// usable capacity (the planner requires at least one processor; the
    /// fault generator never emits such a trace).
    pub fn node_down(&mut self, node: u32) -> Option<JobId> {
        let n = node as usize;
        assert!(!self.down[n], "node {node} is already down");
        assert!(
            self.down_count + 1 < self.machine_size,
            "cannot take the last usable node down"
        );
        self.down[n] = true;
        self.down_count += 1;
        if self.nodes[n].is_none() {
            self.free -= 1;
        }
        self.nodes[n]
    }

    /// Returns a repaired node to service.
    ///
    /// # Panics
    /// Panics if the node is not down.
    pub fn node_up(&mut self, node: u32) {
        let n = node as usize;
        assert!(self.down[n], "node {node} is not down");
        debug_assert!(
            self.nodes[n].is_none(),
            "down node {node} still has an occupant"
        );
        self.down[n] = false;
        self.down_count -= 1;
        if self.nodes[n].is_none() {
            self.free += 1;
        }
    }

    /// Evicts a running job after a failure (node loss, crash, walltime
    /// kill), releasing its surviving nodes. Unlike
    /// [`RmsState::complete`] this may happen at any instant before the
    /// job's actual end. Returns the interrupted run record; the caller
    /// decides between [`RmsState::resubmit`] and [`RmsState::mark_lost`].
    ///
    /// # Panics
    /// Panics if the job is not running.
    pub fn fail(&mut self, id: JobId, now: SimTime) -> RunningJob {
        let idx = self
            .running
            .iter()
            .position(|r| r.job.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running"));
        let run = self.running.swap_remove(idx);
        // A walltime kill fires at start + estimate, which is at or after
        // the actual end (the overrunning attempt never completes on its
        // own) — hence the bound is the estimated end, not the actual one.
        debug_assert!(
            now <= run.estimated_end(),
            "failure after the walltime limit"
        );
        self.free += self.release_nodes(id);
        debug_assert!(self.free <= self.machine_size);
        run
    }

    /// Requeues a previously failed job for another attempt. The job
    /// keeps its original submission time, so waiting metrics measure
    /// from the first submission. Does *not* count towards
    /// [`RmsState::submitted`] — conservation counts jobs, not attempts.
    pub fn resubmit(&mut self, job: Job) {
        assert!(
            job.width <= self.machine_size,
            "job {} wider than machine",
            job.id
        );
        self.waiting.push(job);
        self.queue_log.push(QueueChange::Entered(job));
    }

    /// Moves a job whose retry budget is exhausted into the terminal
    /// lost pool.
    pub fn mark_lost(&mut self, job: Job, now: SimTime, attempts: u32) {
        self.lost.push(LostJob {
            job,
            at: now,
            attempts,
        });
    }

    /// Repairs the reservation book after a capacity loss: every booked
    /// window is re-validated against a trial profile of the degraded
    /// machine (running jobs padded exactly as
    /// [`crate::Planner::prepare`] pads them), in admission order. A
    /// window that no longer fits at its promised width is *downgraded*
    /// to the widest width that still fits (best effort); a window that
    /// does not fit at any width is *revoked*. Returns the actions taken,
    /// in book order — empty whenever everything still fits, and never
    /// called on a fault-free run.
    pub fn repair_reservations(&mut self, now: SimTime) -> Vec<RepairAction> {
        let actions = self.plan_reservation_repair(now);
        for a in &actions {
            match *a {
                RepairAction::Downgraded { id, to_width, .. } => {
                    self.reservations.downgrade(id, to_width);
                }
                RepairAction::Revoked { id } => {
                    self.reservations.cancel(id);
                }
            }
        }
        actions
    }

    /// The read-only half of [`RmsState::repair_reservations`]: computes
    /// the repair actions the current book would need, without applying
    /// them. An empty plan means every booked window still fits the
    /// (possibly degraded) machine at its promised width — the guarantee-
    /// preservation invariant the model checker asserts at every state.
    pub fn plan_reservation_repair(&self, now: SimTime) -> Vec<RepairAction> {
        let capacity = self.plan_capacity();
        let pad_end = now.saturating_add(RUNNING_PAD);
        let mut profile = Profile::new(capacity, now);
        for run in &self.running {
            let end = run.estimated_end().max(pad_end);
            profile.allocate(now, end.saturating_since(now), run.job.width);
        }
        let mut actions = Vec::new();
        for r in self.reservations.all() {
            if !r.active_at(now) {
                continue;
            }
            let clip = r.start.max(pad_end);
            if r.end() <= clip {
                // Clipped to nothing: the planner ignores it either way.
                continue;
            }
            let duration = r.end().saturating_since(clip);
            let mut fit = None;
            let mut w = r.width.min(capacity);
            while w >= 1 {
                if profile.earliest_fit(clip, duration, w) == clip {
                    fit = Some(w);
                    break;
                }
                w -= 1;
            }
            match fit {
                Some(w) => {
                    profile.allocate(clip, duration, w);
                    if w != r.width {
                        actions.push(RepairAction::Downgraded {
                            id: r.id,
                            from_width: r.width,
                            to_width: w,
                        });
                    }
                }
                None => {
                    actions.push(RepairAction::Revoked { id: r.id });
                }
            }
        }
        actions
    }

    /// Consumes the state and returns the completed jobs.
    pub fn into_completed(self) -> Vec<CompletedJob> {
        self.completed
    }

    /// Appends the complete machine state — every pool, the queue log,
    /// the reservation book, and the per-node occupancy/availability maps
    /// — to a checkpoint buffer. Restoring with
    /// [`RmsState::decode_from`] yields a state that compares equal
    /// (`PartialEq`) and hashes identically to the original.
    pub fn encode_into(&self, w: &mut dynp_des::ByteWriter) {
        w.u32(self.machine_size);
        w.u32(self.free);
        w.u32(self.waiting.len() as u32);
        for j in &self.waiting {
            j.encode_into(w);
        }
        w.u32(self.running.len() as u32);
        for r in &self.running {
            r.job.encode_into(w);
            w.u64(r.start.as_millis());
        }
        w.u32(self.completed.len() as u32);
        for c in &self.completed {
            c.job.encode_into(w);
            w.u64(c.start.as_millis());
            w.u64(c.end.as_millis());
        }
        w.u32(self.lost.len() as u32);
        for l in &self.lost {
            l.job.encode_into(w);
            w.u64(l.at.as_millis());
            w.u32(l.attempts);
        }
        w.usize(self.submitted);
        w.u32(self.queue_log.len() as u32);
        for q in &self.queue_log {
            match q {
                QueueChange::Entered(j) => {
                    w.u8(0);
                    j.encode_into(w);
                }
                QueueChange::Left(j) => {
                    w.u8(1);
                    j.encode_into(w);
                }
            }
        }
        self.reservations.encode_into(w);
        w.u32(self.nodes.len() as u32);
        for slot in &self.nodes {
            match slot {
                None => w.u32(u32::MAX),
                Some(id) => w.u32(id.0),
            }
        }
        for &d in &self.down {
            w.bool(d);
        }
        w.u32(self.down_count);
    }

    /// Decodes a state written by [`RmsState::encode_into`].
    pub fn decode_from(r: &mut dynp_des::ByteReader<'_>) -> Result<Self, dynp_des::CodecError> {
        let machine_size = r.u32()?;
        let free = r.u32()?;
        let n = r.u32()? as usize;
        let mut waiting = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            waiting.push(Job::decode_from(r)?);
        }
        let n = r.u32()? as usize;
        let mut running = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            running.push(RunningJob {
                job: Job::decode_from(r)?,
                start: SimTime::from_millis(r.u64()?),
            });
        }
        let n = r.u32()? as usize;
        let mut completed = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            completed.push(CompletedJob {
                job: Job::decode_from(r)?,
                start: SimTime::from_millis(r.u64()?),
                end: SimTime::from_millis(r.u64()?),
            });
        }
        let n = r.u32()? as usize;
        let mut lost = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            lost.push(LostJob {
                job: Job::decode_from(r)?,
                at: SimTime::from_millis(r.u64()?),
                attempts: r.u32()?,
            });
        }
        let submitted = r.usize()?;
        let n = r.u32()? as usize;
        let mut queue_log = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            queue_log.push(match r.u8()? {
                0 => QueueChange::Entered(Job::decode_from(r)?),
                1 => QueueChange::Left(Job::decode_from(r)?),
                _ => {
                    return Err(dynp_des::CodecError::Invalid {
                        what: "queue-change tag",
                    })
                }
            });
        }
        let reservations = ReservationBook::decode_from(r)?;
        let n = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            nodes.push(match r.u32()? {
                u32::MAX => None,
                id => Some(JobId(id)),
            });
        }
        let mut down = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            down.push(r.bool()?);
        }
        let down_count = r.u32()?;
        Ok(RmsState {
            machine_size,
            free,
            waiting,
            running,
            completed,
            lost,
            submitted,
            queue_log,
            reservations,
            nodes,
            down,
            down_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64, act_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(act_s),
        )
    }

    #[test]
    fn life_cycle_accounting() {
        let mut s = RmsState::new(8);
        assert!(s.is_idle());
        s.submit(j(0, 0, 3, 100, 60));
        s.submit(j(1, 0, 5, 100, 100));
        assert_eq!(s.waiting().len(), 2);
        assert_eq!(s.free_processors(), 8);

        let r0 = s.start(JobId(0), SimTime::from_secs(0));
        assert_eq!(s.free_processors(), 5);
        assert_eq!(r0.actual_end(), SimTime::from_secs(60));
        assert_eq!(r0.estimated_end(), SimTime::from_secs(100));

        s.start(JobId(1), SimTime::from_secs(0));
        assert_eq!(s.free_processors(), 0);
        assert!(!s.is_idle());

        let done = s.complete(JobId(0), SimTime::from_secs(60));
        assert_eq!(s.free_processors(), 3);
        assert_eq!(done.wait_secs(), 0.0);
        assert_eq!(done.response_secs(), 60.0);

        s.complete(JobId(1), SimTime::from_secs(100));
        assert!(s.is_idle());
        assert_eq!(s.completed().len(), 2);
        assert_eq!(s.submitted(), 2);
    }

    #[test]
    fn wait_and_response_times() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 10, 2, 50, 30));
        s.start(JobId(0), SimTime::from_secs(25));
        let done = s.complete(JobId(0), SimTime::from_secs(55));
        assert_eq!(done.wait_secs(), 15.0);
        assert_eq!(done.response_secs(), 45.0);
    }

    #[test]
    #[should_panic(expected = "is not waiting")]
    fn start_requires_waiting_job() {
        let mut s = RmsState::new(4);
        s.start(JobId(7), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn start_requires_free_processors() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 3, 10, 10));
        s.submit(j(1, 0, 3, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        s.start(JobId(1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "before submission")]
    fn start_cannot_precede_submission() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 100, 1, 10, 10));
        s.start(JobId(0), SimTime::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn complete_must_match_actual_end() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 1, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        s.complete(JobId(0), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn submit_rejects_oversized_job() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 5, 10, 10));
    }

    #[test]
    fn reservation_book_life_cycle_through_state() {
        let mut s = RmsState::new(8);
        assert!(s.reservation_slice().is_empty());
        let a = s.admit_reservation(SimTime::from_secs(100), SimDuration::from_secs(50), 4);
        let b = s.admit_reservation(SimTime::from_secs(300), SimDuration::from_secs(50), 8);
        assert_eq!(s.reservation_slice().len(), 2);
        assert!(s.cancel_reservation(a));
        assert!(!s.cancel_reservation(a));
        assert_eq!(s.reservation_slice().len(), 1);
        assert_eq!(s.reservation_slice()[0].id, b);
        assert_eq!(s.expire_reservations(SimTime::from_secs(350)), 1);
        assert!(s.reservations().all().is_empty());
    }

    #[test]
    #[should_panic(expected = "wider than machine")]
    fn admit_rejects_oversized_reservation() {
        let mut s = RmsState::new(4);
        s.admit_reservation(SimTime::ZERO, SimDuration::from_secs(10), 5);
    }

    #[test]
    fn node_loss_shrinks_capacity_and_evicts_the_occupant() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 2, 100, 60));
        s.start(JobId(0), SimTime::ZERO);
        assert_eq!(s.nodes_of(JobId(0)), vec![0, 1]);
        assert_eq!(s.free_processors(), 2);
        assert_eq!(s.plan_capacity(), 4);

        // An idle node goes down: free and capacity both shrink.
        let evicted = s.node_down(3);
        assert_eq!(evicted, None);
        assert_eq!(s.free_processors(), 1);
        assert_eq!(s.plan_capacity(), 3);
        assert!(s.is_node_down(3));

        // An occupied node goes down: the occupant is reported and must
        // be failed; its surviving node (1) is released.
        let evicted = s.node_down(0);
        assert_eq!(evicted, Some(JobId(0)));
        let run = s.fail(JobId(0), SimTime::from_secs(30));
        assert_eq!(run.job.id, JobId(0));
        assert_eq!(run.start, SimTime::ZERO);
        assert_eq!(s.free_processors(), 2); // nodes 1 and 2
        assert_eq!(s.plan_capacity(), 2);
        assert!(s.nodes_of(JobId(0)).is_empty());

        // Repairs restore both counters.
        s.node_up(0);
        s.node_up(3);
        assert_eq!(s.free_processors(), 4);
        assert_eq!(s.plan_capacity(), 4);

        // The failed job retries and completes normally.
        s.resubmit(run.job);
        assert_eq!(s.submitted(), 1, "resubmission is not a new job");
        s.start(JobId(0), SimTime::from_secs(40));
        s.complete(JobId(0), SimTime::from_secs(100));
        assert_eq!(s.completed().len(), 1);
        assert!(s.is_idle());
    }

    #[test]
    fn start_skips_down_nodes() {
        let mut s = RmsState::new(4);
        s.node_down(0);
        s.node_down(2);
        s.submit(j(0, 0, 2, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        assert_eq!(s.nodes_of(JobId(0)), vec![1, 3]);
        assert_eq!(s.free_processors(), 0);
    }

    #[test]
    fn lost_jobs_leave_the_system() {
        let mut s = RmsState::new(2);
        s.submit(j(0, 0, 1, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        let run = s.fail(JobId(0), SimTime::from_secs(5));
        s.mark_lost(run.job, SimTime::from_secs(5), 4);
        assert!(s.is_idle());
        assert_eq!(s.lost().len(), 1);
        assert_eq!(s.lost()[0].attempts, 4);
        assert_eq!(s.completed().len(), 0);
        assert_eq!(s.submitted(), 1);
        assert_eq!(s.free_processors(), 2);
    }

    #[test]
    #[should_panic(expected = "last usable node")]
    fn the_last_node_cannot_go_down() {
        let mut s = RmsState::new(2);
        s.node_down(0);
        s.node_down(1);
    }

    #[test]
    fn repair_leaves_fitting_windows_alone() {
        let mut s = RmsState::new(8);
        s.admit_reservation(SimTime::from_secs(100), SimDuration::from_secs(50), 4);
        s.node_down(7);
        let actions = s.repair_reservations(SimTime::from_secs(10));
        assert!(actions.is_empty());
        assert_eq!(s.reservation_slice()[0].width, 4);
    }

    #[test]
    fn repair_downgrades_then_revokes() {
        let mut s = RmsState::new(4);
        let a = s.admit_reservation(SimTime::from_secs(100), SimDuration::from_secs(50), 4);
        let b = s.admit_reservation(SimTime::from_secs(120), SimDuration::from_secs(50), 3);
        s.node_down(0);
        s.node_down(1);
        s.node_down(2);
        // Capacity 1: window a (admitted first) is downgraded to width 1;
        // window b overlaps it and fits at no width — revoked.
        let actions = s.repair_reservations(SimTime::from_secs(10));
        assert_eq!(
            actions,
            vec![
                RepairAction::Downgraded {
                    id: a,
                    from_width: 4,
                    to_width: 1
                },
                RepairAction::Revoked { id: b },
            ]
        );
        assert_eq!(s.reservation_slice().len(), 1);
        assert_eq!(s.reservation_slice()[0].width, 1);
    }

    #[test]
    fn codec_round_trip_is_exact() {
        // Exercise every pool: waiting, running, completed, lost, a
        // reservation (plus one cancelled to advance the id counter), and
        // a down node.
        let mut s = RmsState::new(8);
        s.submit(j(0, 0, 2, 100, 60));
        s.submit(j(1, 5, 3, 50, 50));
        s.submit(j(2, 6, 1, 10, 10));
        s.start(JobId(0), SimTime::from_secs(0));
        s.start(JobId(2), SimTime::from_secs(6));
        s.complete(JobId(2), SimTime::from_secs(16));
        s.submit(j(3, 20, 1, 10, 10));
        s.start(JobId(3), SimTime::from_secs(20));
        let run = s.fail(JobId(3), SimTime::from_secs(25));
        s.mark_lost(run.job, SimTime::from_secs(25), 3);
        let cancelled = s.admit_reservation(SimTime::from_secs(500), SimDuration::from_secs(10), 2);
        s.cancel_reservation(cancelled);
        s.admit_reservation(SimTime::from_secs(600), SimDuration::from_secs(20), 4);
        s.node_down(7);

        let mut w = dynp_des::ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = dynp_des::ByteReader::new(&bytes);
        let restored = RmsState::decode_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored, s);
        // The id counter survived: the next reservation id continues the
        // uninterrupted sequence.
        let mut restored = restored;
        assert_eq!(
            restored.admit_reservation(SimTime::from_secs(700), SimDuration::from_secs(5), 1),
            2
        );
    }

    #[test]
    fn repair_accounts_for_running_jobs() {
        let mut s = RmsState::new(4);
        // A width-2 job runs until its estimate at t=100.
        s.submit(j(0, 0, 2, 100, 100));
        s.start(JobId(0), SimTime::ZERO);
        // A full-width window right after the job's estimated end.
        s.admit_reservation(SimTime::from_secs(100), SimDuration::from_secs(50), 4);
        // One node lost: the window overlaps nothing but capacity is 3.
        s.node_down(3);
        let actions = s.repair_reservations(SimTime::from_secs(10));
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            RepairAction::Downgraded {
                from_width: 4,
                to_width: 3,
                ..
            }
        ));
        // A second loss forces the window below the running job's width
        // headroom: capacity 2, job holds 2 until 100 — the window starts
        // at 100 so it still fits at width 2.
        s.node_down(2);
        let actions = s.repair_reservations(SimTime::from_secs(20));
        assert!(matches!(
            actions[0],
            RepairAction::Downgraded {
                from_width: 3,
                to_width: 2,
                ..
            }
        ));
    }
}
