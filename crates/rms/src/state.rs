//! The RMS job life-cycle state machine: waiting → running → completed.
//!
//! [`RmsState`] owns the three job pools and the processor accounting;
//! it is deliberately policy-free — *which* waiting job starts next is
//! the scheduler's decision (see [`crate::scheduler`]), the state machine
//! only enforces physics: processors are finite, a job runs exactly its
//! actual run time, transitions are checked.

use crate::reservation::{Reservation, ReservationBook};
use dynp_des::{SimDuration, SimTime};
use dynp_workload::{Job, JobId};

/// A job currently executing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunningJob {
    /// The job.
    pub job: Job,
    /// When it started.
    pub start: SimTime,
}

impl RunningJob {
    /// When the planner must assume the job ends (start + estimate);
    /// planning systems reserve the estimate and kill jobs that exceed it.
    pub fn estimated_end(&self) -> SimTime {
        self.start.saturating_add(self.job.estimate)
    }

    /// When the job actually ends (start + actual run time) — the
    /// completion event time.
    pub fn actual_end(&self) -> SimTime {
        self.start.saturating_add(self.job.actual)
    }
}

/// A finished job with its realized times — the record metrics are
/// computed from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletedJob {
    /// The job.
    pub job: Job,
    /// Realized start time.
    pub start: SimTime,
    /// Realized completion time (start + actual run time).
    pub end: SimTime,
}

impl CompletedJob {
    /// Wait time: start − submit.
    pub fn wait_secs(&self) -> f64 {
        self.start.saturating_since(self.job.submit).as_secs_f64()
    }

    /// Response time: end − submit.
    pub fn response_secs(&self) -> f64 {
        self.end.saturating_since(self.job.submit).as_secs_f64()
    }
}

/// One change to the waiting queue, in occurrence order. The append-only
/// log of these lets incremental schedulers replay exact queue deltas
/// instead of re-scanning (or re-sorting) the whole queue every event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueChange {
    /// The job entered the waiting queue (submission).
    Entered(Job),
    /// The job left the waiting queue (it started).
    Left(Job),
}

/// The resource-management state: job pools plus processor accounting.
#[derive(Clone, Debug)]
pub struct RmsState {
    machine_size: u32,
    free: u32,
    waiting: Vec<Job>,
    running: Vec<RunningJob>,
    completed: Vec<CompletedJob>,
    submitted: usize,
    queue_log: Vec<QueueChange>,
    reservations: ReservationBook,
}

impl RmsState {
    /// Creates an idle machine of `machine_size` processors.
    pub fn new(machine_size: u32) -> Self {
        assert!(machine_size >= 1);
        RmsState {
            machine_size,
            free: machine_size,
            waiting: Vec::new(),
            running: Vec::new(),
            completed: Vec::new(),
            submitted: 0,
            queue_log: Vec::new(),
            reservations: ReservationBook::new(),
        }
    }

    /// Machine size in processors.
    pub fn machine_size(&self) -> u32 {
        self.machine_size
    }

    /// Currently idle processors.
    pub fn free_processors(&self) -> u32 {
        self.free
    }

    /// The waiting queue (unordered — policies order copies of it).
    pub fn waiting(&self) -> &[Job] {
        &self.waiting
    }

    /// Currently executing jobs.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Finished jobs in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Number of jobs ever submitted.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// True when no job is waiting or running.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// The append-only waiting-queue change log, complete since this
    /// state's construction. Incremental consumers remember how far they
    /// have read (their cursor into this slice) and replay only the tail;
    /// the log's total length is bounded by two entries per job.
    pub fn queue_log(&self) -> &[QueueChange] {
        &self.queue_log
    }

    /// The advance-reservation book the schedulers plan around.
    pub fn reservations(&self) -> &ReservationBook {
        &self.reservations
    }

    /// The admitted reservation windows as a slice, in admission order —
    /// the exact argument [`crate::Planner::prepare`] and
    /// [`crate::Planner::plan_with_reservations`] take. Empty when no
    /// reservation was ever admitted, so reservation-free runs hand the
    /// planner the same empty slice they always did.
    pub fn reservation_slice(&self) -> &[Reservation] {
        self.reservations.all()
    }

    /// Admits a reservation window into the book and returns its id.
    ///
    /// The state machine performs no feasibility analysis here — that is
    /// the admission controller's job
    /// ([`crate::admission::AdmissionController`]); this method only
    /// enforces physics, like [`RmsState::submit`] does for jobs.
    ///
    /// # Panics
    /// Panics if the window is wider than the machine, or has zero width
    /// or duration.
    pub fn admit_reservation(&mut self, start: SimTime, duration: SimDuration, width: u32) -> u32 {
        assert!(width <= self.machine_size, "reservation wider than machine");
        self.reservations.add(start, duration, width)
    }

    /// Cancels an admitted reservation; returns whether it existed.
    pub fn cancel_reservation(&mut self, id: u32) -> bool {
        self.reservations.cancel(id)
    }

    /// Drops reservations whose windows ended at or before `now`, keeping
    /// `active()` scans and base-profile builds O(live windows) on long
    /// runs. Returns how many were removed.
    pub fn expire_reservations(&mut self, now: SimTime) -> usize {
        self.reservations.expire(now)
    }

    /// Adds a job to the waiting queue.
    ///
    /// # Panics
    /// Panics if the job is wider than the machine (workload and machine
    /// must match).
    pub fn submit(&mut self, job: Job) {
        assert!(
            job.width <= self.machine_size,
            "job {} wider than machine",
            job.id
        );
        self.submitted += 1;
        self.waiting.push(job);
        self.queue_log.push(QueueChange::Entered(job));
    }

    /// Starts a waiting job at `now`, consuming processors. Returns the
    /// running record (whose [`RunningJob::actual_end`] is the completion
    /// event time the caller must schedule).
    ///
    /// # Panics
    /// Panics if the job is not waiting, starts before its submission, or
    /// exceeds the free processors — all indicate a scheduler bug.
    pub fn start(&mut self, id: JobId, now: SimTime) -> RunningJob {
        let idx = self
            .waiting
            .iter()
            .position(|j| j.id == id)
            .unwrap_or_else(|| panic!("job {id} is not waiting"));
        let job = self.waiting.swap_remove(idx);
        assert!(now >= job.submit, "job {id} started before submission");
        assert!(
            job.width <= self.free,
            "job {id} needs {} processors but only {} are free",
            job.width,
            self.free
        );
        self.free -= job.width;
        self.queue_log.push(QueueChange::Left(job));
        let run = RunningJob { job, start: now };
        self.running.push(run);
        run
    }

    /// Completes a running job at `now`, releasing its processors.
    ///
    /// # Panics
    /// Panics if the job is not running or `now` is not its actual end
    /// time — completions fire exactly when scheduled.
    pub fn complete(&mut self, id: JobId, now: SimTime) -> CompletedJob {
        let idx = self
            .running
            .iter()
            .position(|r| r.job.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running"));
        let run = self.running.swap_remove(idx);
        assert_eq!(
            now,
            run.actual_end(),
            "job {id} completed at the wrong time"
        );
        self.free += run.job.width;
        debug_assert!(self.free <= self.machine_size);
        let done = CompletedJob {
            job: run.job,
            start: run.start,
            end: now,
        };
        self.completed.push(done);
        done
    }

    /// Consumes the state and returns the completed jobs.
    pub fn into_completed(self) -> Vec<CompletedJob> {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64, act_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(act_s),
        )
    }

    #[test]
    fn life_cycle_accounting() {
        let mut s = RmsState::new(8);
        assert!(s.is_idle());
        s.submit(j(0, 0, 3, 100, 60));
        s.submit(j(1, 0, 5, 100, 100));
        assert_eq!(s.waiting().len(), 2);
        assert_eq!(s.free_processors(), 8);

        let r0 = s.start(JobId(0), SimTime::from_secs(0));
        assert_eq!(s.free_processors(), 5);
        assert_eq!(r0.actual_end(), SimTime::from_secs(60));
        assert_eq!(r0.estimated_end(), SimTime::from_secs(100));

        s.start(JobId(1), SimTime::from_secs(0));
        assert_eq!(s.free_processors(), 0);
        assert!(!s.is_idle());

        let done = s.complete(JobId(0), SimTime::from_secs(60));
        assert_eq!(s.free_processors(), 3);
        assert_eq!(done.wait_secs(), 0.0);
        assert_eq!(done.response_secs(), 60.0);

        s.complete(JobId(1), SimTime::from_secs(100));
        assert!(s.is_idle());
        assert_eq!(s.completed().len(), 2);
        assert_eq!(s.submitted(), 2);
    }

    #[test]
    fn wait_and_response_times() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 10, 2, 50, 30));
        s.start(JobId(0), SimTime::from_secs(25));
        let done = s.complete(JobId(0), SimTime::from_secs(55));
        assert_eq!(done.wait_secs(), 15.0);
        assert_eq!(done.response_secs(), 45.0);
    }

    #[test]
    #[should_panic(expected = "is not waiting")]
    fn start_requires_waiting_job() {
        let mut s = RmsState::new(4);
        s.start(JobId(7), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn start_requires_free_processors() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 3, 10, 10));
        s.submit(j(1, 0, 3, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        s.start(JobId(1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "before submission")]
    fn start_cannot_precede_submission() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 100, 1, 10, 10));
        s.start(JobId(0), SimTime::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn complete_must_match_actual_end() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 1, 10, 10));
        s.start(JobId(0), SimTime::ZERO);
        s.complete(JobId(0), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn submit_rejects_oversized_job() {
        let mut s = RmsState::new(4);
        s.submit(j(0, 0, 5, 10, 10));
    }

    #[test]
    fn reservation_book_life_cycle_through_state() {
        let mut s = RmsState::new(8);
        assert!(s.reservation_slice().is_empty());
        let a = s.admit_reservation(SimTime::from_secs(100), SimDuration::from_secs(50), 4);
        let b = s.admit_reservation(SimTime::from_secs(300), SimDuration::from_secs(50), 8);
        assert_eq!(s.reservation_slice().len(), 2);
        assert!(s.cancel_reservation(a));
        assert!(!s.cancel_reservation(a));
        assert_eq!(s.reservation_slice().len(), 1);
        assert_eq!(s.reservation_slice()[0].id, b);
        assert_eq!(s.expire_reservations(SimTime::from_secs(350)), 1);
        assert!(s.reservations().all().is_empty());
    }

    #[test]
    #[should_panic(expected = "wider than machine")]
    fn admit_rejects_oversized_reservation() {
        let mut s = RmsState::new(4);
        s.admit_reservation(SimTime::ZERO, SimDuration::from_secs(10), 5);
    }
}
