//! # dynp-rms — a planning-based resource management substrate
//!
//! The dynP scheduler is defined on top of a *planning based* RMS (the
//! paper's CCS, classified in Hovestadt et al. 2003): unlike queuing
//! systems, a planning based RMS "schedules the present and future
//! resource usage, so that newly submitted jobs are placed in the active
//! schedule as soon as possible and they get a start time assigned. With
//! this approach backfilling is done implicitly."
//!
//! This crate provides that substrate from scratch:
//!
//! * [`profile`] — the free-capacity timeline over future time, the
//!   capacity-indexed structure planners search for start-time slots in
//!   O(log n) ([`naive`] retains the linear-scan variant as the
//!   reference oracle);
//! * [`policy`] — the queue-ordering policies: FCFS, SJF, LJF (the
//!   paper's three) plus SAF/LAF extensions;
//! * [`schedule`] — a full schedule (planned start time for every waiting
//!   job) with validation of the no-overcommit invariant;
//! * [`planner`] — the earliest-fit planner that builds a full schedule
//!   for a queue in policy order (implicit backfilling);
//! * [`state`] — the job life-cycle state machine of the RMS: waiting →
//!   running → completed, with processor accounting;
//! * [`scheduler`] — the `Scheduler` abstraction the simulation driver
//!   calls at every event, and the static single-policy scheduler the
//!   paper uses as baseline;
//! * [`reservation`] — advance-reservation windows and the book the RMS
//!   state owns;
//! * [`admission`] — feasibility-checked admission of reservation
//!   requests: capacity against the base profile, guarantee preservation
//!   against promised job starts.

pub mod admission;
pub mod easy;
pub mod naive;
pub mod planner;
pub mod policy;
pub mod profile;
pub mod reservation;
pub mod schedule;
pub mod scheduler;
pub mod state;

pub use admission::{AdmissionConfig, AdmissionController, RejectReason};
pub use easy::EasyBackfillScheduler;
pub use naive::NaiveProfile;
pub use planner::{PlanTiming, Planner, ReferencePlanner, PARALLEL_MIN_DEPTH};
pub use policy::Policy;
pub use profile::Profile;
pub use reservation::{RepairAction, Reservation, ReservationBook};
pub use schedule::{PlannedJob, Schedule};
pub use scheduler::{ReplanReason, Scheduler, SchedulerSnapshot, StaticScheduler};
pub use state::{CompletedJob, LostJob, QueueChange, RmsState, RunningJob};
