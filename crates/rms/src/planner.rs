//! The earliest-fit planner: builds a full schedule for a queue in
//! policy order.
//!
//! The planner walks the ordered queue and gives each job the earliest
//! start time at which its width fits for its whole estimated run time,
//! given the running jobs and all previously placed queue jobs. Because
//! a later (lower-priority) job may slot into a gap *before* an earlier
//! job's reservation, "backfilling is done implicitly" — no separate
//! backfill pass exists, exactly as in planning-based systems like CCS.

use crate::naive::NaiveProfile;
use crate::profile::Profile;
use crate::schedule::{PlannedJob, Schedule};
use crate::state::RunningJob;
use dynp_des::{SimDuration, SimTime};
use dynp_workload::Job;

/// Planning logic with a shared, per-event base profile.
///
/// At every scheduling event the base profile — running-job reservations
/// plus fixed reservation windows — is identical for every candidate
/// policy; only the queue order differs. [`Planner::prepare`] builds
/// that base once with an endpoint sweep, and each
/// [`Planner::plan_prepared`] call restores the working profile to the
/// prepared watermark with one `memcpy` before placing the queue. The
/// dynP self-tuning step plans once per policy per event, so this turns
/// P profile rebuilds per event into one build plus P cheap restores.
///
/// [`Planner::plan`] keeps the original one-shot signature (prepare +
/// plan in one call) and produces bit-identical schedules to
/// [`ReferencePlanner`], the retained from-scratch implementation.
#[derive(Debug)]
pub struct Planner {
    /// Working profile each planning pass narrows.
    profile: Profile,
    /// Shared base: running jobs + reservations as of `prepared_at`.
    base: Profile,
    /// Instant [`Planner::prepare`] was last called at.
    prepared_at: SimTime,
    /// Scratch span list handed to the sweep (reused, no per-event
    /// allocation).
    spans: Vec<(SimTime, SimTime, u32)>,
    /// Scratch endpoint buffer for the sweep.
    events: Vec<(SimTime, i64)>,
    /// Per-worker working profiles for [`Planner::plan_prepared_batch`],
    /// persistent across events so the parallel path allocates nothing
    /// steady-state.
    work: Vec<Profile>,
    /// Observability tracer (disabled by default); [`Planner::prepare`]
    /// is measured as a `"prepare"` wall-clock span.
    tracer: dynp_obs::Tracer,
}

/// Wall-clock observability of one per-policy planning pass inside
/// [`Planner::plan_prepared_batch`]: when the pass started (tracer
/// epoch-relative) and how long it ran. Zeroed when tracing is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanTiming {
    /// Start of the pass, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration of the pass in nanoseconds.
    pub dur_ns: u64,
}

/// Queue depth below which [`Planner::plan_prepared_batch`] stays
/// sequential regardless of the requested worker count: per-policy
/// planning passes at shallow depths finish in microseconds, so thread
/// hand-off would cost more than it saves. Callers sum the candidate
/// queue depths and compare against this.
pub const PARALLEL_MIN_DEPTH: usize = 512;

/// Padding added after a running job's estimated end when the estimate
/// has already elapsed at planning time: the job still physically holds
/// its processors until its completion *event* is processed, so the plan
/// must not hand them out at the current instant.
pub(crate) const RUNNING_PAD: SimDuration = SimDuration::from_millis(1);

impl Planner {
    /// Creates a planner.
    pub fn new() -> Self {
        Planner {
            profile: Profile::new(1, SimTime::ZERO),
            base: Profile::new(1, SimTime::ZERO),
            prepared_at: SimTime::ZERO,
            spans: Vec::new(),
            events: Vec::new(),
            work: Vec::new(),
            tracer: dynp_obs::Tracer::disabled(),
        }
    }

    /// Installs an observability tracer; each [`Planner::prepare`] (the
    /// per-event base-profile rebuild) is then measured as a `"prepare"`
    /// wall-clock span.
    pub fn set_tracer(&mut self, tracer: dynp_obs::Tracer) {
        self.tracer = tracer;
    }

    /// Builds the shared base profile for one scheduling event: the
    /// machine as narrowed by `running` jobs (blocked to their estimated
    /// end, at least marginally past `now` — see `RUNNING_PAD`) and by
    /// the active `reservations` (clipped to `[now + RUNNING_PAD, end)`).
    ///
    /// The reservation clip starts one pad *past* `now`, not at `now`: a
    /// job whose completion event is still queued at the current instant
    /// physically holds its processors for the pad, and an ongoing
    /// full-width window must not double-book them. The pad instant is
    /// too short for any queue job to exploit, so schedules are
    /// unaffected.
    ///
    /// Subsequent [`Planner::plan_prepared`] calls plan against this
    /// base until `prepare` is called again.
    pub fn prepare(
        &mut self,
        machine_size: u32,
        now: SimTime,
        running: &[RunningJob],
        reservations: &[crate::reservation::Reservation],
    ) {
        let _span = self.tracer.span(now, "prepare");
        self.spans.clear();
        for r in running {
            let end = r.estimated_end().max(now + RUNNING_PAD);
            self.spans.push((now, end, r.job.width));
        }
        for res in reservations {
            if !res.active_at(now) {
                continue;
            }
            self.spans
                .push((res.start.max(now + RUNNING_PAD), res.end(), res.width));
        }
        self.base
            .rebuild_from_spans(machine_size, now, &self.spans, &mut self.events);
        self.prepared_at = now;
    }

    /// Number of points in the prepared base profile — the size of the
    /// structure every `earliest_fit` probe descends. Reported per plan
    /// in trace events; queue depth × log(this) bounds a planning pass's
    /// probe work.
    pub fn base_points(&self) -> usize {
        self.base.len()
    }

    /// True when the prepared base profile can absorb a *new* reservation
    /// window `[start, start + duration)` of `width` processors without
    /// overcommitting the machine against running jobs and the already
    /// admitted reservations. This is the capacity half of the admission
    /// feasibility check (see [`crate::admission`]); it reads the base
    /// profile without mutating it, so the prepared state stays valid for
    /// subsequent [`Planner::plan_prepared`] calls.
    ///
    /// Call [`Planner::prepare`] first; the window is evaluated as it
    /// would be blocked out by the next `prepare` (clipped to start no
    /// earlier than one pad past the prepare instant).
    pub fn window_fits(&self, start: SimTime, duration: SimDuration, width: u32) -> bool {
        if width == 0 || width > self.base.capacity() {
            return false;
        }
        let end = start.saturating_add(duration);
        let from = start.max(self.prepared_at + RUNNING_PAD);
        if end <= from {
            // Nothing left of the window: trivially absorbable.
            return true;
        }
        self.base
            .earliest_fit(from, end.saturating_since(from), width)
            == from
    }

    /// Plans `queue` (already in policy order) against the prepared base:
    /// restores the working profile to the watermark, then gives each
    /// job the earliest feasible start ≥ max(now, submit).
    ///
    /// Call [`Planner::prepare`] first; planning against a stale base is
    /// not checked.
    pub fn plan_prepared(&mut self, queue: &[Job]) -> Schedule {
        let mut schedule = Schedule::default();
        self.plan_prepared_into(queue, &mut schedule);
        schedule
    }

    /// [`Planner::plan_prepared`] into a caller-owned schedule, reusing
    /// its entry buffer (the self-tuning step keeps one schedule per
    /// candidate policy alive across events).
    pub fn plan_prepared_into(&mut self, queue: &[Job], out: &mut Schedule) {
        Self::plan_queue(&self.base, &mut self.profile, self.prepared_at, queue, out);
    }

    /// The per-policy planning pass: restores `profile` to the `base`
    /// watermark and places `queue` (already in policy order) job by job.
    /// A free function over explicit profiles so the batch fan-out can
    /// run it on per-worker buffers; the result depends only on
    /// `(base, now, queue)`, which is what makes the fan-out
    /// deterministic regardless of worker assignment.
    fn plan_queue(
        base: &Profile,
        profile: &mut Profile,
        now: SimTime,
        queue: &[Job],
        out: &mut Schedule,
    ) {
        profile.restore_from(base);
        out.entries.clear();
        out.entries.reserve(queue.len());
        for job in queue {
            // A job wider than the (possibly degraded) machine has no
            // feasible start at any time: leave it out of the plan — it
            // stays waiting until node repair restores enough capacity.
            if job.width > profile.capacity() {
                continue;
            }
            let earliest = now.max(job.submit);
            let start = profile.allocate_earliest(earliest, job.estimate, job.width);
            out.entries.push(PlannedJob { job: *job, start });
        }
    }

    /// Plans every queue in `queues` against the prepared base — the
    /// per-policy fan-out of the self-tuning step. With `workers <= 1`
    /// (or a single queue) this is exactly a [`Planner::plan_prepared_into`]
    /// loop; otherwise the queues are split into contiguous runs across
    /// `std::thread::scope` workers, each planning on its own persistent
    /// working profile. Returns the worker count actually used.
    ///
    /// Every queue's schedule depends only on the shared immutable base
    /// and its own queue order, and results land in the caller's `outs`
    /// slot for that queue — so schedules are bit-identical for every
    /// worker count, and the merge order is the caller's policy order by
    /// construction. `timings[i]` records the wall clock of pass `i`
    /// when span tracing is enabled (zeroed otherwise).
    pub fn plan_prepared_batch(
        &mut self,
        queues: &[Vec<Job>],
        outs: &mut [Schedule],
        timings: &mut [PlanTiming],
        workers: usize,
    ) -> usize {
        let n = queues.len();
        assert_eq!(n, outs.len(), "one output schedule per queue");
        assert_eq!(n, timings.len(), "one timing slot per queue");
        let time_plans = self.tracer.wants(dynp_obs::TraceClass::Span);
        let workers = workers.clamp(1, n.max(1));
        if workers <= 1 {
            for i in 0..n {
                let start_ns = if time_plans { self.tracer.now_ns() } else { 0 };
                self.plan_prepared_into(&queues[i], &mut outs[i]);
                timings[i] = PlanTiming {
                    start_ns,
                    dur_ns: if time_plans {
                        self.tracer.now_ns().saturating_sub(start_ns)
                    } else {
                        0
                    },
                };
            }
            return 1;
        }
        while self.work.len() < workers {
            self.work.push(Profile::new(1, SimTime::ZERO));
        }
        let base = &self.base;
        let now = self.prepared_at;
        let tracer = &self.tracer;
        let per = n.div_ceil(workers);
        std::thread::scope(|s| {
            let mut outs_rest = outs;
            let mut timings_rest = timings;
            let mut work_rest = &mut self.work[..];
            let mut idx = 0;
            while idx < n {
                let take = per.min(n - idx);
                let (outs_chunk, r) = outs_rest.split_at_mut(take);
                outs_rest = r;
                let (tim_chunk, r) = timings_rest.split_at_mut(take);
                timings_rest = r;
                let (work_profile, r) = work_rest.split_first_mut().expect("worker profile");
                work_rest = r;
                let queue_chunk = &queues[idx..idx + take];
                s.spawn(move || {
                    for ((queue, out), tim) in queue_chunk.iter().zip(outs_chunk).zip(tim_chunk) {
                        let start_ns = if time_plans { tracer.now_ns() } else { 0 };
                        Self::plan_queue(base, work_profile, now, queue, out);
                        *tim = PlanTiming {
                            start_ns,
                            dur_ns: if time_plans {
                                tracer.now_ns().saturating_sub(start_ns)
                            } else {
                                0
                            },
                        };
                    }
                });
                idx += take;
            }
        });
        workers
    }

    /// Builds the full schedule for `queue` (already in policy order) at
    /// time `now`, around the reservations of `running` jobs.
    ///
    /// Every queue job gets the earliest feasible start ≥ `now`; running
    /// jobs reserve their width until their estimated end (at least
    /// marginally past `now`, see the `RUNNING_PAD` constant).
    pub fn plan(
        &mut self,
        machine_size: u32,
        now: SimTime,
        running: &[RunningJob],
        queue: &[Job],
    ) -> Schedule {
        self.plan_with_reservations(machine_size, now, running, &[], queue)
    }

    /// Like [`Planner::plan`], but additionally blocks out fixed
    /// [`Reservation`](crate::reservation::Reservation) windows: the
    /// planner treats each active reservation's processors as unavailable
    /// over its interval, and queue jobs backfill around them.
    pub fn plan_with_reservations(
        &mut self,
        machine_size: u32,
        now: SimTime,
        running: &[RunningJob],
        reservations: &[crate::reservation::Reservation],
        queue: &[Job],
    ) -> Schedule {
        self.prepare(machine_size, now, running, reservations);
        let schedule = self.plan_prepared(queue);
        debug_assert!(
            schedule.validate(machine_size, running, now).is_ok(),
            "planner produced invalid schedule: {:?}",
            schedule.validate(machine_size, running, now)
        );
        schedule
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

/// The retained from-scratch planner: rebuilds the whole profile with
/// one allocate per running job and reservation on every call — exactly
/// the algorithm [`Planner`] used before the shared-base refactor, on
/// the retained linear-scan [`NaiveProfile`] it used at the time (so
/// benchmarked speedups compare the capacity-indexed profile against
/// the real pre-index code path, not against itself).
///
/// It exists as the correctness oracle (property tests assert its
/// schedules are bit-identical to the incremental path's) and as the
/// baseline the perf-trajectory harness measures speedups against. It is
/// not used on any production path.
#[derive(Debug)]
pub struct ReferencePlanner {
    profile: NaiveProfile,
}

impl ReferencePlanner {
    /// Creates a reference planner.
    pub fn new() -> Self {
        ReferencePlanner {
            profile: NaiveProfile::new(1, SimTime::ZERO),
        }
    }

    /// From-scratch counterpart of [`Planner::plan`].
    pub fn plan(
        &mut self,
        machine_size: u32,
        now: SimTime,
        running: &[RunningJob],
        queue: &[Job],
    ) -> Schedule {
        self.plan_with_reservations(machine_size, now, running, &[], queue)
    }

    /// From-scratch counterpart of [`Planner::plan_with_reservations`].
    pub fn plan_with_reservations(
        &mut self,
        machine_size: u32,
        now: SimTime,
        running: &[RunningJob],
        reservations: &[crate::reservation::Reservation],
        queue: &[Job],
    ) -> Schedule {
        self.profile.reset(machine_size, now);
        for r in running {
            let end = r.estimated_end().max(now + RUNNING_PAD);
            self.profile
                .allocate(now, end.saturating_since(now), r.job.width);
        }
        for res in reservations {
            if !res.active_at(now) {
                continue;
            }
            // Clip windows that already began past the running-job pad
            // (same rule as `Planner::prepare`).
            let start = res.start.max(now + RUNNING_PAD);
            self.profile
                .allocate(start, res.end().saturating_since(start), res.width);
        }
        let mut entries = Vec::with_capacity(queue.len());
        for job in queue {
            // Same over-wide rule as the incremental path: unplaceable
            // jobs stay out of the plan (bit-identity requires the two
            // planners to skip identically).
            if job.width > machine_size {
                continue;
            }
            let earliest = now.max(job.submit);
            let start = self
                .profile
                .allocate_earliest(earliest, job.estimate, job.width);
            entries.push(PlannedJob { job: *job, start });
        }
        let schedule = Schedule { entries };
        debug_assert!(
            schedule.validate(machine_size, running, now).is_ok(),
            "reference planner produced invalid schedule: {:?}",
            schedule.validate(machine_size, running, now)
        );
        schedule
    }
}

impl Default for ReferencePlanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use dynp_workload::JobId;
    use proptest::prelude::*;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_queue_gives_empty_schedule() {
        let mut p = Planner::new();
        let s = p.plan(8, t(100), &[], &[]);
        assert!(s.is_empty());
    }

    #[test]
    fn jobs_fill_the_idle_machine_immediately() {
        let mut p = Planner::new();
        let q = [j(0, 0, 4, 100), j(1, 0, 4, 50)];
        let s = p.plan(8, t(0), &[], &q);
        assert_eq!(s.entries[0].start, t(0));
        assert_eq!(s.entries[1].start, t(0));
    }

    #[test]
    fn queue_order_decides_who_waits() {
        let mut p = Planner::new();
        // Machine of 4: two width-3 jobs cannot overlap.
        let q = [j(0, 0, 3, 100), j(1, 0, 3, 50)];
        let s = p.plan(4, t(0), &[], &q);
        assert_eq!(s.entries[0].start, t(0));
        assert_eq!(s.entries[1].start, t(100)); // after job 0's estimate
    }

    #[test]
    fn implicit_backfilling_slots_small_jobs_into_gaps() {
        let mut p = Planner::new();
        // Running: 3 of 4 processors busy until t=100.
        let running = [RunningJob {
            job: j(9, 0, 3, 100),
            start: t(0),
        }];
        // Queue order: wide job first (must wait), narrow short job second.
        let q = [j(0, 0, 4, 50), j(1, 0, 1, 80)];
        let s = p.plan(4, t(0), &running, &q);
        assert_eq!(s.entries[0].start, t(100), "wide job waits for the machine");
        // The narrow job fits the single free processor *now* and ends
        // before the wide job's reservation: implicit backfill.
        assert_eq!(s.entries[1].start, t(0));
    }

    #[test]
    fn backfill_never_delays_higher_priority_reservations() {
        let mut p = Planner::new();
        let running = [RunningJob {
            job: j(9, 0, 3, 100),
            start: t(0),
        }];
        // Narrow but LONG job: running to t=120 on the free processor
        // would not delay the wide job (width 4 needs all processors at
        // t=100; 1 + 3(running) = 4 > 4 - job0 must wait for it? No:
        // job1 uses 1 proc until 120, so at t=100 only 3 free -> the
        // wide job is pushed to t=120. The planner places queue jobs in
        // order, so job0 reserves [100,150) FIRST and job1 must not
        // overlap it: earliest slot for job1 is t=150.
        let q = [j(0, 0, 4, 50), j(1, 0, 1, 120)];
        let s = p.plan(4, t(0), &running, &q);
        assert_eq!(s.entries[0].start, t(100));
        assert_eq!(s.entries[1].start, t(150));
    }

    #[test]
    fn running_jobs_block_their_width_until_estimated_end() {
        let mut p = Planner::new();
        let running = [
            RunningJob {
                job: j(8, 0, 2, 100),
                start: t(0),
            },
            RunningJob {
                job: j(9, 0, 2, 200),
                start: t(0),
            },
        ];
        let q = [j(0, 0, 3, 10)];
        let s = p.plan(4, t(50), &running, &q);
        // 0 free until 100, 2 free until 200, 4 free after.
        assert_eq!(s.entries[0].start, t(200));
    }

    #[test]
    fn overdue_running_job_blocks_the_present_instant() {
        let mut p = Planner::new();
        // Job started at 0 with estimate 100; we plan exactly at t=100
        // (its completion event has not been processed yet).
        let running = [RunningJob {
            job: j(9, 0, 4, 100),
            start: t(0),
        }];
        let q = [j(0, 0, 4, 10)];
        let s = p.plan(4, t(100), &running, &q);
        // The pad keeps the current instant blocked.
        assert!(s.entries[0].start > t(100));
        assert!(s.entries[0].start <= t(101));
    }

    #[test]
    fn planner_is_reusable_across_policies() {
        let mut p = Planner::new();
        let mut q = vec![j(0, 0, 2, 100), j(1, 1, 2, 10)];
        Policy::Sjf.sort_queue(&mut q);
        let sjf = p.plan(2, t(1), &[], &q);
        assert_eq!(sjf.entries[0].job.id, JobId(1));
        Policy::Ljf.sort_queue(&mut q);
        let ljf = p.plan(2, t(1), &[], &q);
        assert_eq!(ljf.entries[0].job.id, JobId(0));
        assert_eq!(ljf.entries[1].start, t(101));
    }

    #[test]
    fn one_prepare_serves_many_policy_passes() {
        let running = [RunningJob {
            job: j(9, 0, 3, 100),
            start: t(0),
        }];
        let mut q = vec![j(0, 0, 4, 50), j(1, 2, 1, 80)];
        let mut incremental = Planner::new();
        incremental.prepare(4, t(10), &running, &[]);
        let mut reference = ReferencePlanner::new();
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Ljf] {
            policy.sort_queue(&mut q);
            let fast = incremental.plan_prepared(&q);
            let slow = reference.plan(4, t(10), &running, &q);
            assert_eq!(fast.entries, slow.entries, "{policy:?} diverged");
        }
    }

    #[test]
    fn over_wide_jobs_are_left_out_of_the_plan() {
        // Machine degraded to 3 usable processors: the width-4 job has no
        // feasible start and must stay waiting, while the narrow job
        // plans normally. Both planners skip it identically.
        let q = [j(0, 0, 4, 100), j(1, 0, 2, 50)];
        let mut p = Planner::new();
        let s = p.plan(3, t(0), &[], &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries[0].job.id, JobId(1));
        assert_eq!(s.entries[0].start, t(0));
        let mut r = ReferencePlanner::new();
        let s2 = r.plan(3, t(0), &[], &q);
        assert_eq!(s.entries, s2.entries);
    }

    #[test]
    fn batch_planning_matches_sequential_for_every_worker_count() {
        let running = [RunningJob {
            job: j(9, 0, 3, 100),
            start: t(0),
        }];
        // Three differently ordered queues, like the self-tuning step's
        // per-policy orders.
        let base: Vec<Job> = (0..40)
            .map(|i| j(i, i as u64 % 7, 1 + i % 4, 10 + (i as u64 * 13) % 300))
            .collect();
        let mut queues = vec![base.clone(), base.clone(), base];
        Policy::Sjf.sort_queue(&mut queues[1]);
        Policy::Ljf.sort_queue(&mut queues[2]);

        let mut p = Planner::new();
        p.prepare(8, t(5), &running, &[]);
        let expected: Vec<Schedule> = queues.iter().map(|q| p.plan_prepared(q)).collect();
        for workers in [1usize, 2, 3, 8] {
            let mut outs = vec![Schedule::default(); 3];
            let mut timings = vec![PlanTiming::default(); 3];
            let used = p.plan_prepared_batch(&queues, &mut outs, &mut timings, workers);
            assert!(used >= 1 && used <= workers.max(1));
            for (got, want) in outs.iter().zip(&expected) {
                assert_eq!(got.entries, want.entries, "workers={workers} diverged");
            }
            // Tracing is off: timings must stay zeroed.
            assert!(timings.iter().all(|tm| *tm == PlanTiming::default()));
        }
    }

    #[test]
    fn plan_prepared_into_reuses_the_buffer() {
        let mut p = Planner::new();
        p.prepare(8, t(0), &[], &[]);
        let mut out = Schedule::default();
        p.plan_prepared_into(&[j(0, 0, 4, 10)], &mut out);
        assert_eq!(out.len(), 1);
        let q2 = [j(1, 0, 2, 5), j(2, 0, 2, 5)];
        p.plan_prepared_into(&q2, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out.entries[0].job.id, JobId(1));
        assert_eq!(p.plan_prepared(&q2).entries, out.entries);
    }

    mod reservations {
        use super::*;
        use crate::reservation::ReservationBook;

        #[test]
        fn jobs_plan_around_a_reservation() {
            let mut book = ReservationBook::new();
            book.add(t(100), SimDuration::from_secs(100), 4);
            let mut p = Planner::new();
            // Machine 4 fully reserved over [100, 200): a long job must
            // either finish before 100 or start at 200.
            let q = [j(0, 0, 2, 150)];
            let s = p.plan_with_reservations(4, t(0), &[], book.all(), &q);
            assert_eq!(s.entries[0].start, t(200));
        }

        #[test]
        fn short_jobs_backfill_before_the_reservation() {
            let mut book = ReservationBook::new();
            book.add(t(100), SimDuration::from_secs(100), 4);
            let mut p = Planner::new();
            let q = [j(0, 0, 4, 100), j(1, 0, 4, 50)];
            let s = p.plan_with_reservations(4, t(0), &[], book.all(), &q);
            // First job exactly fills [0, 100); second must wait out the
            // reservation.
            assert_eq!(s.entries[0].start, t(0));
            assert_eq!(s.entries[1].start, t(200));
        }

        #[test]
        fn partial_reservation_leaves_remaining_width_usable() {
            let mut book = ReservationBook::new();
            book.add(t(0), SimDuration::from_secs(1_000), 3);
            let mut p = Planner::new();
            let q = [j(0, 0, 1, 500), j(1, 0, 2, 500)];
            let s = p.plan_with_reservations(4, t(0), &[], book.all(), &q);
            assert_eq!(s.entries[0].start, t(0)); // 1 proc free alongside
            assert_eq!(s.entries[1].start, t(1_000)); // width 2 must wait
        }

        #[test]
        fn expired_and_started_windows_are_clipped() {
            let mut book = ReservationBook::new();
            book.add(t(0), SimDuration::from_secs(50), 4); // over by now
            book.add(t(80), SimDuration::from_secs(40), 4); // started, ends 120
            let mut p = Planner::new();
            let now = t(100);
            let q = [j(0, 0, 4, 10)];
            let s = p.plan_with_reservations(4, now, &[], book.all(), &q);
            // Only the live remainder [100, 120) blocks.
            assert_eq!(s.entries[0].start, t(120));
        }

        #[test]
        fn plan_is_plan_with_empty_reservations() {
            let mut p = Planner::new();
            let q = [j(0, 0, 2, 100), j(1, 0, 2, 50)];
            let a = p.plan(4, t(0), &[], &q);
            let b = p.plan_with_reservations(4, t(0), &[], &[], &q);
            assert_eq!(a.entries, b.entries);
        }

        #[test]
        fn overdue_running_job_coexists_with_full_width_window() {
            // A job estimated to end exactly at `now` still holds its
            // processors (completion event pending), while a full-width
            // window opens at `now`. The pad clip keeps the base profile
            // feasible instead of panicking on overcommit.
            let mut book = ReservationBook::new();
            book.add(t(100), SimDuration::from_secs(100), 4);
            let running = [RunningJob {
                job: j(9, 0, 1, 100),
                start: t(0),
            }];
            let mut p = Planner::new();
            let q = [j(0, 0, 2, 10)];
            let s = p.plan_with_reservations(4, t(100), &running, book.all(), &q);
            // The queue job must clear both the pad and the window.
            assert_eq!(s.entries[0].start, t(200));
            let mut r = ReferencePlanner::new();
            let s2 = r.plan_with_reservations(4, t(100), &running, book.all(), &q);
            assert_eq!(s.entries, s2.entries);
        }

        #[test]
        fn window_fits_checks_capacity_against_the_base() {
            let mut book = ReservationBook::new();
            book.add(t(100), SimDuration::from_secs(100), 3);
            let mut p = Planner::new();
            p.prepare(4, t(0), &[], book.all());
            // One processor is left over [100, 200).
            assert!(p.window_fits(t(100), SimDuration::from_secs(100), 1));
            assert!(!p.window_fits(t(100), SimDuration::from_secs(100), 2));
            // Disjoint window: full machine available.
            assert!(p.window_fits(t(200), SimDuration::from_secs(50), 4));
            // Overlapping the tail only.
            assert!(!p.window_fits(t(150), SimDuration::from_secs(100), 2));
            // Degenerate widths.
            assert!(!p.window_fits(t(300), SimDuration::from_secs(10), 0));
            assert!(!p.window_fits(t(300), SimDuration::from_secs(10), 5));
            // A window already over at the prepare instant absorbs trivially.
            p.prepare(4, t(500), &[], book.all());
            assert!(p.window_fits(t(100), SimDuration::from_secs(100), 4));
        }

        #[test]
        fn window_fits_accounts_for_running_jobs() {
            let running = [RunningJob {
                job: j(9, 0, 3, 100),
                start: t(0),
            }];
            let mut p = Planner::new();
            p.prepare(4, t(0), &running, &[]);
            assert!(p.window_fits(t(0), SimDuration::from_secs(50), 1));
            assert!(!p.window_fits(t(0), SimDuration::from_secs(50), 2));
            assert!(p.window_fits(t(100), SimDuration::from_secs(50), 4));
        }
    }

    proptest! {
        /// For any queue and running set, the planner's schedule passes
        /// full validation (no overcommit, no past starts).
        #[test]
        fn planned_schedules_always_validate(
            widths in proptest::collection::vec(1u32..8, 1..40),
            ests in proptest::collection::vec(1u64..500, 1..40),
            submits in proptest::collection::vec(0u64..100, 1..40),
            n_running in 0usize..4,
        ) {
            let n = widths.len().min(ests.len()).min(submits.len());
            let machine = 8u32;
            let now = t(100);
            let mut running = Vec::new();
            let mut used = 0u32;
            for i in 0..n_running.min(n) {
                let w = widths[i].min(machine - used);
                if w == 0 { break; }
                used += w;
                running.push(RunningJob {
                    job: j(1000 + i as u32, 0, w, ests[i] + 150),
                    start: t(50),
                });
            }
            let queue: Vec<Job> = (0..n)
                .map(|i| j(i as u32, submits[i], widths[i], ests[i]))
                .collect();
            let mut p = Planner::new();
            let s = p.plan(machine, now, &running, &queue);
            prop_assert_eq!(s.len(), n);
            prop_assert!(s.validate(machine, &running, now).is_ok(),
                         "{:?}", s.validate(machine, &running, now));
        }

        /// FCFS planning is monotone for equal-width jobs: a job never
        /// starts before an identical job submitted earlier.
        #[test]
        fn fcfs_equal_jobs_start_in_order(
            n in 2usize..30,
            width in 1u32..4,
            est in 1u64..100,
        ) {
            let queue: Vec<Job> = (0..n)
                .map(|i| j(i as u32, i as u64, width, est))
                .collect();
            let mut p = Planner::new();
            let s = p.plan(4, t(100), &[], &queue);
            for w in s.entries.windows(2) {
                prop_assert!(w[0].start <= w[1].start);
            }
        }

        /// Equivalence oracle: the shared-base planner and the retained
        /// from-scratch reference produce bit-identical schedules for
        /// every policy order of a random queue over random running
        /// jobs — including repeated plan_prepared calls against one
        /// prepare.
        #[test]
        fn incremental_planner_matches_reference(
            widths in proptest::collection::vec(1u32..8, 1..40),
            ests in proptest::collection::vec(1u64..500, 1..40),
            submits in proptest::collection::vec(0u64..100, 1..40),
            n_running in 0usize..5,
            now_s in 0u64..200,
            // Degraded capacities (node outages shrink the plannable
            // machine): widths up to 7 make some jobs over-wide, which
            // both planners must skip identically.
            machine in 2u32..9,
        ) {
            let n = widths.len().min(ests.len()).min(submits.len());
            let now = t(now_s);
            let mut running = Vec::new();
            let mut used = 0u32;
            for i in 0..n_running.min(n) {
                let w = widths[i].min(machine - used);
                if w == 0 { break; }
                used += w;
                running.push(RunningJob {
                    // Estimates straddle `now` so some running jobs are
                    // overdue (exercising RUNNING_PAD) and some are not.
                    job: j(1000 + i as u32, 0, w, ests[i]),
                    start: t(now_s.saturating_sub(50)),
                });
            }
            let mut queue: Vec<Job> = (0..n)
                .map(|i| j(i as u32, submits[i], widths[i], ests[i]))
                .collect();
            let mut incremental = Planner::new();
            incremental.prepare(machine, now, &running, &[]);
            let mut reference = ReferencePlanner::new();
            for policy in Policy::ALL {
                policy.sort_queue(&mut queue);
                let fast = incremental.plan_prepared(&queue);
                let slow = reference.plan(machine, now, &running, &queue);
                prop_assert_eq!(&fast.entries, &slow.entries,
                                "{:?} diverged from reference", policy);
                // The one-shot wrapper takes the same incremental path.
                let wrapped = Planner::new().plan(machine, now, &running, &queue);
                prop_assert_eq!(&wrapped.entries, &slow.entries);
            }
        }
    }
}
