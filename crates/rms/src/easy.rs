//! EASY backfilling — the *queueing* counterpart to the planning RMS.
//!
//! The paper's introduction notes that "most commonly used is first come
//! first serve (FCFS) combined with backfilling [Lifka 1995, Skovira
//! 1996, Mu'alem & Feitelson 2001]". Planning-based systems backfill
//! implicitly; queueing systems run the explicit EASY algorithm instead:
//!
//! 1. start queue-head jobs while they fit;
//! 2. when the head does not fit, give it a *reservation* at the shadow
//!    time (the earliest instant enough processors free up, assuming
//!    running jobs hold their estimate);
//! 3. scan the rest of the queue and start ("backfill") any job that
//!    fits now and does not delay the reservation — either because it
//!    ends before the shadow time, or because it only uses the extra
//!    processors the head job will not need.
//!
//! Including EASY lets the harness compare queueing against planning on
//! identical workloads (ablation A4) — the contrast the dynP line of
//! work builds on (Hovestadt et al., "Queuing vs. Planning").

use crate::planner::RUNNING_PAD;
use crate::policy::Policy;
use crate::profile::Profile;
use crate::schedule::{PlannedJob, Schedule};
use crate::scheduler::{ReplanReason, Scheduler};
use crate::state::RmsState;
use dynp_des::SimTime;
use dynp_workload::Job;

/// Queueing scheduler with EASY backfilling.
///
/// The queue is kept in the order of `policy` (EASY is traditionally
/// FCFS, but any total order works — an SJF-ordered EASY is the queueing
/// analogue of the planning SJF baseline).
///
/// When the RMS state carries admitted reservation windows, EASY treats
/// them as *shadow constraints*: a job may only start now if its whole
/// estimated run fits the free-capacity profile alongside the running
/// jobs, the head job's shadow reservation *and* every admitted window —
/// so queueing-vs-planning ablations stay comparable on mixed batch +
/// guaranteed-start traffic. Reservation-free states take the classic
/// EASY code path unchanged.
#[derive(Debug)]
pub struct EasyBackfillScheduler {
    policy: Policy,
    queue_buf: Vec<Job>,
    /// Free-capacity profile for the reservation-aware path.
    profile: Profile,
    /// Scratch span list for the profile sweep.
    spans: Vec<(SimTime, SimTime, u32)>,
    /// Scratch endpoint buffer for the profile sweep.
    events: Vec<(SimTime, i64)>,
    /// Number of jobs started by backfilling rather than at the head.
    pub backfilled: u64,
}

impl EasyBackfillScheduler {
    /// Creates an EASY scheduler ordering its queue by `policy`.
    pub fn new(policy: Policy) -> Self {
        EasyBackfillScheduler {
            policy,
            queue_buf: Vec::new(),
            profile: Profile::new(1, SimTime::ZERO),
            spans: Vec::new(),
            events: Vec::new(),
            backfilled: 0,
        }
    }

    /// The classic EASY configuration (FCFS order).
    pub fn fcfs() -> Self {
        Self::new(Policy::Fcfs)
    }

    /// EASY over a free-capacity profile that blocks out admitted
    /// reservation windows (and the running jobs, padded exactly as the
    /// planner pads them). Same three phases as the classic algorithm,
    /// with "fits" generalized from "enough processors free this instant"
    /// to "the whole estimated run fits the profile starting now":
    ///
    /// 1. start head jobs whose full run fits now;
    /// 2. give the first stuck head a shadow reservation at its earliest
    ///    profile fit;
    /// 3. backfill any later job whose full run still fits now — by
    ///    construction it delays neither the shadow reservation nor any
    ///    admitted window.
    ///
    /// On states without reservations the generalized fit test agrees
    /// with the classic one (free capacity only grows as running jobs
    /// drain), but the classic path is kept verbatim for them anyway.
    fn replan_with_windows(&mut self, state: &RmsState, now: SimTime) -> Schedule {
        let capacity = state.plan_capacity();
        self.spans.clear();
        for r in state.running() {
            let end = r.estimated_end().max(now + RUNNING_PAD);
            self.spans.push((now, end, r.job.width));
        }
        for res in state.reservations().active(now) {
            self.spans
                .push((res.start.max(now + RUNNING_PAD), res.end(), res.width));
        }
        self.profile
            .rebuild_from_spans(capacity, now, &self.spans, &mut self.events);

        let mut entries: Vec<PlannedJob> = Vec::new();
        let mut idx = 0;

        // Phase 1: start head jobs while their whole run fits now. A job
        // wider than the degraded machine gets stuck here (it cannot run
        // until node repair).
        while idx < self.queue_buf.len() {
            let job = self.queue_buf[idx];
            if job.width > capacity
                || self.profile.earliest_fit(now, job.estimate, job.width) != now
            {
                break;
            }
            self.profile.allocate(now, job.estimate, job.width);
            entries.push(PlannedJob { job, start: now });
            idx += 1;
        }
        if idx >= self.queue_buf.len() {
            return Schedule { entries };
        }

        // Phase 2: shadow reservation for the stuck head at its earliest
        // profile fit. An over-wide head has no feasible fit at any time
        // and therefore imposes no shadow constraint.
        let head = self.queue_buf[idx];
        if head.width <= capacity {
            let _shadow = self
                .profile
                .allocate_earliest(now, head.estimate, head.width);
        }

        // Phase 3: backfill later jobs that still fit now.
        for job in &self.queue_buf[idx + 1..] {
            if job.width <= capacity
                && self.profile.earliest_fit(now, job.estimate, job.width) == now
            {
                self.profile.allocate(now, job.estimate, job.width);
                entries.push(PlannedJob {
                    job: *job,
                    start: now,
                });
                self.backfilled += 1;
            }
        }
        Schedule { entries }
    }
}

impl Scheduler for EasyBackfillScheduler {
    /// Returns a schedule containing exactly the jobs to start *now*
    /// (queueing systems assign no future start times; the driver keeps
    /// the rest waiting).
    fn replan(&mut self, state: &RmsState, now: SimTime, _reason: ReplanReason) -> Schedule {
        self.queue_buf.clear();
        self.queue_buf.extend_from_slice(state.waiting());
        self.policy.sort_queue(&mut self.queue_buf);

        if state.reservations().active(now).next().is_some() {
            return self.replan_with_windows(state, now);
        }

        let mut free = state.free_processors();
        let mut entries: Vec<PlannedJob> = Vec::new();
        let mut idx = 0;

        // Phase 1: start head jobs while they fit.
        while idx < self.queue_buf.len() && self.queue_buf[idx].width <= free {
            let job = self.queue_buf[idx];
            free -= job.width;
            entries.push(PlannedJob { job, start: now });
            idx += 1;
        }
        if idx >= self.queue_buf.len() {
            return Schedule { entries };
        }

        // Phase 2: reservation for the non-fitting head job. Walk the
        // running jobs (and the jobs just started above) by estimated
        // end; the shadow time is when enough processors accumulate. A
        // head wider than the degraded machine never fits, so it imposes
        // no shadow constraint (it waits for node repair regardless).
        let head = self.queue_buf[idx];
        let mut shadow = SimTime::MAX;
        let mut extra = 0u32;
        if head.width <= state.plan_capacity() {
            let mut ends: Vec<(SimTime, u32)> = state
                .running()
                .iter()
                .map(|r| (r.estimated_end(), r.job.width))
                .chain(
                    entries
                        .iter()
                        .map(|e| (e.start.saturating_add(e.job.estimate), e.job.width)),
                )
                .collect();
            ends.sort_by_key(|&(t, _)| t);
            let mut avail = free;
            for (end, width) in ends {
                avail += width;
                if avail >= head.width {
                    shadow = end;
                    extra = avail - head.width;
                    break;
                }
            }
            debug_assert!(
                shadow != SimTime::MAX,
                "head job must fit once everything drains"
            );
        }

        // Phase 3: backfill the remaining queue in order.
        for job in &self.queue_buf[idx + 1..] {
            if job.width > free {
                continue;
            }
            let ends_before_shadow = now.saturating_add(job.estimate) <= shadow;
            if ends_before_shadow {
                free -= job.width;
                entries.push(PlannedJob {
                    job: *job,
                    start: now,
                });
                self.backfilled += 1;
            } else if job.width <= extra {
                free -= job.width;
                extra -= job.width;
                entries.push(PlannedJob {
                    job: *job,
                    start: now,
                });
                self.backfilled += 1;
            }
        }
        Schedule { entries }
    }

    fn active_policy(&self) -> Policy {
        self.policy
    }

    fn name(&self) -> String {
        if self.policy == Policy::Fcfs {
            "EASY".to_string()
        } else {
            format!("EASY[{}]", self.policy.name())
        }
    }

    fn snapshot(&self) -> Option<crate::scheduler::SchedulerSnapshot> {
        // The profile/span buffers are rebuilt per replan; only the
        // backfill counter survives across events.
        Some(crate::scheduler::SchedulerSnapshot {
            tag: "easy",
            words: vec![self.backfilled],
        })
    }

    fn restore(&mut self, snap: &crate::scheduler::SchedulerSnapshot) {
        assert_eq!(snap.tag, "easy", "snapshot from a different scheduler");
        self.backfilled = snap.words[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn started(s: &Schedule) -> Vec<u32> {
        s.entries.iter().map(|e| e.job.id.0).collect()
    }

    #[test]
    fn starts_head_jobs_that_fit() {
        let mut state = RmsState::new(8);
        state.submit(j(0, 0, 4, 100));
        state.submit(j(1, 1, 4, 100));
        state.submit(j(2, 2, 4, 100)); // does not fit
        let mut easy = EasyBackfillScheduler::fcfs();
        let s = easy.replan(&state, SimTime::from_secs(2), ReplanReason::Submission);
        assert_eq!(started(&s), vec![0, 1]);
        assert_eq!(easy.backfilled, 0);
    }

    #[test]
    fn backfills_short_jobs_under_the_reservation() {
        // Machine 4; a width-3 job runs until t=100. Queue: wide head
        // (width 4, blocked) then a short narrow job that ends before the
        // shadow time → backfilled.
        let mut state = RmsState::new(4);
        state.submit(j(9, 0, 3, 100));
        let mut easy = EasyBackfillScheduler::fcfs();
        let s0 = easy.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        for e in s0.due(SimTime::ZERO) {
            state.start(e.job.id, SimTime::ZERO);
        }
        state.submit(j(0, 1, 4, 50)); // head, blocked until t=100
        state.submit(j(1, 1, 1, 80)); // ends at 81 < 100 → backfill
        state.submit(j(2, 1, 1, 200)); // would end at 201 > 100, no extra → skip
        let now = SimTime::from_secs(1);
        let s = easy.replan(&state, now, ReplanReason::Submission);
        assert_eq!(started(&s), vec![1]);
        assert_eq!(easy.backfilled, 1);
    }

    #[test]
    fn backfills_on_extra_processors_past_the_shadow() {
        // Machine 8; width-4 running until t=100. Head needs 6 → shadow
        // t=100, extra = (4+4) - 6 = 2. A long width-2 job may run past
        // the shadow on the extra processors.
        let mut state = RmsState::new(8);
        state.submit(j(9, 0, 4, 100));
        let mut easy = EasyBackfillScheduler::fcfs();
        let s0 = easy.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        for e in s0.due(SimTime::ZERO) {
            state.start(e.job.id, SimTime::ZERO);
        }
        state.submit(j(0, 1, 6, 50)); // head, blocked
        state.submit(j(1, 1, 2, 10_000)); // long but fits the 2 extra
        state.submit(j(2, 1, 2, 10_000)); // extra exhausted → must wait
        let now = SimTime::from_secs(1);
        let s = easy.replan(&state, now, ReplanReason::Submission);
        assert_eq!(started(&s), vec![1]);
    }

    #[test]
    fn backfill_never_delays_the_head_reservation() {
        // End-to-end: the head job must start no later than the shadow
        // time computed when it got stuck (running estimates are upper
        // bounds, so early completions can only improve it).
        let mut state = RmsState::new(4);
        state.submit(j(9, 0, 3, 100));
        let mut easy = EasyBackfillScheduler::fcfs();
        let s = easy.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        let run9 = state.start(s.entries[0].job.id, SimTime::ZERO);
        state.submit(j(0, 1, 4, 50));
        state.submit(j(1, 1, 1, 80));
        let now = SimTime::from_secs(1);
        let s = easy.replan(&state, now, ReplanReason::Submission);
        let run1 = state.start(s.entries[0].job.id, now);
        // Completions at estimated ends.
        state.complete(run1.job.id, run1.actual_end());
        state.complete(run9.job.id, run9.actual_end());
        let s = easy.replan(&state, SimTime::from_secs(100), ReplanReason::Completion);
        assert_eq!(started(&s), vec![0]); // head starts exactly at shadow
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let state = RmsState::new(4);
        let mut easy = EasyBackfillScheduler::fcfs();
        let s = easy.replan(&state, SimTime::ZERO, ReplanReason::Completion);
        assert!(s.is_empty());
        assert_eq!(easy.name(), "EASY");
        assert_eq!(easy.active_policy(), Policy::Fcfs);
    }

    #[test]
    fn windows_block_jobs_that_would_overlap_them() {
        // Machine 4, idle, full-width window [50, 100). A job estimated
        // at 100 s would run into it → must wait; a 50 s job exactly fits
        // the gap and starts.
        let mut state = RmsState::new(4);
        state.admit_reservation(SimTime::from_secs(50), SimDuration::from_secs(50), 4);
        state.submit(j(0, 0, 4, 100));
        state.submit(j(1, 0, 2, 50));
        let mut easy = EasyBackfillScheduler::fcfs();
        let s = easy.replan(&state, SimTime::ZERO, ReplanReason::Submission);
        assert_eq!(started(&s), vec![1]);
        assert_eq!(easy.backfilled, 1);
    }

    #[test]
    fn partial_window_leaves_width_usable() {
        // Window takes 3 of 4 processors over [0+, 1000): a width-1 job
        // coexists, a width-2 job cannot.
        let mut state = RmsState::new(4);
        state.admit_reservation(SimTime::ZERO, SimDuration::from_secs(1_000), 3);
        state.submit(j(0, 1, 2, 100));
        state.submit(j(1, 1, 1, 100));
        let mut easy = EasyBackfillScheduler::fcfs();
        let now = SimTime::from_secs(1);
        let s = easy.replan(&state, now, ReplanReason::Submission);
        assert_eq!(started(&s), vec![1]);
    }

    #[test]
    fn expired_windows_restore_the_classic_path() {
        let mut state = RmsState::new(4);
        state.admit_reservation(SimTime::ZERO, SimDuration::from_secs(10), 4);
        state.submit(j(0, 0, 4, 100));
        let mut easy = EasyBackfillScheduler::fcfs();
        // While the window holds, the job waits.
        let s = easy.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert!(s.is_empty());
        // Once it ends, the classic path runs and the job starts.
        let s = easy.replan(&state, SimTime::from_secs(10), ReplanReason::Reservation);
        assert_eq!(started(&s), vec![0]);
    }

    #[test]
    fn sjf_ordered_easy_reorders_the_queue() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 1_000));
        state.submit(j(1, 1, 2, 10));
        let mut easy = EasyBackfillScheduler::new(Policy::Sjf);
        let s = easy.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(started(&s), vec![1]); // shortest first
        assert_eq!(easy.name(), "EASY[SJF]");
    }
}
