//! Advance reservations — fixed-time resource blocks the planner must
//! plan around.
//!
//! Planning-based RMSs (the paper's CCS among them) support reserving
//! processors for a fixed future interval: maintenance windows,
//! interactive sessions at a guaranteed hour, co-allocation with other
//! sites. A reservation is not a job — it never enters a queue and never
//! moves; the planner simply treats its interval as unavailable capacity.
//!
//! This module extends the substrate beyond the paper's minimum: the
//! [`ReservationBook`] tracks active reservations, and
//! [`crate::Planner::plan_with_reservations`] builds full schedules
//! around them (jobs still backfill *before* a reservation when they fit).

use dynp_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A fixed block of processors over a fixed interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reservation {
    /// Identifier (unique within a book).
    pub id: u32,
    /// First reserved instant.
    pub start: SimTime,
    /// Length of the reserved window.
    pub duration: SimDuration,
    /// Reserved processors.
    pub width: u32,
}

impl Reservation {
    /// One past the last reserved instant.
    pub fn end(&self) -> SimTime {
        self.start.saturating_add(self.duration)
    }

    /// True when the reservation still overlaps `[now, ∞)`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.end() > now
    }
}

/// What schedule repair did to one admitted window after a capacity loss
/// (see `RmsState::repair_reservations`). Carried into the reservation
/// statistics and the trace so guarantee erosion is attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairAction {
    /// The window no longer fit at its promised width and was shrunk to
    /// the widest width that still fits (best effort).
    Downgraded {
        /// Book id of the window.
        id: u32,
        /// Promised width before the repair.
        from_width: u32,
        /// Width the window was shrunk to.
        to_width: u32,
    },
    /// The window fit at no width and was cancelled by the system.
    Revoked {
        /// Book id of the window.
        id: u32,
    },
}

/// A collection of advance reservations with id-based bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReservationBook {
    reservations: Vec<Reservation>,
    next_id: u32,
}

impl ReservationBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a reservation and returns its id.
    ///
    /// # Panics
    /// Panics on zero width or duration (an empty reservation is a bug,
    /// not a request).
    pub fn add(&mut self, start: SimTime, duration: SimDuration, width: u32) -> u32 {
        assert!(width > 0, "reservation needs processors");
        assert!(!duration.is_zero(), "reservation needs a duration");
        let id = self.next_id;
        self.next_id += 1;
        self.reservations.push(Reservation {
            id,
            start,
            duration,
            width,
        });
        id
    }

    /// Cancels a reservation; returns whether it existed.
    pub fn cancel(&mut self, id: u32) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.id != id);
        before != self.reservations.len()
    }

    /// Shrinks an admitted window to `new_width` *in place* — the id and
    /// interval are preserved (unlike cancel + re-add, which would assign
    /// a fresh id). Returns whether the window existed.
    ///
    /// # Panics
    /// Panics on zero width or on widening (repair only ever shrinks).
    pub fn downgrade(&mut self, id: u32, new_width: u32) -> bool {
        assert!(new_width > 0, "reservation needs processors");
        match self.reservations.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                assert!(new_width < r.width, "downgrade must shrink the window");
                r.width = new_width;
                true
            }
            None => false,
        }
    }

    /// Drops reservations that ended at or before `now`; returns how many
    /// were removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.active_at(now));
        before - self.reservations.len()
    }

    /// Reservations still active at `now`.
    pub fn active(&self, now: SimTime) -> impl Iterator<Item = &Reservation> {
        self.reservations.iter().filter(move |r| r.active_at(now))
    }

    /// All reservations in the book.
    pub fn all(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Total processor-seconds currently booked from `now` on (clipping
    /// windows that already began).
    pub fn booked_area(&self, now: SimTime) -> f64 {
        self.active(now)
            .map(|r| {
                let start = r.start.max(now);
                r.end().saturating_since(start).as_secs_f64() * r.width as f64
            })
            .sum()
    }

    /// Appends the book's exact state — windows *and* the id counter — to
    /// a checkpoint buffer. The counter is not derivable from the live
    /// windows (cancelled ids are never reused), so it must be persisted
    /// for a restored book to keep assigning the ids the uninterrupted
    /// run would have.
    pub fn encode_into(&self, w: &mut dynp_des::ByteWriter) {
        w.u32(self.next_id);
        w.u32(self.reservations.len() as u32);
        for r in &self.reservations {
            w.u32(r.id);
            w.u64(r.start.as_millis());
            w.u64(r.duration.as_millis());
            w.u32(r.width);
        }
    }

    /// Decodes a book written by [`ReservationBook::encode_into`].
    pub fn decode_from(r: &mut dynp_des::ByteReader<'_>) -> Result<Self, dynp_des::CodecError> {
        let next_id = r.u32()?;
        let n = r.u32()? as usize;
        let mut reservations = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            reservations.push(Reservation {
                id: r.u32()?,
                start: SimTime::from_millis(r.u64()?),
                duration: SimDuration::from_millis(r.u64()?),
                width: r.u32()?,
            });
        }
        Ok(ReservationBook {
            reservations,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn add_cancel_expire_life_cycle() {
        let mut book = ReservationBook::new();
        let a = book.add(t(100), d(50), 4);
        let b = book.add(t(300), d(50), 8);
        assert_eq!(book.all().len(), 2);
        assert!(book.cancel(a));
        assert!(!book.cancel(a));
        assert_eq!(book.all().len(), 1);
        // b ends at 350; expiring at 350 removes it.
        assert_eq!(book.expire(t(350)), 1);
        assert!(book.all().is_empty());
        let _ = b;
    }

    #[test]
    fn active_filters_by_end_time() {
        let mut book = ReservationBook::new();
        book.add(t(0), d(100), 2);
        book.add(t(500), d(100), 2);
        assert_eq!(book.active(t(50)).count(), 2);
        assert_eq!(book.active(t(100)).count(), 1); // first ended exactly
        assert_eq!(book.active(t(700)).count(), 0);
    }

    #[test]
    fn booked_area_clips_started_windows() {
        let mut book = ReservationBook::new();
        book.add(t(0), d(100), 2); // 200 proc-s total
        book.add(t(200), d(10), 10); // 100 proc-s
                                     // At t=50 the first window has 50 s left → 100 + 100.
        assert!((book.booked_area(t(50)) - 200.0).abs() < 1e-9);
        assert!((book.booked_area(t(0)) - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs processors")]
    fn zero_width_is_rejected() {
        ReservationBook::new().add(t(0), d(10), 0);
    }

    #[test]
    fn downgrade_shrinks_in_place_and_keeps_the_id() {
        let mut book = ReservationBook::new();
        let a = book.add(t(100), d(50), 8);
        let b = book.add(t(300), d(50), 4);
        assert!(book.downgrade(a, 3));
        assert!(!book.downgrade(99, 1));
        let w = book.all().iter().find(|r| r.id == a).unwrap();
        assert_eq!(w.width, 3);
        assert_eq!(w.start, t(100));
        // The other window and the id counter are untouched.
        assert_eq!(book.all().iter().find(|r| r.id == b).unwrap().width, 4);
        assert_eq!(book.add(t(500), d(10), 1), 2);
    }

    #[test]
    #[should_panic(expected = "must shrink")]
    fn downgrade_cannot_widen() {
        let mut book = ReservationBook::new();
        let a = book.add(t(100), d(50), 2);
        book.downgrade(a, 5);
    }
}
