//! The scheduler abstraction the simulation driver calls at every event,
//! plus the static single-policy baseline of the paper.

use crate::planner::Planner;
use crate::policy::Policy;
use crate::schedule::Schedule;
use crate::state::RmsState;
use dynp_des::SimTime;
use dynp_obs::Tracer;
use dynp_workload::Job;

/// Reasons the RMS asks for a new schedule. "Such a self-tuning dynP step
/// is done each time the planning based RMS has to compute a new schedule,
/// that is when jobs are submitted and when executed jobs finish." The
/// paper also mentions restricting self-tuning to submissions only; the
/// reason lets schedulers implement that option.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplanReason {
    /// One or more jobs were just submitted.
    Submission,
    /// A running job just finished.
    Completion,
    /// The reservation book changed (a window was admitted, ended or was
    /// cancelled) — capacity shifted without any job event.
    Reservation,
    /// A fault event changed the machine itself: a node went down or came
    /// back, or a running job failed and was evicted. Capacity (and
    /// possibly the queue) shifted, so the schedule must be repaired.
    Fault,
}

/// An opaque value capture of a scheduler's cross-event state.
///
/// Planners and scratch buffers are rebuilt from the [`RmsState`] on the
/// next replan, so a snapshot only needs the state that *survives*
/// events: the active policy, switch statistics, counters. Each
/// implementation encodes those into `words` however it likes; `tag`
/// guards against restoring into the wrong implementation. `Hash + Eq`
/// let the snapshot participate directly in model-checker fingerprints.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SchedulerSnapshot {
    /// Implementation marker — restore panics on a mismatch.
    pub tag: &'static str,
    /// Implementation-defined encoding of the mutable state.
    pub words: Vec<u64>,
}

impl SchedulerSnapshot {
    /// Tags every scheduler implementation in the workspace uses. The
    /// decoder interns against this list so a decoded snapshot carries
    /// the same `&'static str` a live one would — an unknown tag in a
    /// checkpoint is a typed error, not a dangling reference.
    const KNOWN_TAGS: &'static [&'static str] = &["static", "dynp"];

    /// Appends the snapshot to a checkpoint buffer.
    pub fn encode_into(&self, w: &mut dynp_des::ByteWriter) {
        w.str(self.tag);
        w.u32(self.words.len() as u32);
        for &word in &self.words {
            w.u64(word);
        }
    }

    /// Decodes a snapshot written by [`SchedulerSnapshot::encode_into`],
    /// interning the tag against the known implementations.
    pub fn decode_from(r: &mut dynp_des::ByteReader<'_>) -> Result<Self, dynp_des::CodecError> {
        let raw = r.str()?;
        let tag = Self::KNOWN_TAGS.iter().copied().find(|t| *t == raw).ok_or(
            dynp_des::CodecError::Invalid {
                what: "scheduler snapshot tag",
            },
        )?;
        let n = r.u32()? as usize;
        let mut words = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            words.push(r.u64()?);
        }
        Ok(SchedulerSnapshot { tag, words })
    }
}

/// A scheduler: turns the current RMS state into a full schedule.
///
/// Called by the driver after every event; the driver then starts every
/// job whose planned start is due and keeps the rest waiting.
///
/// `Send` so a federation can move each cluster's scheduler onto a shard
/// worker thread; every scheduler in the workspace is plain owned data.
pub trait Scheduler: Send {
    /// Computes a full schedule for the waiting queue at `now`.
    fn replan(&mut self, state: &RmsState, now: SimTime, reason: ReplanReason) -> Schedule;

    /// The policy currently in force (for switch statistics/logging).
    fn active_policy(&self) -> Policy;

    /// Display name, e.g. `"SJF"` or `"dynP(preferred=SJF)"`.
    fn name(&self) -> String;

    /// Installs an observability tracer. Schedulers that emit trace
    /// events (plan timings, decider verdicts, policy switches) override
    /// this; the default ignores the tracer, so plain schedulers need no
    /// changes and tracing can never alter scheduling behavior.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Captures the scheduler's cross-event state as a value, or `None`
    /// when the implementation does not support snapshotting (the model
    /// checker refuses such schedulers up front).
    fn snapshot(&self) -> Option<SchedulerSnapshot> {
        None
    }

    /// Restores state captured by [`Scheduler::snapshot`] on the same
    /// implementation. Implementations must guarantee that a restored
    /// scheduler replans bit-identically to the snapshotted one.
    ///
    /// # Panics
    /// The default panics: restoring into a scheduler that never
    /// produced a snapshot is a caller bug.
    fn restore(&mut self, _snap: &SchedulerSnapshot) {
        panic!("{} does not support snapshot/restore", self.name());
    }
}

/// The paper's baseline: a single fixed policy (with the implicit
/// backfilling every planning-based RMS provides).
#[derive(Debug)]
pub struct StaticScheduler {
    policy: Policy,
    planner: Planner,
    queue_buf: Vec<Job>,
}

impl StaticScheduler {
    /// Creates a static scheduler for `policy`.
    pub fn new(policy: Policy) -> Self {
        StaticScheduler {
            policy,
            planner: Planner::new(),
            queue_buf: Vec::new(),
        }
    }
}

impl Scheduler for StaticScheduler {
    fn replan(&mut self, state: &RmsState, now: SimTime, _reason: ReplanReason) -> Schedule {
        self.queue_buf.clear();
        self.queue_buf.extend_from_slice(state.waiting());
        self.policy.sort_queue(&mut self.queue_buf);
        self.planner.plan_with_reservations(
            state.plan_capacity(),
            now,
            state.running(),
            state.reservation_slice(),
            &self.queue_buf,
        )
    }

    fn active_policy(&self) -> Policy {
        self.policy
    }

    fn name(&self) -> String {
        self.policy.name().to_string()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.planner.set_tracer(tracer);
    }

    fn snapshot(&self) -> Option<SchedulerSnapshot> {
        // Everything a static scheduler computes is a pure function of
        // the RmsState handed to `replan`; the policy is immutable config
        // and the planner/queue buffers are rebuilt every call.
        Some(SchedulerSnapshot {
            tag: "static",
            words: Vec::new(),
        })
    }

    fn restore(&mut self, snap: &SchedulerSnapshot) {
        assert_eq!(snap.tag, "static", "snapshot from a different scheduler");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimDuration;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    #[test]
    fn static_scheduler_orders_by_its_policy() {
        let mut state = RmsState::new(2);
        state.submit(j(0, 0, 2, 100));
        state.submit(j(1, 1, 2, 10));

        let mut sjf = StaticScheduler::new(Policy::Sjf);
        let s = sjf.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.entries[0].job.id, JobId(1));
        assert_eq!(sjf.name(), "SJF");
        assert_eq!(sjf.active_policy(), Policy::Sjf);

        let mut ljf = StaticScheduler::new(Policy::Ljf);
        let s = ljf.replan(&state, SimTime::from_secs(1), ReplanReason::Submission);
        assert_eq!(s.entries[0].job.id, JobId(0));
    }

    #[test]
    fn static_scheduler_plans_around_admitted_windows() {
        let mut state = RmsState::new(4);
        state.submit(j(0, 0, 4, 100));
        state.admit_reservation(SimTime::from_secs(50), SimDuration::from_secs(50), 4);
        let mut sched = StaticScheduler::new(Policy::Fcfs);
        let s = sched.replan(&state, SimTime::ZERO, ReplanReason::Reservation);
        // The full-width job cannot finish before the window: it waits it out.
        assert_eq!(s.entries[0].start, SimTime::from_secs(100));
    }

    #[test]
    fn snapshot_codec_interns_tags_and_rejects_unknown_ones() {
        let snap = SchedulerSnapshot {
            tag: "dynp",
            words: vec![1, 2, u64::MAX],
        };
        let mut w = dynp_des::ByteWriter::new();
        snap.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = dynp_des::ByteReader::new(&bytes);
        let restored = SchedulerSnapshot::decode_from(&mut r).unwrap();
        assert_eq!(restored, snap);
        assert!(r.is_exhausted());

        let mut w = dynp_des::ByteWriter::new();
        w.str("mystery-scheduler");
        w.u32(0);
        let bytes = w.into_bytes();
        let mut r = dynp_des::ByteReader::new(&bytes);
        assert_eq!(
            SchedulerSnapshot::decode_from(&mut r),
            Err(dynp_des::CodecError::Invalid {
                what: "scheduler snapshot tag"
            })
        );
    }

    #[test]
    fn replan_is_idempotent_on_unchanged_state() {
        let mut state = RmsState::new(4);
        for i in 0..5 {
            state.submit(j(i, i as u64, (i % 3) + 1, 50 + i as u64));
        }
        let mut sched = StaticScheduler::new(Policy::Fcfs);
        let now = SimTime::from_secs(10);
        let a = sched.replan(&state, now, ReplanReason::Submission);
        let b = sched.replan(&state, now, ReplanReason::Completion);
        assert_eq!(a.entries, b.entries);
    }
}
