//! A full schedule: a planned start time for every waiting job.
//!
//! "For all waiting jobs the scheduler computes a full schedule, which
//! contains planned start times for every waiting job in the system.
//! With this information it is possible to measure the schedule by means
//! of a performance metrics" — the object the dynP decider compares
//! across policies.

use crate::state::RunningJob;
use dynp_des::{SimDuration, SimTime};
use dynp_workload::Job;

/// A waiting job with its planned start time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannedJob {
    /// The job being planned.
    pub job: Job,
    /// Planned start time (never before submission or `now`).
    pub start: SimTime,
}

impl PlannedJob {
    /// Planned completion, assuming the job runs to its estimate (the
    /// planner reserves estimates; jobs are killed at the estimate).
    pub fn planned_end(&self) -> SimTime {
        self.start.saturating_add(self.job.estimate)
    }

    /// Planned wait time from submission to planned start.
    pub fn planned_wait(&self) -> SimDuration {
        self.start.saturating_since(self.job.submit)
    }
}

/// A full schedule in planning order.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Planned entries, in the order the planner placed them (policy
    /// order).
    pub entries: Vec<PlannedJob>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule {
            entries: Vec::new(),
        }
    }

    /// Number of planned jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a planned start up by job id.
    pub fn start_of(&self, job: &Job) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|e| e.job.id == job.id)
            .map(|e| e.start)
    }

    /// Jobs whose planned start is at or before `now` — the jobs the RMS
    /// must start right away, in planning order.
    pub fn due(&self, now: SimTime) -> impl Iterator<Item = &PlannedJob> {
        self.entries.iter().filter(move |e| e.start <= now)
    }

    /// The latest planned completion ([`SimTime::ZERO`] when empty).
    pub fn horizon(&self) -> SimTime {
        self.entries
            .iter()
            .map(PlannedJob::planned_end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Validates the no-overcommit invariant of this schedule against the
    /// machine and the currently running jobs: at no instant may the sum
    /// of running widths (until their estimated ends) and planned widths
    /// exceed `machine_size`; no job may start before `max(now, submit)`.
    ///
    /// Used by tests and debug assertions — O(n²) in the number of
    /// entries.
    pub fn validate(
        &self,
        machine_size: u32,
        running: &[RunningJob],
        now: SimTime,
    ) -> Result<(), String> {
        for e in &self.entries {
            if e.start < e.job.submit {
                return Err(format!(
                    "job {} planned before submission ({:?} < {:?})",
                    e.job.id, e.start, e.job.submit
                ));
            }
            if e.start < now {
                return Err(format!(
                    "job {} planned in the past ({:?} < now {:?})",
                    e.job.id, e.start, now
                ));
            }
        }
        // Check capacity at every planned start (usage is piecewise
        // constant and only increases at starts).
        for e in &self.entries {
            let t = e.start;
            let mut used: u64 = 0;
            for r in running {
                if r.estimated_end() > t {
                    used += r.job.width as u64;
                }
            }
            for o in &self.entries {
                if o.start <= t && o.planned_end() > t {
                    used += o.job.width as u64;
                }
            }
            if used > machine_size as u64 {
                return Err(format!(
                    "overcommit at {:?}: {used} used of {machine_size}",
                    t
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_workload::JobId;

    fn j(id: u32, submit_s: u64, width: u32, est_s: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_s),
            width,
            SimDuration::from_secs(est_s),
            SimDuration::from_secs(est_s),
        )
    }

    fn planned(job: Job, start_s: u64) -> PlannedJob {
        PlannedJob {
            job,
            start: SimTime::from_secs(start_s),
        }
    }

    #[test]
    fn planned_job_derived_quantities() {
        let e = planned(j(0, 10, 2, 100), 40);
        assert_eq!(e.planned_end(), SimTime::from_secs(140));
        assert_eq!(e.planned_wait(), SimDuration::from_secs(30));
    }

    #[test]
    fn due_filters_by_start() {
        let s = Schedule {
            entries: vec![planned(j(0, 0, 1, 10), 5), planned(j(1, 0, 1, 10), 50)],
        };
        let due: Vec<u32> = s.due(SimTime::from_secs(5)).map(|e| e.job.id.0).collect();
        assert_eq!(due, vec![0]);
        assert_eq!(s.horizon(), SimTime::from_secs(60));
        assert_eq!(s.start_of(&j(1, 0, 1, 10)), Some(SimTime::from_secs(50)));
    }

    #[test]
    fn validate_accepts_feasible_schedule() {
        let s = Schedule {
            entries: vec![
                planned(j(0, 0, 3, 100), 0),
                planned(j(1, 0, 1, 50), 0),
                planned(j(2, 0, 4, 10), 100),
            ],
        };
        assert!(s.validate(4, &[], SimTime::ZERO).is_ok());
    }

    #[test]
    fn validate_catches_overcommit() {
        let s = Schedule {
            entries: vec![planned(j(0, 0, 3, 100), 0), planned(j(1, 0, 2, 50), 0)],
        };
        let err = s.validate(4, &[], SimTime::ZERO).unwrap_err();
        assert!(err.contains("overcommit"), "{err}");
    }

    #[test]
    fn validate_counts_running_jobs() {
        let running = vec![RunningJob {
            job: j(9, 0, 3, 100),
            start: SimTime::ZERO,
        }];
        let s = Schedule {
            entries: vec![planned(j(0, 0, 2, 10), 0)],
        };
        assert!(s.validate(4, &running, SimTime::ZERO).is_err());
        // After the running job's estimated end it fits.
        let s2 = Schedule {
            entries: vec![planned(j(0, 0, 2, 10), 100)],
        };
        assert!(s2.validate(4, &running, SimTime::ZERO).is_ok());
    }

    #[test]
    fn validate_catches_start_before_submit_and_past() {
        let s = Schedule {
            entries: vec![planned(j(0, 100, 1, 10), 50)],
        };
        assert!(s
            .validate(4, &[], SimTime::ZERO)
            .unwrap_err()
            .contains("before submission"));
        let s2 = Schedule {
            entries: vec![planned(j(0, 0, 1, 10), 5)],
        };
        assert!(s2
            .validate(4, &[], SimTime::from_secs(10))
            .unwrap_err()
            .contains("past"));
    }
}
