//! The flat-vector free-capacity profile: the linear-scan implementation
//! the capacity-indexed [`Profile`](crate::Profile) replaced, retained
//! verbatim for two jobs:
//!
//! * it is the profile of the `ReferencePlanner`, so the benchmarked
//!   incremental-vs-reference speedups compare the indexed structure
//!   against the real pre-index algorithm, not against a strawman;
//! * it is the property-test oracle the indexed profile is checked
//!   against operation by operation.
//!
//! Same invariants as the indexed profile: strictly increasing times,
//! `0 <= free <= capacity`, full capacity at the horizon.

use crate::profile::ProfilePoint;
use dynp_des::{SimDuration, SimTime};

/// Piecewise-constant free-capacity timeline as a sorted point vector,
/// scanned linearly.
#[derive(Clone, Debug)]
pub struct NaiveProfile {
    points: Vec<ProfilePoint>,
    capacity: u32,
}

impl NaiveProfile {
    /// Creates a profile with all `capacity` processors free from
    /// `origin` onwards.
    pub fn new(capacity: u32, origin: SimTime) -> Self {
        assert!(capacity >= 1, "profile needs at least one processor");
        NaiveProfile {
            points: vec![ProfilePoint {
                time: origin,
                free: capacity,
            }],
            capacity,
        }
    }

    /// Resets to the fully-free state at `origin`, reusing the
    /// allocation — the planner rebuilds the profile at every event.
    pub fn reset(&mut self, capacity: u32, origin: SimTime) {
        assert!(capacity >= 1);
        self.points.clear();
        self.points.push(ProfilePoint {
            time: origin,
            free: capacity,
        });
        self.capacity = capacity;
    }

    /// Rebuilds the whole profile from `(start, end, width)` spans in one
    /// endpoint sweep; see the indexed profile's `rebuild_from_spans` for
    /// the contract (identical here).
    ///
    /// # Panics
    /// Panics if the spans overcommit the machine at any instant or if
    /// `capacity` is zero.
    pub fn rebuild_from_spans(
        &mut self,
        capacity: u32,
        origin: SimTime,
        spans: &[(SimTime, SimTime, u32)],
        events: &mut Vec<(SimTime, i64)>,
    ) {
        assert!(capacity >= 1, "profile needs at least one processor");
        self.capacity = capacity;
        self.points.clear();
        self.points.push(ProfilePoint {
            time: origin,
            free: capacity,
        });
        events.clear();
        for &(start, end, width) in spans {
            if width == 0 {
                continue;
            }
            let start = start.max(origin);
            if end <= start {
                continue;
            }
            events.push((start, width as i64));
            events.push((end, -(width as i64)));
        }
        events.sort_unstable_by_key(|&(time, _)| time);
        let mut used: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let time = events[i].0;
            let mut delta = 0i64;
            while i < events.len() && events[i].0 == time {
                delta += events[i].1;
                i += 1;
            }
            if delta == 0 {
                continue;
            }
            used += delta;
            assert!(
                (0..=capacity as i64).contains(&used),
                "overcommit: {used} processors reserved at {time:?}, capacity {capacity}"
            );
            let free = capacity - used as u32;
            let last = self.points.last_mut().expect("origin point present");
            if last.time == time {
                last.free = free;
            } else {
                self.points.push(ProfilePoint { time, free });
            }
        }
        self.assert_invariants();
    }

    /// Makes this profile a copy of `base` without reallocating (one
    /// `memcpy` of the point list).
    pub fn restore_from(&mut self, base: &NaiveProfile) {
        self.capacity = base.capacity;
        self.points.clear();
        self.points.extend_from_slice(&base.points);
    }

    /// Total processors of the machine.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The break points (for inspection and the equivalence tests).
    pub fn points(&self) -> &[ProfilePoint] {
        &self.points
    }

    /// Start of the profile (its first break point).
    pub fn origin(&self) -> SimTime {
        self.points[0].time
    }

    /// Free processors at instant `t` (clamped to the origin on the left).
    pub fn free_at(&self, t: SimTime) -> u32 {
        self.points[self.seg_index(t)].free
    }

    /// Index of the segment containing `t` (the last point with
    /// `time <= t`, or segment 0 for earlier instants).
    fn seg_index(&self, t: SimTime) -> usize {
        self.points
            .partition_point(|p| p.time <= t)
            .saturating_sub(1)
    }

    /// Ensures a break point exists exactly at `t` (splitting the
    /// containing segment) and returns its index. `t` must not precede
    /// the origin.
    fn split_at(&mut self, t: SimTime) -> usize {
        debug_assert!(t >= self.origin(), "split before profile origin");
        let i = self.seg_index(t);
        if self.points[i].time == t {
            return i;
        }
        let free = self.points[i].free;
        self.points.insert(i + 1, ProfilePoint { time: t, free });
        i + 1
    }

    /// Reserves `width` processors over `[start, start + duration)`.
    /// Zero-length reservations are no-ops.
    ///
    /// # Panics
    /// Panics if any overlapped segment has fewer than `width` free
    /// processors or if `start` precedes the profile origin.
    pub fn allocate(&mut self, start: SimTime, duration: SimDuration, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        assert!(start >= self.origin(), "allocation before profile origin");
        let end = start.saturating_add(duration);
        let s = self.split_at(start);
        let e = self.split_at(end);
        for p in &mut self.points[s..e] {
            assert!(
                p.free >= width,
                "overcommit: segment at {:?} has {} free, needs {width}",
                p.time,
                p.free
            );
            p.free -= width;
        }
        self.assert_invariants();
    }

    /// The earliest instant `t >= after` at which `width` processors stay
    /// free for the whole span `[t, t + duration)`, by linear scan.
    ///
    /// # Panics
    /// Panics if `width` exceeds the machine capacity.
    pub fn earliest_fit(&self, after: SimTime, duration: SimDuration, width: u32) -> SimTime {
        self.earliest_fit_indexed(after, duration, width).0
    }

    /// [`NaiveProfile::earliest_fit`] plus the index of the segment
    /// containing the returned instant.
    fn earliest_fit_indexed(
        &self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> (SimTime, usize) {
        assert!(
            width <= self.capacity,
            "job width {width} exceeds capacity {}",
            self.capacity
        );
        let mut candidate = after.max(self.origin());
        let mut i = self.seg_index(candidate);
        if width == 0 || duration.is_zero() {
            return (candidate, i);
        }
        'outer: loop {
            let end = candidate.saturating_add(duration);
            // Scan segments overlapping [candidate, end) for a blocker.
            let mut j = i;
            while j < self.points.len() && self.points[j].time < end {
                if self.points[j].free < width {
                    let seg_end = self.points.get(j + 1).map_or(SimTime::MAX, |p| p.time);
                    if seg_end > candidate {
                        // Blocked: jump past this segment to the next
                        // instant with enough capacity.
                        let mut k = j + 1;
                        while k < self.points.len() && self.points[k].free < width {
                            k += 1;
                        }
                        debug_assert!(k < self.points.len(), "profile must end at full capacity");
                        candidate = self.points[k].time;
                        i = k;
                        continue 'outer;
                    }
                }
                j += 1;
            }
            return (candidate, i);
        }
    }

    /// Finds the earliest fit and allocates it in one step; returns the
    /// chosen start time. Equivalent to [`NaiveProfile::earliest_fit`]
    /// followed by [`NaiveProfile::allocate`], but reuses the fit's
    /// segment index and inserts both new break points with a single tail
    /// shift instead of two `Vec::insert`s.
    pub fn allocate_earliest(
        &mut self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> SimTime {
        let (start, s_seg) = self.earliest_fit_indexed(after, duration, width);
        if duration.is_zero() || width == 0 {
            return start;
        }
        debug_assert!(self.points[s_seg].time <= start);
        let end = start.saturating_add(duration);

        // First segment index whose point time is >= end, scanning
        // forward from the fit segment (the span rarely covers many).
        let mut e_seg = s_seg;
        while e_seg < self.points.len() && self.points[e_seg].time < end {
            e_seg += 1;
        }
        // Break points to materialize: one at `start` (unless a point
        // sits there already), one at `end` (ditto). Their free values
        // are those of the segments they split.
        let need_s = self.points[s_seg].time != start;
        let need_e = e_seg >= self.points.len() || self.points[e_seg].time != end;
        let free_at_end = self.points[e_seg - 1].free;
        let grow = usize::from(need_s) + usize::from(need_e);
        let old_len = self.points.len();
        if grow > 0 {
            self.points.resize(
                old_len + grow,
                ProfilePoint {
                    time: SimTime::MAX,
                    free: self.capacity,
                },
            );
            // One shift of the tail [e_seg..] by the full growth, then —
            // when both points are new — one shift of the covered middle
            // (s_seg+1..e_seg) by one.
            self.points.copy_within(e_seg..old_len, e_seg + grow);
            if need_e {
                self.points[e_seg + usize::from(need_s)] = ProfilePoint {
                    time: end,
                    free: free_at_end,
                };
            }
            if need_s {
                self.points.copy_within(s_seg + 1..e_seg, s_seg + 2);
                self.points[s_seg + 1] = ProfilePoint {
                    time: start,
                    free: self.points[s_seg].free,
                };
            }
        }
        // Narrow every segment covering [start, end).
        let first = s_seg + usize::from(need_s);
        let last = e_seg + usize::from(need_s);
        for p in &mut self.points[first..last] {
            assert!(
                p.free >= width,
                "overcommit: segment at {:?} has {} free, needs {width}",
                p.time,
                p.free
            );
            p.free -= width;
        }
        self.assert_invariants();
        start
    }

    /// Debug-build invariant check: strictly increasing times, free in
    /// range, full capacity at the horizon.
    fn assert_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            assert!(
                self.points.windows(2).all(|w| w[0].time < w[1].time),
                "profile times not strictly increasing"
            );
            assert!(
                self.points.iter().all(|p| p.free <= self.capacity),
                "free exceeds capacity"
            );
            assert_eq!(
                self.points.last().unwrap().free,
                self.capacity,
                "profile must end at full capacity"
            );
        }
    }
}
