//! The free-capacity profile: how many processors are free at every
//! future instant.
//!
//! A profile is a piecewise-constant function of time. The planner
//! queries it with [`Profile::earliest_fit`] and narrows it with
//! [`Profile::allocate`] / [`Profile::allocate_earliest`].
//!
//! # Capacity-indexed representation
//!
//! The break points are stored in fixed-size *chunks* (a paged sorted
//! array). Three flat arrays, indexed by chunk position, summarise each
//! chunk: its first point's time (`first_time`, the binary-search key)
//! and the minimum / maximum `free` over its segments (`min_free` /
//! `max_free`). [`Profile::earliest_fit`] answers "first instant ≥ t
//! where `width` processors stay free for `duration`" with a fused
//! two-state sweep: a single forward pass that alternates between
//! *verifying* the current candidate start (scanning for a segment with
//! `free < width` inside the window — if the window closes first, the
//! candidate settles) and *seeking* the next segment with
//! `free >= width` after a blocker (the next candidate). The summary
//! arrays let either state skip a whole chunk in O(1): a verify skips
//! chunks with `min_free >= width` (and settles as soon as
//! `first_time >= end`), a seek skips chunks with `max_free < width`.
//!
//! The summaries are deliberately plain arrays rather than a search
//! tree: measured scan dynamics on planner workloads show verify/seek
//! runs of only a handful of points (the profile alternates tight and
//! free segments at exactly the widths being placed), so tree descents
//! or finger structures cannot amortise — while a forward sweep over
//! contiguous 4-byte entries lets hardware prefetch do the work, and
//! every update stays O(1) per touched chunk.
//!
//! What *does* go sublinear is the query stream, via a **dominance
//! memo** on [`Profile::allocate_earliest`] (see its doc comment):
//! earliest-fit is monotone in width and duration, and a planning pass
//! only narrows the profile, so the answer to a previous query is a
//! sound scan lower bound for any later query it dominates. Policy
//! passes sort by duration (SJF/LJF) or carry long runs of duplicate
//! estimates, so most queries start their scan where the previous one
//! answered instead of at `now` — turning the pass's quadratic rescans
//! into near-linear work at deep queues.
//!
//! The update path reuses the fit's position: [`Profile::allocate_earliest`]
//! threads the (chunk, index) of the found segment straight into a
//! single forward walk that inserts the two break points, decrements the
//! covered segments, and refreshes summaries as it goes — a fully
//! covered chunk shifts its summary by `width` without rescanning its
//! points. Chunk splits append the upper half to the arena (no
//! kilobyte-sized memmove of sibling chunks) and shift only the small
//! per-chunk array entries. `restore_from` stays a flat `memcpy` of the
//! chunk storage and summary arrays, preserving the shared-base-profile
//! watermark-restore trick of the incremental planner. A profile that
//! fits one chunk degenerates to the plain linear scan, so small
//! profiles pay (almost) nothing for the index.
//!
//! The linear-scan implementation this replaced is retained verbatim as
//! [`NaiveProfile`](crate::naive::NaiveProfile) — the property-test
//! oracle and the `ReferencePlanner`'s profile, so measured speedups
//! compare against the real pre-index algorithm. `earliest_fit`'s answer
//! is the unique minimal feasible start, so the two implementations
//! agree bit-for-bit even where their probe orders differ.
//!
//! Invariants (checked in debug builds and by property tests):
//! * point times are strictly increasing;
//! * `0 <= free <= capacity` everywhere;
//! * the final point's free value equals the full capacity (every
//!   reservation ends eventually);
//! * every chunk holds at least one point; `first_time[c]` equals the
//!   chunk's first point time, and `min_free[c]` / `max_free[c]` equal
//!   the min/max free over its points.

use dynp_des::{SimDuration, SimTime};

/// One break point: `free` processors are available from `time` until the
/// next point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilePoint {
    /// Start of the segment.
    pub time: SimTime,
    /// Free processors throughout the segment.
    pub free: u32,
}

/// Points per chunk: small enough that an in-chunk scan stays within a
/// few cache lines, large enough that the summary arrays stay short.
const CHUNK_CAP: usize = 64;

/// One page of the point list, stored struct-of-arrays: the fit probes
/// scan only free values (contiguous 4-byte lanes the compiler can
/// vectorise) and touch a time only at a hit, instead of dragging
/// 16-byte (time, free) pairs through the cache on every step. The
/// chunk's capacity summary lives in the profile's flat `min_free` /
/// `max_free` arrays, keyed by chunk *position*, so whole-chunk skips
/// touch contiguous memory too.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    /// Number of valid entries in `times` / `frees`.
    len: u32,
    /// Break-point instants, strictly increasing.
    times: [SimTime; CHUNK_CAP],
    /// Free processors from the matching instant to the next.
    frees: [u32; CHUNK_CAP],
}

impl Chunk {
    fn of(pt: ProfilePoint) -> Self {
        let mut ch = Chunk {
            len: 1,
            times: [SimTime::ZERO; CHUNK_CAP],
            frees: [0; CHUNK_CAP],
        };
        ch.times[0] = pt.time;
        ch.frees[0] = pt.free;
        ch
    }

    fn times(&self) -> &[SimTime] {
        &self.times[..self.len as usize]
    }

    fn frees(&self) -> &[u32] {
        &self.frees[..self.len as usize]
    }

    fn point(&self, i: usize) -> ProfilePoint {
        ProfilePoint {
            time: self.times[i],
            free: self.frees[i],
        }
    }
}

/// One entry of the per-width-class dominance memo (see
/// [`Profile::allocate_earliest`]): the last query answered for the
/// class, as the lower bound it proves for later, harder queries.
/// `width == 0` marks an empty slot.
#[derive(Clone, Copy, Debug)]
struct MemoSlot {
    width: u32,
    duration: SimDuration,
    /// Start of the interval the slot's scan proved free of fits: the
    /// memo only says "no fit in `[after, answer)`", so it bounds later
    /// queries constrained to start at or after `after`, not earlier
    /// ones.
    after: SimTime,
    answer: SimTime,
}

const MEMO_EMPTY: MemoSlot = MemoSlot {
    width: 0,
    duration: SimDuration::ZERO,
    after: SimTime::ZERO,
    answer: SimTime::ZERO,
};

/// Piecewise-constant free-capacity timeline, indexed by capacity (see
/// the module docs for the chunk + summary-array layout).
#[derive(Clone)]
pub struct Profile {
    capacity: u32,
    /// Total break points across all chunks.
    n_points: usize,
    /// Chunk storage; `order` gives the time order. Chunk splits append
    /// here so a split never moves kilobytes of sibling chunks.
    arena: Vec<Chunk>,
    /// Arena indices of the live chunks, in time order.
    order: Vec<u32>,
    /// Per chunk position: time of the chunk's first point — the
    /// binary-search key for `seg_pos` and the gap test of the
    /// allocation walk.
    first_time: Vec<SimTime>,
    /// Per chunk position: minimum `free` over the chunk's points.
    min_free: Vec<u32>,
    /// Per chunk position: maximum `free` over the chunk's points.
    max_free: Vec<u32>,
    /// Per width class (`ilog2(width)`): the last
    /// [`Profile::allocate_earliest`] query and its answer. Valid as a
    /// scan lower bound for any later query that dominates it, because
    /// allocation only narrows the profile (see `allocate_earliest`).
    /// Cleared whenever the profile is rebuilt or restored.
    memo: [MemoSlot; 32],
}

impl Profile {
    /// Creates a profile with all `capacity` processors free from
    /// `origin` onwards.
    pub fn new(capacity: u32, origin: SimTime) -> Self {
        assert!(capacity >= 1, "profile needs at least one processor");
        let mut p = Profile {
            capacity,
            n_points: 0,
            arena: Vec::new(),
            order: Vec::new(),
            first_time: Vec::new(),
            min_free: Vec::new(),
            max_free: Vec::new(),
            memo: [MEMO_EMPTY; 32],
        };
        p.init_single(capacity, origin);
        p
    }

    /// Resets to the fully-free state at `origin`, reusing the
    /// allocations — the planner rebuilds the profile at every event.
    pub fn reset(&mut self, capacity: u32, origin: SimTime) {
        assert!(capacity >= 1);
        self.init_single(capacity, origin);
    }

    fn init_single(&mut self, capacity: u32, origin: SimTime) {
        self.capacity = capacity;
        self.n_points = 1;
        self.memo = [MEMO_EMPTY; 32];
        self.arena.clear();
        self.arena.push(Chunk::of(ProfilePoint {
            time: origin,
            free: capacity,
        }));
        self.order.clear();
        self.order.push(0);
        self.first_time.clear();
        self.first_time.push(origin);
        self.min_free.clear();
        self.min_free.push(capacity);
        self.max_free.clear();
        self.max_free.push(capacity);
    }

    /// Rebuilds the whole profile from `(start, end, width)` spans in one
    /// endpoint sweep: O((S + R) log R) for R spans producing S points,
    /// instead of the O(R·P) of repeated [`Profile::allocate`] calls.
    /// Spans starting before `origin` are clipped to it; empty and
    /// zero-width spans are ignored. `events` is caller-provided scratch
    /// so the per-event hot path allocates nothing.
    ///
    /// The resulting profile is the canonical minimal representation of
    /// the same piecewise-constant function the allocate-loop produces,
    /// so every [`Profile::earliest_fit`] answer — and therefore every
    /// schedule planned on top — is identical.
    ///
    /// # Panics
    /// Panics if the spans overcommit the machine at any instant (the
    /// same condition on which the allocate-loop panics) or if
    /// `capacity` is zero.
    pub fn rebuild_from_spans(
        &mut self,
        capacity: u32,
        origin: SimTime,
        spans: &[(SimTime, SimTime, u32)],
        events: &mut Vec<(SimTime, i64)>,
    ) {
        assert!(capacity >= 1, "profile needs at least one processor");
        self.init_single(capacity, origin);
        events.clear();
        for &(start, end, width) in spans {
            if width == 0 {
                continue;
            }
            let start = start.max(origin);
            if end <= start {
                continue;
            }
            events.push((start, width as i64));
            events.push((end, -(width as i64)));
        }
        events.sort_unstable_by_key(|&(time, _)| time);
        let mut used: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let time = events[i].0;
            let mut delta = 0i64;
            while i < events.len() && events[i].0 == time {
                delta += events[i].1;
                i += 1;
            }
            if delta == 0 {
                continue;
            }
            used += delta;
            assert!(
                (0..=capacity as i64).contains(&used),
                "overcommit: {used} processors reserved at {time:?}, capacity {capacity}"
            );
            let free = capacity - used as u32;
            // Append (or coalesce into) the last point.
            let last_id = *self.order.last().expect("origin chunk present") as usize;
            let ch = &mut self.arena[last_id];
            let len = ch.len as usize;
            if ch.times[len - 1] == time {
                ch.frees[len - 1] = free;
            } else if len < CHUNK_CAP {
                ch.times[len] = time;
                ch.frees[len] = free;
                ch.len += 1;
                self.n_points += 1;
            } else {
                let id = self.arena.len() as u32;
                self.arena.push(Chunk::of(ProfilePoint { time, free }));
                self.order.push(id);
                self.first_time.push(time);
                self.min_free.push(0);
                self.max_free.push(0);
                self.n_points += 1;
            }
        }
        for c in 0..self.n_chunks() {
            self.refresh_summary(c);
        }
        self.assert_invariants();
    }

    /// Makes this profile a copy of `base` without reallocating (flat
    /// `memcpy`s of the chunk storage, order and summary arrays). This is
    /// the per-policy "restore to watermark" step: the planner builds the
    /// running-jobs base once per event and every policy's planning pass
    /// starts from a restored copy instead of rebuilding it.
    pub fn restore_from(&mut self, base: &Profile) {
        self.capacity = base.capacity;
        self.n_points = base.n_points;
        self.arena.clear();
        self.arena.extend_from_slice(&base.arena);
        self.order.clear();
        self.order.extend_from_slice(&base.order);
        self.first_time.clear();
        self.first_time.extend_from_slice(&base.first_time);
        self.min_free.clear();
        self.min_free.extend_from_slice(&base.min_free);
        self.max_free.clear();
        self.max_free.extend_from_slice(&base.max_free);
        // The restored state has more capacity than this profile had
        // after its last pass, so memoised bounds no longer hold.
        self.memo = [MEMO_EMPTY; 32];
    }

    /// Total processors of the machine.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of break points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// A profile always has at least its origin point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The break points in time order (for inspection, plotting and the
    /// property-test oracles). Allocates; not for hot paths.
    pub fn to_points(&self) -> Vec<ProfilePoint> {
        self.iter_points().collect()
    }

    /// Iterates the break points in time order.
    pub fn iter_points(&self) -> impl Iterator<Item = ProfilePoint> + '_ {
        self.order.iter().flat_map(move |&id| {
            let ch = &self.arena[id as usize];
            ch.times()
                .iter()
                .zip(ch.frees())
                .map(|(&time, &free)| ProfilePoint { time, free })
        })
    }

    /// Start of the profile (its first break point).
    pub fn origin(&self) -> SimTime {
        self.first_time[0]
    }

    /// Free processors at instant `t` (clamped to the origin on the
    /// left). Two binary searches: chunk first-times, then in-chunk.
    pub fn free_at(&self, t: SimTime) -> u32 {
        let (c, i) = self.seg_pos(t);
        self.chunk(c).frees[i]
    }

    fn chunk(&self, c: usize) -> &Chunk {
        &self.arena[self.order[c] as usize]
    }

    fn chunk_mut(&mut self, c: usize) -> &mut Chunk {
        &mut self.arena[self.order[c] as usize]
    }

    fn n_chunks(&self) -> usize {
        self.order.len()
    }

    /// (chunk position, in-chunk index) of the segment containing `t`:
    /// the last point with `time <= t`, or `(0, 0)` for earlier instants.
    fn seg_pos(&self, t: SimTime) -> (usize, usize) {
        let c = self
            .first_time
            .partition_point(|&ft| ft <= t)
            .saturating_sub(1);
        let ch = self.chunk(c);
        let i = ch
            .times()
            .partition_point(|&time| time <= t)
            .saturating_sub(1);
        (c, i)
    }

    /// Recomputes the summary-array entry of chunk position `c` from its
    /// points (one vectorisable min/max sweep over at most `CHUNK_CAP`
    /// 4-byte entries).
    fn refresh_summary(&mut self, c: usize) {
        let ch = &self.arena[self.order[c] as usize];
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &f in ch.frees() {
            lo = lo.min(f);
            hi = hi.max(f);
        }
        self.min_free[c] = lo;
        self.max_free[c] = hi;
    }

    // ------------------------------------------------------------------
    // Queries.

    /// The earliest fit together with the (chunk, index) of the segment
    /// containing it — the position seeds the allocation walk so
    /// [`Profile::allocate_earliest`] never re-searches for its start.
    ///
    /// One forward sweep alternating the blocker and jump probes of the
    /// module docs. A clean chunk (`min_free >= width`) needs no point
    /// access at all: if any of its points reaches past the window's
    /// close, the next scanned point's time check settles the window,
    /// because times increase strictly across chunks.
    fn fit_pos(
        &self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> (usize, usize, SimTime) {
        assert!(
            width <= self.capacity,
            "job width {width} exceeds capacity {}",
            self.capacity
        );
        let candidate = after.max(self.origin());
        if width == 0 || duration.is_zero() {
            // Trivial fit at the bound; callers skip the allocation walk,
            // so the position is unused.
            return (0, 0, candidate);
        }
        let n = self.n_chunks();
        let (mut c, mut i) = self.seg_pos(candidate);
        // Segment containing the current candidate.
        let (mut sc, mut si) = (c, i);
        let mut candidate = candidate;
        let mut end = candidate.saturating_add(duration);
        // The sweep alternates two states without re-deriving chunk
        // context: *verifying* (scanning the candidate window for a
        // blocker, i.e. free < width) and *seeking* (scanning past a
        // blocker for the next segment with free >= width, the next
        // candidate). Only free values are scanned — pure 4-byte sweeps
        // the compiler can vectorise; a hit's time decides between
        // "blocker" and "window settled", which is sound because times
        // increase strictly: a point skipped on free alone that lay past
        // `end` forces every later point past `end` too, so the next
        // low-free hit's time check still settles the window.
        let mut seeking = false;
        loop {
            if c >= n {
                // Horizon. Seeking cannot run past it: the final segment
                // is fully free, so a next candidate always exists.
                debug_assert!(!seeking, "seek ran past the horizon");
                return (sc, si, candidate);
            }
            // Whole-chunk skips via the contiguous summary arrays.
            if seeking {
                if self.max_free[c] < width {
                    c += 1;
                    i = 0;
                    continue;
                }
            } else {
                if self.first_time[c] >= end {
                    return (sc, si, candidate);
                }
                if self.min_free[c] >= width {
                    c += 1;
                    i = 0;
                    continue;
                }
            }
            let ch = self.chunk(c);
            let len = ch.len as usize;
            let frees = &ch.frees[..len];
            let mut k = i;
            while k < len {
                if seeking {
                    while k < len && frees[k] < width {
                        k += 1;
                    }
                    if k >= len {
                        break;
                    }
                    candidate = ch.times[k];
                    end = candidate.saturating_add(duration);
                    sc = c;
                    si = k;
                    seeking = false;
                } else {
                    while k < len && frees[k] >= width {
                        k += 1;
                    }
                    if k >= len {
                        break;
                    }
                    if ch.times[k] >= end {
                        return (sc, si, candidate);
                    }
                    seeking = true;
                }
                k += 1;
            }
            c += 1;
            i = 0;
        }
    }

    /// The earliest instant `t >= after` at which `width` processors stay
    /// free for the whole span `[t, t + duration)`.
    ///
    /// Always succeeds because the profile returns to full capacity after
    /// its last break point. The answer is the unique minimal feasible
    /// start, so it is bit-identical to the retained linear scan's.
    ///
    /// # Panics
    /// Panics if `width` exceeds the machine capacity.
    pub fn earliest_fit(&self, after: SimTime, duration: SimDuration, width: u32) -> SimTime {
        self.fit_pos(after, duration, width).2
    }

    // ------------------------------------------------------------------
    // Updates.

    /// Inserts `pt` at in-chunk index `i` of chunk position `c`
    /// (`0 <= i <= len`), splitting the chunk first when full. Returns
    /// the final (chunk position, in-chunk index) of the inserted point.
    /// The target chunk's summary is left stale for the caller to
    /// refresh (split siblings are refreshed in `split_chunk`).
    fn insert_point(&mut self, mut c: usize, mut i: usize, pt: ProfilePoint) -> (usize, usize) {
        const HALF: usize = CHUNK_CAP / 2;
        if self.chunk(c).len as usize == CHUNK_CAP {
            self.split_chunk(c);
            if i > HALF {
                c += 1;
                i -= HALF;
            }
        }
        let ch = self.chunk_mut(c);
        let len = ch.len as usize;
        debug_assert!(i <= len && len < CHUNK_CAP);
        ch.times.copy_within(i..len, i + 1);
        ch.frees.copy_within(i..len, i + 1);
        ch.times[i] = pt.time;
        ch.frees[i] = pt.free;
        ch.len += 1;
        self.n_points += 1;
        if i == 0 {
            self.first_time[c] = pt.time;
        }
        (c, i)
    }

    /// Splits the full chunk at position `c` into two half chunks. The
    /// upper half is appended to the arena (no kilobyte-sized memmove of
    /// sibling chunks); only the 4-byte order and summary entries shift,
    /// and both halves' summaries are refreshed here.
    fn split_chunk(&mut self, c: usize) {
        const HALF: usize = CHUNK_CAP / 2;
        let id = self.order[c] as usize;
        let mut hi = Chunk {
            len: (CHUNK_CAP - HALF) as u32,
            times: [SimTime::ZERO; CHUNK_CAP],
            frees: [0; CHUNK_CAP],
        };
        hi.times[..CHUNK_CAP - HALF].copy_from_slice(&self.arena[id].times[HALF..]);
        hi.frees[..CHUNK_CAP - HALF].copy_from_slice(&self.arena[id].frees[HALF..]);
        let hi_first = hi.times[0];
        self.arena[id].len = HALF as u32;
        let new_id = self.arena.len() as u32;
        self.arena.push(hi);
        self.order.insert(c + 1, new_id);
        self.first_time.insert(c + 1, hi_first);
        self.min_free.insert(c + 1, 0);
        self.max_free.insert(c + 1, 0);
        self.refresh_summary(c);
        self.refresh_summary(c + 1);
    }

    /// Carves `width` processors out of `[start, end)`, given the
    /// position `(c, i)` of the segment containing `start` (from
    /// `fit_pos` or `seg_pos`). One forward walk: the bounding break
    /// points are inserted as encountered, covered segments are
    /// decremented, and chunk summaries refresh in place — a fully
    /// covered chunk shifts its summary by `width` without rescanning
    /// its points.
    ///
    /// # Panics
    /// Panics if any covered segment has fewer than `width` free.
    fn allocate_span(&mut self, c: usize, i: usize, start: SimTime, end: SimTime, width: u32) {
        let seg = self.chunk(c).point(i);
        debug_assert!(seg.time <= start, "position does not contain start");
        let (mut c, mut i) = if seg.time == start {
            (c, i)
        } else {
            // Split the segment: the new point keeps the segment's free
            // value until the decrement loop below reaches it.
            self.insert_point(
                c,
                i + 1,
                ProfilePoint {
                    time: start,
                    free: seg.free,
                },
            )
        };
        // The chunk the walk starts in is always rescanned: the insert
        // above may have left its summary stale, and the walk may cover
        // it only partially.
        let start_chunk = c;
        // Pre-decrement free value of the last covered segment — the
        // value the profile returns to when the reservation ends.
        let mut prev_free = 0;
        loop {
            let ch = self.chunk_mut(c);
            let len = ch.len as usize;
            let entered_at = i;
            while i < len && ch.times[i] < end {
                let f = ch.frees[i];
                assert!(
                    f >= width,
                    "overcommit: segment at {:?} has {f} free, needs {width}",
                    ch.times[i]
                );
                prev_free = f;
                ch.frees[i] = f - width;
                i += 1;
            }
            if i < len {
                // A point at or past `end` stops the walk in this chunk.
                if self.chunk(c).times[i] > end {
                    let (c2, _) = self.insert_point(
                        c,
                        i,
                        ProfilePoint {
                            time: end,
                            free: prev_free,
                        },
                    );
                    self.refresh_summary(c2);
                    if c2 != c {
                        self.refresh_summary(c);
                    }
                } else {
                    self.refresh_summary(c);
                }
                return;
            }
            // Chunk consumed to its end.
            if entered_at == 0 && c != start_chunk {
                // Fully covered and untouched by inserts: both summary
                // extremes drop by exactly `width`.
                self.min_free[c] -= width;
                self.max_free[c] -= width;
            } else {
                self.refresh_summary(c);
            }
            c += 1;
            if c == self.n_chunks() {
                // Ran past the horizon: close the reservation with a new
                // final point restoring the pre-decrement free value (the
                // full capacity, by the horizon invariant).
                let lc = c - 1;
                let li = self.chunk(lc).len as usize;
                let (c2, _) = self.insert_point(
                    lc,
                    li,
                    ProfilePoint {
                        time: end,
                        free: prev_free,
                    },
                );
                self.refresh_summary(c2);
                if c2 != lc {
                    self.refresh_summary(lc);
                }
                return;
            }
            if self.first_time[c] >= end {
                if self.first_time[c] > end {
                    // `end` falls in the gap before this chunk: the
                    // closing point becomes its new first point.
                    let (c2, _) = self.insert_point(
                        c,
                        0,
                        ProfilePoint {
                            time: end,
                            free: prev_free,
                        },
                    );
                    self.refresh_summary(c2);
                }
                return;
            }
            i = 0;
        }
    }

    /// Reserves `width` processors over `[start, start + duration)`.
    /// Zero-length reservations are no-ops.
    ///
    /// # Panics
    /// Panics if any overlapped segment has fewer than `width` free
    /// processors (callers find slots with [`Profile::earliest_fit`]
    /// first) or if `start` precedes the profile origin.
    pub fn allocate(&mut self, start: SimTime, duration: SimDuration, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        assert!(start >= self.origin(), "allocation before profile origin");
        let end = start.saturating_add(duration);
        let (c, i) = self.seg_pos(start);
        self.allocate_span(c, i, start, end, width);
        self.assert_invariants();
    }

    /// Finds the earliest fit and allocates it in one step; returns the
    /// chosen start time. Equivalent to [`Profile::earliest_fit`]
    /// followed by [`Profile::allocate`] — this is the planner's hot
    /// path (once per queued job per policy per event). The fit's
    /// position feeds the allocation walk directly, so the start is
    /// never searched for twice.
    ///
    /// Successive calls are accelerated by a per-width-class *dominance
    /// memo*. Earliest-fit is monotone two ways: a query with larger
    /// width or duration can never fit earlier than an easier one, and
    /// allocation only ever narrows the profile, so an answer computed
    /// earlier in a pass can only move later, never earlier. Therefore
    /// the answer `a` of a previous `(w, d)` query is a sound scan lower
    /// bound for any later `(w', d')` query with `w' >= w` and
    /// `d' >= d`: no fit for the harder query can exist before `a`. One
    /// slot per `ilog2(width)` class keeps the last query; a planning
    /// pass places many same-width jobs (and SJF/LJF passes walk
    /// duration monotonically), so most queries skip the packed prefix
    /// entirely and scan only near the frontier. The memo never changes
    /// any answer — only where the scan starts — and is cleared on
    /// rebuild/restore/reset, the only operations that widen capacity.
    ///
    /// A memoised answer proves only that `[slot.after, slot.answer)`
    /// holds no fit for the slot's query, so a later query may use it
    /// only when additionally constrained to start no earlier
    /// (`after >= slot.after`) — otherwise the skipped prefix could hide
    /// a legitimate earlier fit.
    pub fn allocate_earliest(
        &mut self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> SimTime {
        if duration.is_zero() || width == 0 {
            return self.fit_pos(after, duration, width).2;
        }
        let class = (31 - width.leading_zeros()) as usize;
        let mut from = after;
        let slot = self.memo[class];
        if slot.width != 0
            && width >= slot.width
            && duration >= slot.duration
            && after >= slot.after
        {
            from = from.max(slot.answer);
        }
        let (c, i, start) = self.fit_pos(from, duration, width);
        // The slot records `after`, not `from`: on a hit the old slot
        // already proved `[after, from)` fit-free for this (dominating)
        // query, and the scan just proved `[from, start)`, so the union
        // `[after, start)` is established.
        self.memo[class] = MemoSlot {
            width,
            duration,
            after,
            answer: start,
        };
        let end = start.saturating_add(duration);
        self.allocate_span(c, i, start, end, width);
        self.assert_invariants();
        start
    }

    /// Debug-build invariant check: strictly increasing times, free in
    /// range, full capacity at the horizon, fresh summary arrays.
    fn assert_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let pts = self.to_points();
            assert_eq!(pts.len(), self.n_points, "stale point count");
            assert!(
                pts.windows(2).all(|w| w[0].time < w[1].time),
                "profile times not strictly increasing"
            );
            assert!(
                pts.iter().all(|p| p.free <= self.capacity),
                "free exceeds capacity"
            );
            assert_eq!(
                pts.last().unwrap().free,
                self.capacity,
                "profile must end at full capacity"
            );
            assert_eq!(self.first_time.len(), self.n_chunks());
            assert_eq!(self.min_free.len(), self.n_chunks());
            assert_eq!(self.max_free.len(), self.n_chunks());
            for c in 0..self.n_chunks() {
                let ch = self.chunk(c);
                assert!(ch.len >= 1, "empty chunk");
                assert_eq!(
                    self.first_time[c], ch.times[0],
                    "stale first-time on chunk {c}"
                );
                let lo = ch.frees().iter().copied().min().unwrap();
                let hi = ch.frees().iter().copied().max().unwrap();
                assert_eq!(
                    (self.min_free[c], self.max_free[c]),
                    (lo, hi),
                    "stale summary on chunk {c}"
                );
            }
        }
    }
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profile")
            .field("capacity", &self.capacity)
            .field("points", &self.to_points())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProfile;
    use proptest::prelude::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = Profile::new(16, t(100));
        assert_eq!(p.free_at(t(100)), 16);
        assert_eq!(p.free_at(t(1_000_000)), 16);
        assert_eq!(p.earliest_fit(t(100), d(3_600), 16), t(100));
    }

    #[test]
    fn allocate_carves_a_rectangle() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(10), d(20), 4);
        assert_eq!(p.free_at(t(0)), 10);
        assert_eq!(p.free_at(t(10)), 6);
        assert_eq!(p.free_at(t(29)), 6);
        assert_eq!(p.free_at(t(30)), 10);
    }

    #[test]
    fn overlapping_allocations_stack() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 3);
        p.allocate(t(50), d(100), 3);
        assert_eq!(p.free_at(t(0)), 7);
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(100)), 7);
        assert_eq!(p.free_at(t(150)), 10);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn allocate_panics_on_overcommit() {
        let mut p = Profile::new(4, t(0));
        p.allocate(t(0), d(10), 3);
        p.allocate(t(5), d(10), 3);
    }

    #[test]
    fn earliest_fit_skips_busy_window() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 8); // only 2 free until t=100
        assert_eq!(p.earliest_fit(t(0), d(10), 2), t(0));
        assert_eq!(p.earliest_fit(t(0), d(10), 3), t(100));
    }

    #[test]
    fn earliest_fit_finds_gap_between_reservations() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(50), 8);
        p.allocate(t(100), d(50), 8);
        // 2 free in [0,50) and [100,150); 10 free in [50,100).
        assert_eq!(p.earliest_fit(t(0), d(50), 5), t(50));
        // Needs 60s with width 5: the [50,100) gap is too short; must wait
        // until t=150.
        assert_eq!(p.earliest_fit(t(0), d(60), 5), t(150));
        // Width 2 fits immediately even across the busy windows.
        assert_eq!(p.earliest_fit(t(0), d(200), 2), t(0));
    }

    #[test]
    fn earliest_fit_respects_after_bound() {
        let p = Profile::new(10, t(0));
        assert_eq!(p.earliest_fit(t(500), d(10), 10), t(500));
    }

    #[test]
    fn earliest_fit_starts_mid_segment() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 5);
        // after = 30 lands inside the [0,100) segment with 5 free.
        assert_eq!(p.earliest_fit(t(30), d(10), 5), t(30));
        assert_eq!(p.earliest_fit(t(30), d(10), 6), t(100));
    }

    #[test]
    fn zero_duration_and_zero_width_are_trivial() {
        let mut p = Profile::new(4, t(0));
        assert_eq!(p.earliest_fit(t(7), SimDuration::ZERO, 4), t(7));
        p.allocate(t(7), SimDuration::ZERO, 4); // no-op
        assert_eq!(p.free_at(t(7)), 4);
        assert_eq!(p.earliest_fit(t(7), d(10), 0), t(7));
    }

    #[test]
    fn reset_reuses_the_buffer() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(10), 10);
        p.reset(20, t(5));
        assert_eq!(p.capacity(), 20);
        assert_eq!(p.free_at(t(5)), 20);
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn earliest_fit_rejects_oversized_width() {
        let p = Profile::new(4, t(0));
        let _ = p.earliest_fit(t(0), d(1), 5);
    }

    #[test]
    fn sweep_rebuild_matches_allocate_loop() {
        let spans = [
            (t(0), t(100), 3u32),
            (t(50), t(150), 2),
            (t(100), t(200), 4),
            (t(300), t(310), 8),
        ];
        let mut by_alloc = Profile::new(8, t(0));
        for &(s, e, w) in &spans {
            by_alloc.allocate(s, e.saturating_since(s), w);
        }
        let mut by_sweep = Profile::new(1, t(99));
        let mut scratch = Vec::new();
        by_sweep.rebuild_from_spans(8, t(0), &spans, &mut scratch);
        // Identical as piecewise functions (representations may differ
        // only in redundant points, and the sweep emits none).
        for probe in 0..400 {
            assert_eq!(
                by_sweep.free_at(t(probe)),
                by_alloc.free_at(t(probe)),
                "free differs at t={probe}"
            );
        }
        assert_eq!(by_sweep.capacity(), 8);
    }

    #[test]
    fn sweep_rebuild_clips_to_origin_and_skips_empty_spans() {
        let mut p = Profile::new(1, t(0));
        let mut scratch = Vec::new();
        p.rebuild_from_spans(
            4,
            t(100),
            &[
                (t(0), t(150), 2),   // started before origin: clipped
                (t(0), t(50), 4),    // entirely past: dropped
                (t(120), t(120), 4), // empty: dropped
                (t(130), t(140), 0), // zero width: dropped
            ],
            &mut scratch,
        );
        assert_eq!(p.origin(), t(100));
        assert_eq!(p.free_at(t(100)), 2);
        assert_eq!(p.free_at(t(149)), 2);
        assert_eq!(p.free_at(t(150)), 4);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn sweep_rebuild_panics_on_overcommit() {
        let mut p = Profile::new(1, t(0));
        let mut scratch = Vec::new();
        p.rebuild_from_spans(4, t(0), &[(t(0), t(10), 3), (t(5), t(15), 3)], &mut scratch);
    }

    #[test]
    fn restore_from_copies_without_affecting_the_base() {
        let mut base = Profile::new(8, t(0));
        base.allocate(t(10), d(20), 5);
        let mut work = Profile::new(1, t(999));
        work.restore_from(&base);
        assert_eq!(work.capacity(), 8);
        assert_eq!(work.to_points(), base.to_points());
        // Narrowing the copy leaves the base untouched.
        work.allocate(t(10), d(20), 3);
        assert_eq!(work.free_at(t(15)), 0);
        assert_eq!(base.free_at(t(15)), 3);
        // A second restore really is a reset to the watermark.
        work.restore_from(&base);
        assert_eq!(work.free_at(t(15)), 3);
    }

    /// Enough disjoint allocations to force many chunk splits, so the
    /// summary-skip probes cross chunk boundaries on every query.
    #[test]
    fn deep_profile_spans_many_chunks_and_answers_like_the_oracle() {
        let capacity = 64;
        let mut p = Profile::new(capacity, t(0));
        let mut oracle = NaiveProfile::new(capacity, t(0));
        // A comb of busy teeth: [20k, 20k+10) at width 63 — only 1 free.
        for k in 0..400u64 {
            p.allocate(t(20 * k), d(10), 63);
            oracle.allocate(t(20 * k), d(10), 63);
        }
        assert!(p.n_chunks() > 4, "expected chunk splits, got 1 chunk");
        assert_eq!(p.to_points(), oracle.points());
        for (after, dur, w) in [
            (0u64, 5u64, 1u32),
            (0, 5, 2),
            (0, 15, 2),
            (3, 7, 2),
            (3, 7, 63),
            (1_000, 9, 40),
            (3_999, 11, 64),
            (7_990, 10, 2),
            (8_005, 4, 2),
            (9_000, 1_000, 64),
        ] {
            assert_eq!(
                p.earliest_fit(t(after), d(dur), w),
                oracle.earliest_fit(t(after), d(dur), w),
                "fit differs for after={after} dur={dur} w={w}"
            );
            assert_eq!(p.free_at(t(after)), oracle.free_at(t(after)));
        }
    }

    proptest! {
        /// Random allocate_earliest sequences never violate profile
        /// invariants and always place each reservation at a feasible,
        /// minimal start.
        #[test]
        fn allocate_earliest_is_sound(
            jobs in proptest::collection::vec(
                (1u32..8, 1u64..500, 0u64..300), // (width, duration s, after s)
                1..60,
            )
        ) {
            let capacity = 8;
            let mut p = Profile::new(capacity, t(0));
            // Shadow model: sample free capacity on a 1s grid.
            let mut placed: Vec<(u64, u64, u32)> = Vec::new(); // (start, end, width)
            for (w, dur, after) in jobs {
                let start = p.earliest_fit(t(after), d(dur), w);
                p.allocate(start, d(dur), w);
                let s = start.as_millis() / 1000;
                placed.push((s, s + dur, w));
                prop_assert!(s >= after);
            }
            // No instant may be overcommitted (check at all event edges).
            let mut edges: Vec<u64> = placed.iter().flat_map(|&(s, e, _)| [s, e]).collect();
            edges.sort_unstable();
            edges.dedup();
            for &edge in &edges {
                let used: u32 = placed
                    .iter()
                    .filter(|&&(s, e, _)| s <= edge && edge < e)
                    .map(|&(_, _, w)| w)
                    .sum();
                prop_assert!(used <= capacity, "overcommit at {edge}: {used}");
                // Cross-check the profile agrees with the shadow model.
                prop_assert_eq!(p.free_at(t(edge)), capacity - used);
            }
        }

        /// earliest_fit returns the *minimal* feasible start: starting the
        /// same job one segment earlier must be infeasible.
        #[test]
        fn earliest_fit_is_minimal(
            pre in proptest::collection::vec((1u32..8, 1u64..200, 0u64..200), 0..20),
            w in 1u32..8,
            dur in 1u64..200,
            after in 0u64..100,
        ) {
            let mut p = Profile::new(8, t(0));
            for (pw, pdur, pafter) in pre {
                let s = p.earliest_fit(t(pafter), d(pdur), pw);
                p.allocate(s, d(pdur), pw);
            }
            let start = p.earliest_fit(t(after), d(dur), w);
            prop_assert!(start >= t(after));
            // Feasible at `start`: every second within has enough room.
            let s0 = start.as_millis() / 1000;
            for off in 0..dur {
                prop_assert!(p.free_at(t(s0 + off)) >= w);
            }
            // Minimal: any earlier start in [after, start) hits a blocked
            // instant within its window.
            let mut probe = after;
            while probe < s0 {
                let blocked = (0..dur).any(|off| p.free_at(t(probe + off)) < w);
                prop_assert!(blocked, "start {probe} would also fit (earliest was {s0})");
                probe += 1;
            }
        }

        /// The endpoint sweep builds the same piecewise function as the
        /// allocate loop, for any non-overcommitting span set — and every
        /// earliest_fit query answers identically on both.
        #[test]
        fn sweep_equals_allocate_loop(
            raw in proptest::collection::vec((1u32..5, 0u64..300, 1u64..200), 0..25),
            queries in proptest::collection::vec((1u32..9, 0u64..400, 1u64..150), 1..10),
        ) {
            let capacity = 16u32;
            // Keep the span set feasible by stacking greedily: place each
            // span at its requested time only if it still fits there.
            let mut by_alloc = Profile::new(capacity, t(0));
            let mut spans: Vec<(SimTime, SimTime, u32)> = Vec::new();
            for (w, start, dur) in raw {
                let fits = (start..start + dur).all(|sec| by_alloc.free_at(t(sec)) >= w);
                if fits {
                    by_alloc.allocate(t(start), d(dur), w);
                    spans.push((t(start), t(start + dur), w));
                }
            }
            let mut by_sweep = Profile::new(1, t(7));
            let mut scratch = Vec::new();
            by_sweep.rebuild_from_spans(capacity, t(0), &spans, &mut scratch);
            for sec in 0..600 {
                prop_assert_eq!(by_sweep.free_at(t(sec)), by_alloc.free_at(t(sec)));
            }
            for (w, after, dur) in queries {
                prop_assert_eq!(
                    by_sweep.earliest_fit(t(after), d(dur), w),
                    by_alloc.earliest_fit(t(after), d(dur), w)
                );
            }
        }

        /// The indexed profile against the retained linear-scan oracle:
        /// long random interleavings of allocate_earliest / allocate /
        /// earliest_fit / free_at / restore_from agree bit-for-bit on
        /// every answer and on the full point list. Sequences are long
        /// enough (up to 300 ops on a tight horizon) to force chunk
        /// splits, so the summary-skip paths are exercised across chunks.
        #[test]
        fn indexed_profile_matches_naive_oracle(
            ops in proptest::collection::vec(
                (0u8..5, 1u32..17, 0u64..4_000, 1u64..700),
                1..300,
            ),
            origin in 0u64..50,
        ) {
            let capacity = 16u32;
            let mut p = Profile::new(capacity, t(origin));
            let mut oracle = NaiveProfile::new(capacity, t(origin));
            // Watermark bases for restore_from, captured mid-sequence.
            let mut base = Profile::new(capacity, t(origin));
            let mut oracle_base = NaiveProfile::new(capacity, t(origin));
            for (kind, w, after, dur) in ops {
                match kind {
                    0 | 1 => {
                        // allocate_earliest is the planner hot path — give
                        // it double weight.
                        let a = p.allocate_earliest(t(after), d(dur), w);
                        let b = oracle.allocate_earliest(t(after), d(dur), w);
                        prop_assert_eq!(a, b, "allocate_earliest diverged");
                    }
                    2 => {
                        let a = p.earliest_fit(t(after), d(dur), w);
                        let b = oracle.earliest_fit(t(after), d(dur), w);
                        prop_assert_eq!(a, b, "earliest_fit diverged");
                        // Allocate at the agreed fit so states keep evolving.
                        p.allocate(a, d(dur), w);
                        oracle.allocate(a, d(dur), w);
                    }
                    3 => {
                        prop_assert_eq!(p.free_at(t(after)), oracle.free_at(t(after)));
                        // Capture the current state as the new watermark.
                        base.restore_from(&p);
                        oracle_base.restore_from(&oracle);
                    }
                    _ => {
                        // Roll both back to the watermark.
                        p.restore_from(&base);
                        oracle.restore_from(&oracle_base);
                    }
                }
                prop_assert_eq!(p.capacity(), oracle.capacity());
                prop_assert_eq!(p.len(), oracle.points().len());
            }
            prop_assert_eq!(p.to_points(), oracle.points().to_vec());
        }

        /// Boundary-instant windows: fits queried exactly at break
        /// points, one tick before and after, with zero-width /
        /// zero-duration / full-capacity extremes — indexed and naive
        /// answers match everywhere.
        #[test]
        fn indexed_fit_matches_naive_at_boundaries(
            spans in proptest::collection::vec((1u32..9, 0u64..500, 1u64..120), 1..40),
            durs in proptest::collection::vec(1u64..200, 1..6),
        ) {
            let capacity = 16u32;
            let mut p = Profile::new(capacity, t(0));
            let mut oracle = NaiveProfile::new(capacity, t(0));
            for &(w, start, dur) in &spans {
                let s = oracle.earliest_fit(t(start), d(dur), w);
                oracle.allocate(s, d(dur), w);
                let s2 = p.earliest_fit(t(start), d(dur), w);
                prop_assert_eq!(s2, s);
                p.allocate(s, d(dur), w);
            }
            // Probe exactly at every break point and ±1s around it.
            let probes: Vec<u64> = oracle
                .points()
                .iter()
                .flat_map(|pt| {
                    let s = pt.time.as_millis() / 1000;
                    [s.saturating_sub(1), s, s + 1]
                })
                .collect();
            for &probe in &probes {
                prop_assert_eq!(p.free_at(t(probe)), oracle.free_at(t(probe)));
                for &dur in &durs {
                    for w in [0u32, 1, 8, capacity] {
                        prop_assert_eq!(
                            p.earliest_fit(t(probe), d(dur), w),
                            oracle.earliest_fit(t(probe), d(dur), w),
                            "diverged at probe={} dur={} w={}", probe, dur, w
                        );
                    }
                    prop_assert_eq!(
                        p.earliest_fit(t(probe), SimDuration::ZERO, capacity),
                        oracle.earliest_fit(t(probe), SimDuration::ZERO, capacity)
                    );
                }
            }
        }

        /// rebuild_from_spans parity: sweeping the same span set into an
        /// indexed and a naive profile yields identical point lists.
        #[test]
        fn indexed_sweep_matches_naive_sweep(
            raw in proptest::collection::vec((1u32..5, 0u64..2_000, 1u64..300), 0..120),
            origin in 0u64..100,
        ) {
            let capacity = 16u32;
            // Greedily keep the span set feasible.
            let mut feas = NaiveProfile::new(capacity, t(0));
            let mut spans: Vec<(SimTime, SimTime, u32)> = Vec::new();
            for (w, start, dur) in raw {
                let fits = (start..start + dur).all(|sec| feas.free_at(t(sec)) >= w);
                if fits {
                    feas.allocate(t(start), d(dur), w);
                    spans.push((t(start), t(start + dur), w));
                }
            }
            let mut scratch = Vec::new();
            let mut p = Profile::new(1, t(3));
            p.rebuild_from_spans(capacity, t(origin), &spans, &mut scratch);
            let mut oracle = NaiveProfile::new(1, t(3));
            oracle.rebuild_from_spans(capacity, t(origin), &spans, &mut scratch);
            prop_assert_eq!(p.to_points(), oracle.points().to_vec());
        }
    }
}
