//! The free-capacity profile: how many processors are free at every
//! future instant.
//!
//! A profile is a piecewise-constant function of time, stored as a sorted
//! vector of `(time, free)` break points; the free value of the last
//! point extends to infinity. The planner queries it with
//! [`Profile::earliest_fit`] and narrows it with [`Profile::allocate`].
//!
//! Invariants (checked in debug builds and by property tests):
//! * point times are strictly increasing;
//! * `0 <= free <= capacity` everywhere;
//! * the final point's free value equals the full capacity (every
//!   reservation ends eventually).

use dynp_des::{SimDuration, SimTime};

/// One break point: `free` processors are available from `time` until the
/// next point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilePoint {
    /// Start of the segment.
    pub time: SimTime,
    /// Free processors throughout the segment.
    pub free: u32,
}

/// Piecewise-constant free-capacity timeline.
#[derive(Clone, Debug)]
pub struct Profile {
    points: Vec<ProfilePoint>,
    capacity: u32,
}

impl Profile {
    /// Creates a profile with all `capacity` processors free from
    /// `origin` onwards.
    pub fn new(capacity: u32, origin: SimTime) -> Self {
        assert!(capacity >= 1, "profile needs at least one processor");
        Profile {
            points: vec![ProfilePoint {
                time: origin,
                free: capacity,
            }],
            capacity,
        }
    }

    /// Resets to the fully-free state at `origin`, reusing the
    /// allocation — the planner rebuilds the profile at every event.
    pub fn reset(&mut self, capacity: u32, origin: SimTime) {
        assert!(capacity >= 1);
        self.points.clear();
        self.points.push(ProfilePoint {
            time: origin,
            free: capacity,
        });
        self.capacity = capacity;
    }

    /// Rebuilds the whole profile from `(start, end, width)` spans in one
    /// endpoint sweep: O((S + R) log R) for R spans producing S points,
    /// instead of the O(R·P) of repeated [`Profile::allocate`] calls
    /// (each of which `Vec::insert`s into the point list). Spans starting
    /// before `origin` are clipped to it; empty and zero-width spans are
    /// ignored. `events` is caller-provided scratch so the per-event hot
    /// path allocates nothing.
    ///
    /// The resulting profile is the canonical minimal representation of
    /// the same piecewise-constant function the allocate-loop produces,
    /// so every [`Profile::earliest_fit`] answer — and therefore every
    /// schedule planned on top — is identical.
    ///
    /// # Panics
    /// Panics if the spans overcommit the machine at any instant (the
    /// same condition on which the allocate-loop panics) or if
    /// `capacity` is zero.
    pub fn rebuild_from_spans(
        &mut self,
        capacity: u32,
        origin: SimTime,
        spans: &[(SimTime, SimTime, u32)],
        events: &mut Vec<(SimTime, i64)>,
    ) {
        assert!(capacity >= 1, "profile needs at least one processor");
        self.capacity = capacity;
        self.points.clear();
        self.points.push(ProfilePoint {
            time: origin,
            free: capacity,
        });
        events.clear();
        for &(start, end, width) in spans {
            if width == 0 {
                continue;
            }
            let start = start.max(origin);
            if end <= start {
                continue;
            }
            events.push((start, width as i64));
            events.push((end, -(width as i64)));
        }
        events.sort_unstable_by_key(|&(time, _)| time);
        let mut used: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let time = events[i].0;
            let mut delta = 0i64;
            while i < events.len() && events[i].0 == time {
                delta += events[i].1;
                i += 1;
            }
            if delta == 0 {
                continue;
            }
            used += delta;
            assert!(
                (0..=capacity as i64).contains(&used),
                "overcommit: {used} processors reserved at {time:?}, capacity {capacity}"
            );
            let free = capacity - used as u32;
            let last = self.points.last_mut().expect("origin point present");
            if last.time == time {
                last.free = free;
            } else {
                self.points.push(ProfilePoint { time, free });
            }
        }
        self.assert_invariants();
    }

    /// Makes this profile a copy of `base` without reallocating (one
    /// `memcpy` of the point list). This is the per-policy "restore to
    /// watermark" step: the planner builds the running-jobs base once
    /// per event and every policy's planning pass starts from a restored
    /// copy instead of rebuilding it.
    pub fn restore_from(&mut self, base: &Profile) {
        self.capacity = base.capacity;
        self.points.clear();
        self.points.extend_from_slice(&base.points);
    }

    /// Total processors of the machine.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The break points (for inspection and plotting).
    pub fn points(&self) -> &[ProfilePoint] {
        &self.points
    }

    /// Start of the profile (its first break point).
    pub fn origin(&self) -> SimTime {
        self.points[0].time
    }

    /// Free processors at instant `t` (clamped to the origin on the left).
    pub fn free_at(&self, t: SimTime) -> u32 {
        self.points[self.seg_index(t)].free
    }

    /// Index of the segment containing `t` (the last point with
    /// `time <= t`, or segment 0 for earlier instants).
    fn seg_index(&self, t: SimTime) -> usize {
        self.points
            .partition_point(|p| p.time <= t)
            .saturating_sub(1)
    }

    /// Ensures a break point exists exactly at `t` (splitting the
    /// containing segment) and returns its index. `t` must not precede
    /// the origin.
    fn split_at(&mut self, t: SimTime) -> usize {
        debug_assert!(t >= self.origin(), "split before profile origin");
        let i = self.seg_index(t);
        if self.points[i].time == t {
            return i;
        }
        let free = self.points[i].free;
        self.points.insert(i + 1, ProfilePoint { time: t, free });
        i + 1
    }

    /// Reserves `width` processors over `[start, start + duration)`.
    /// Zero-length reservations are no-ops.
    ///
    /// # Panics
    /// Panics if any overlapped segment has fewer than `width` free
    /// processors (callers find slots with [`Profile::earliest_fit`]
    /// first) or if `start` precedes the profile origin.
    pub fn allocate(&mut self, start: SimTime, duration: SimDuration, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        assert!(start >= self.origin(), "allocation before profile origin");
        let end = start.saturating_add(duration);
        let s = self.split_at(start);
        let e = self.split_at(end);
        for p in &mut self.points[s..e] {
            assert!(
                p.free >= width,
                "overcommit: segment at {:?} has {} free, needs {width}",
                p.time,
                p.free
            );
            p.free -= width;
        }
        self.assert_invariants();
    }

    /// The earliest instant `t >= after` at which `width` processors stay
    /// free for the whole span `[t, t + duration)`.
    ///
    /// Always succeeds because the profile returns to full capacity after
    /// its last break point.
    ///
    /// # Panics
    /// Panics if `width` exceeds the machine capacity.
    pub fn earliest_fit(&self, after: SimTime, duration: SimDuration, width: u32) -> SimTime {
        self.earliest_fit_indexed(after, duration, width).0
    }

    /// [`Profile::earliest_fit`] plus the index of the segment containing
    /// the returned instant, so callers that allocate right away need not
    /// re-search.
    fn earliest_fit_indexed(
        &self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> (SimTime, usize) {
        assert!(
            width <= self.capacity,
            "job width {width} exceeds capacity {}",
            self.capacity
        );
        let mut candidate = after.max(self.origin());
        let mut i = self.seg_index(candidate);
        if width == 0 || duration.is_zero() {
            return (candidate, i);
        }
        'outer: loop {
            let end = candidate.saturating_add(duration);
            // Scan segments overlapping [candidate, end) for a blocker.
            let mut j = i;
            while j < self.points.len() && self.points[j].time < end {
                if self.points[j].free < width {
                    let seg_end = self.points.get(j + 1).map_or(SimTime::MAX, |p| p.time);
                    if seg_end > candidate {
                        // Blocked: jump past this segment to the next
                        // instant with enough capacity.
                        let mut k = j + 1;
                        while k < self.points.len() && self.points[k].free < width {
                            k += 1;
                        }
                        debug_assert!(k < self.points.len(), "profile must end at full capacity");
                        candidate = self.points[k].time;
                        i = k;
                        continue 'outer;
                    }
                }
                j += 1;
            }
            return (candidate, i);
        }
    }

    /// Finds the earliest fit and allocates it in one step; returns the
    /// chosen start time. Equivalent to [`Profile::earliest_fit`] followed
    /// by [`Profile::allocate`], but reuses the fit's segment index and
    /// inserts both new break points with a single tail shift instead of
    /// two `Vec::insert`s — this is the planner's hot path (once per
    /// queued job per policy per event).
    pub fn allocate_earliest(
        &mut self,
        after: SimTime,
        duration: SimDuration,
        width: u32,
    ) -> SimTime {
        let (start, s_seg) = self.earliest_fit_indexed(after, duration, width);
        if duration.is_zero() || width == 0 {
            return start;
        }
        debug_assert!(self.points[s_seg].time <= start);
        let end = start.saturating_add(duration);

        // First segment index whose point time is >= end, scanning
        // forward from the fit segment (the span rarely covers many).
        let mut e_seg = s_seg;
        while e_seg < self.points.len() && self.points[e_seg].time < end {
            e_seg += 1;
        }
        // Break points to materialize: one at `start` (unless a point
        // sits there already), one at `end` (ditto). Their free values
        // are those of the segments they split.
        let need_s = self.points[s_seg].time != start;
        let need_e = e_seg >= self.points.len() || self.points[e_seg].time != end;
        let free_at_end = self.points[e_seg - 1].free;
        let grow = usize::from(need_s) + usize::from(need_e);
        let old_len = self.points.len();
        if grow > 0 {
            self.points.resize(
                old_len + grow,
                ProfilePoint {
                    time: SimTime::MAX,
                    free: self.capacity,
                },
            );
            // One shift of the tail [e_seg..] by the full growth, then —
            // when both points are new — one shift of the covered middle
            // (s_seg+1..e_seg) by one.
            self.points.copy_within(e_seg..old_len, e_seg + grow);
            if need_e {
                self.points[e_seg + usize::from(need_s)] = ProfilePoint {
                    time: end,
                    free: free_at_end,
                };
            }
            if need_s {
                self.points.copy_within(s_seg + 1..e_seg, s_seg + 2);
                self.points[s_seg + 1] = ProfilePoint {
                    time: start,
                    free: self.points[s_seg].free,
                };
            }
        }
        // Narrow every segment covering [start, end).
        let first = s_seg + usize::from(need_s);
        let last = e_seg + usize::from(need_s);
        for p in &mut self.points[first..last] {
            assert!(
                p.free >= width,
                "overcommit: segment at {:?} has {} free, needs {width}",
                p.time,
                p.free
            );
            p.free -= width;
        }
        self.assert_invariants();
        start
    }

    /// Debug-build invariant check: strictly increasing times, free in
    /// range, full capacity at the horizon.
    fn assert_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            assert!(
                self.points.windows(2).all(|w| w[0].time < w[1].time),
                "profile times not strictly increasing"
            );
            assert!(
                self.points.iter().all(|p| p.free <= self.capacity),
                "free exceeds capacity"
            );
            assert_eq!(
                self.points.last().unwrap().free,
                self.capacity,
                "profile must end at full capacity"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = Profile::new(16, t(100));
        assert_eq!(p.free_at(t(100)), 16);
        assert_eq!(p.free_at(t(1_000_000)), 16);
        assert_eq!(p.earliest_fit(t(100), d(3_600), 16), t(100));
    }

    #[test]
    fn allocate_carves_a_rectangle() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(10), d(20), 4);
        assert_eq!(p.free_at(t(0)), 10);
        assert_eq!(p.free_at(t(10)), 6);
        assert_eq!(p.free_at(t(29)), 6);
        assert_eq!(p.free_at(t(30)), 10);
    }

    #[test]
    fn overlapping_allocations_stack() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 3);
        p.allocate(t(50), d(100), 3);
        assert_eq!(p.free_at(t(0)), 7);
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(100)), 7);
        assert_eq!(p.free_at(t(150)), 10);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn allocate_panics_on_overcommit() {
        let mut p = Profile::new(4, t(0));
        p.allocate(t(0), d(10), 3);
        p.allocate(t(5), d(10), 3);
    }

    #[test]
    fn earliest_fit_skips_busy_window() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 8); // only 2 free until t=100
        assert_eq!(p.earliest_fit(t(0), d(10), 2), t(0));
        assert_eq!(p.earliest_fit(t(0), d(10), 3), t(100));
    }

    #[test]
    fn earliest_fit_finds_gap_between_reservations() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(50), 8);
        p.allocate(t(100), d(50), 8);
        // 2 free in [0,50) and [100,150); 10 free in [50,100).
        assert_eq!(p.earliest_fit(t(0), d(50), 5), t(50));
        // Needs 60s with width 5: the [50,100) gap is too short; must wait
        // until t=150.
        assert_eq!(p.earliest_fit(t(0), d(60), 5), t(150));
        // Width 2 fits immediately even across the busy windows.
        assert_eq!(p.earliest_fit(t(0), d(200), 2), t(0));
    }

    #[test]
    fn earliest_fit_respects_after_bound() {
        let p = Profile::new(10, t(0));
        assert_eq!(p.earliest_fit(t(500), d(10), 10), t(500));
    }

    #[test]
    fn earliest_fit_starts_mid_segment() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(100), 5);
        // after = 30 lands inside the [0,100) segment with 5 free.
        assert_eq!(p.earliest_fit(t(30), d(10), 5), t(30));
        assert_eq!(p.earliest_fit(t(30), d(10), 6), t(100));
    }

    #[test]
    fn zero_duration_and_zero_width_are_trivial() {
        let mut p = Profile::new(4, t(0));
        assert_eq!(p.earliest_fit(t(7), SimDuration::ZERO, 4), t(7));
        p.allocate(t(7), SimDuration::ZERO, 4); // no-op
        assert_eq!(p.free_at(t(7)), 4);
        assert_eq!(p.earliest_fit(t(7), d(10), 0), t(7));
    }

    #[test]
    fn reset_reuses_the_buffer() {
        let mut p = Profile::new(10, t(0));
        p.allocate(t(0), d(10), 10);
        p.reset(20, t(5));
        assert_eq!(p.capacity(), 20);
        assert_eq!(p.free_at(t(5)), 20);
        assert_eq!(p.points().len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn earliest_fit_rejects_oversized_width() {
        let p = Profile::new(4, t(0));
        let _ = p.earliest_fit(t(0), d(1), 5);
    }

    #[test]
    fn sweep_rebuild_matches_allocate_loop() {
        let spans = [
            (t(0), t(100), 3u32),
            (t(50), t(150), 2),
            (t(100), t(200), 4),
            (t(300), t(310), 8),
        ];
        let mut by_alloc = Profile::new(8, t(0));
        for &(s, e, w) in &spans {
            by_alloc.allocate(s, e.saturating_since(s), w);
        }
        let mut by_sweep = Profile::new(1, t(99));
        let mut scratch = Vec::new();
        by_sweep.rebuild_from_spans(8, t(0), &spans, &mut scratch);
        // Identical as piecewise functions (representations may differ
        // only in redundant points, and the sweep emits none).
        for probe in 0..400 {
            assert_eq!(
                by_sweep.free_at(t(probe)),
                by_alloc.free_at(t(probe)),
                "free differs at t={probe}"
            );
        }
        assert_eq!(by_sweep.capacity(), 8);
    }

    #[test]
    fn sweep_rebuild_clips_to_origin_and_skips_empty_spans() {
        let mut p = Profile::new(1, t(0));
        let mut scratch = Vec::new();
        p.rebuild_from_spans(
            4,
            t(100),
            &[
                (t(0), t(150), 2),   // started before origin: clipped
                (t(0), t(50), 4),    // entirely past: dropped
                (t(120), t(120), 4), // empty: dropped
                (t(130), t(140), 0), // zero width: dropped
            ],
            &mut scratch,
        );
        assert_eq!(p.origin(), t(100));
        assert_eq!(p.free_at(t(100)), 2);
        assert_eq!(p.free_at(t(149)), 2);
        assert_eq!(p.free_at(t(150)), 4);
        assert_eq!(p.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn sweep_rebuild_panics_on_overcommit() {
        let mut p = Profile::new(1, t(0));
        let mut scratch = Vec::new();
        p.rebuild_from_spans(4, t(0), &[(t(0), t(10), 3), (t(5), t(15), 3)], &mut scratch);
    }

    #[test]
    fn restore_from_copies_without_affecting_the_base() {
        let mut base = Profile::new(8, t(0));
        base.allocate(t(10), d(20), 5);
        let mut work = Profile::new(1, t(999));
        work.restore_from(&base);
        assert_eq!(work.capacity(), 8);
        assert_eq!(work.points(), base.points());
        // Narrowing the copy leaves the base untouched.
        work.allocate(t(10), d(20), 3);
        assert_eq!(work.free_at(t(15)), 0);
        assert_eq!(base.free_at(t(15)), 3);
        // A second restore really is a reset to the watermark.
        work.restore_from(&base);
        assert_eq!(work.free_at(t(15)), 3);
    }

    proptest! {
        /// Random allocate_earliest sequences never violate profile
        /// invariants and always place each reservation at a feasible,
        /// minimal start.
        #[test]
        fn allocate_earliest_is_sound(
            jobs in proptest::collection::vec(
                (1u32..8, 1u64..500, 0u64..300), // (width, duration s, after s)
                1..60,
            )
        ) {
            let capacity = 8;
            let mut p = Profile::new(capacity, t(0));
            // Shadow model: sample free capacity on a 1s grid.
            let mut placed: Vec<(u64, u64, u32)> = Vec::new(); // (start, end, width)
            for (w, dur, after) in jobs {
                let start = p.earliest_fit(t(after), d(dur), w);
                p.allocate(start, d(dur), w);
                let s = start.as_millis() / 1000;
                placed.push((s, s + dur, w));
                prop_assert!(s >= after);
            }
            // No instant may be overcommitted (check at all event edges).
            let mut edges: Vec<u64> = placed.iter().flat_map(|&(s, e, _)| [s, e]).collect();
            edges.sort_unstable();
            edges.dedup();
            for &edge in &edges {
                let used: u32 = placed
                    .iter()
                    .filter(|&&(s, e, _)| s <= edge && edge < e)
                    .map(|&(_, _, w)| w)
                    .sum();
                prop_assert!(used <= capacity, "overcommit at {edge}: {used}");
                // Cross-check the profile agrees with the shadow model.
                prop_assert_eq!(p.free_at(t(edge)), capacity - used);
            }
        }

        /// earliest_fit returns the *minimal* feasible start: starting the
        /// same job one segment earlier must be infeasible.
        #[test]
        fn earliest_fit_is_minimal(
            pre in proptest::collection::vec((1u32..8, 1u64..200, 0u64..200), 0..20),
            w in 1u32..8,
            dur in 1u64..200,
            after in 0u64..100,
        ) {
            let mut p = Profile::new(8, t(0));
            for (pw, pdur, pafter) in pre {
                let s = p.earliest_fit(t(pafter), d(pdur), pw);
                p.allocate(s, d(pdur), pw);
            }
            let start = p.earliest_fit(t(after), d(dur), w);
            prop_assert!(start >= t(after));
            // Feasible at `start`: every second within has enough room.
            let s0 = start.as_millis() / 1000;
            for off in 0..dur {
                prop_assert!(p.free_at(t(s0 + off)) >= w);
            }
            // Minimal: any earlier start in [after, start) hits a blocked
            // instant within its window.
            let mut probe = after;
            while probe < s0 {
                let blocked = (0..dur).any(|off| p.free_at(t(probe + off)) < w);
                prop_assert!(blocked, "start {probe} would also fit (earliest was {s0})");
                probe += 1;
            }
        }

        /// The endpoint sweep builds the same piecewise function as the
        /// allocate loop, for any non-overcommitting span set — and every
        /// earliest_fit query answers identically on both.
        #[test]
        fn sweep_equals_allocate_loop(
            raw in proptest::collection::vec((1u32..5, 0u64..300, 1u64..200), 0..25),
            queries in proptest::collection::vec((1u32..9, 0u64..400, 1u64..150), 1..10),
        ) {
            let capacity = 16u32;
            // Keep the span set feasible by stacking greedily: place each
            // span at its requested time only if it still fits there.
            let mut by_alloc = Profile::new(capacity, t(0));
            let mut spans: Vec<(SimTime, SimTime, u32)> = Vec::new();
            for (w, start, dur) in raw {
                let fits = (start..start + dur).all(|sec| by_alloc.free_at(t(sec)) >= w);
                if fits {
                    by_alloc.allocate(t(start), d(dur), w);
                    spans.push((t(start), t(start + dur), w));
                }
            }
            let mut by_sweep = Profile::new(1, t(7));
            let mut scratch = Vec::new();
            by_sweep.rebuild_from_spans(capacity, t(0), &spans, &mut scratch);
            for sec in 0..600 {
                prop_assert_eq!(by_sweep.free_at(t(sec)), by_alloc.free_at(t(sec)));
            }
            for (w, after, dur) in queries {
                prop_assert_eq!(
                    by_sweep.earliest_fit(t(after), d(dur), w),
                    by_alloc.earliest_fit(t(after), d(dur), w)
                );
            }
        }
    }
}
