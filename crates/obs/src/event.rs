//! The trace event taxonomy: what the simulator can record, and at which
//! verbosity level each kind is captured.

use dynp_des::SimTime;

/// Verbosity of a [`Tracer`](crate::Tracer). Levels are cumulative: each
/// level records everything the previous one does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing (the zero-overhead default).
    #[default]
    Off,
    /// The semantic audit trail: decider verdicts, policy switches,
    /// reservation admission verdicts.
    Decisions,
    /// Plus timing: per-policy plan construction and RAII phase spans
    /// with wall-clock durations.
    Spans,
    /// Plus the firehose: every sim-event dispatch and every backfill
    /// move.
    All,
}

impl TraceLevel {
    /// Parses a level name as accepted by `--trace-level`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(TraceLevel::Off),
            "decisions" => Some(TraceLevel::Decisions),
            "spans" => Some(TraceLevel::Spans),
            "all" => Some(TraceLevel::All),
            _ => None,
        }
    }

    /// Display name (round-trips through [`TraceLevel::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Decisions => "decisions",
            TraceLevel::Spans => "spans",
            TraceLevel::All => "all",
        }
    }
}

/// The capture class of an event — which [`TraceLevel`] first records it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClass {
    /// Captured from [`TraceLevel::Decisions`] up.
    Decision,
    /// Captured from [`TraceLevel::Spans`] up.
    Span,
    /// Captured only at [`TraceLevel::All`].
    Dispatch,
}

impl TraceClass {
    /// True when `level` captures this class.
    pub fn captured_at(self, level: TraceLevel) -> bool {
        match self {
            TraceClass::Decision => level >= TraceLevel::Decisions,
            TraceClass::Span => level >= TraceLevel::Spans,
            TraceClass::Dispatch => level >= TraceLevel::All,
        }
    }
}

/// One structured observation of the running simulation.
///
/// Policies, decider rules and admission verdicts cross the crate
/// boundary as `&'static str` labels so this crate stays below `rms` and
/// `core` in the dependency order (see the crate docs).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A simulation event was dispatched by the driver loop. `kind` is
    /// the driver's label (`"arrive"`, `"finish"`, `"res_request"`, …)
    /// and `id` the job or request id it concerns.
    SimEvent {
        /// Driver event label.
        kind: &'static str,
        /// Job or request id the event concerns.
        id: u64,
    },
    /// One per-policy plan was constructed during a self-tuning step.
    PlanBuilt {
        /// The candidate policy the queue was ordered by.
        policy: &'static str,
        /// Waiting-queue depth at planning time.
        queue_depth: u32,
        /// Number of points in the shared base capacity profile — the
        /// size of the structure `earliest_fit` descends.
        profile_points: u32,
        /// Worker threads the step's plan fan-out ran on (1 when the
        /// batch stayed sequential). Per-policy `dur_ns` values overlap
        /// in wall time when this exceeds 1, so phase attribution must
        /// divide by it.
        workers: u32,
        /// Wall-clock nanoseconds the plan construction took.
        dur_ns: u64,
    },
    /// A decider ran: its input vector, the incumbent, the verdict, and
    /// which rule of the decider produced it.
    Decision {
        /// Policy active before the decision.
        old: &'static str,
        /// Policy the decider chose.
        verdict: &'static str,
        /// The decider rule that fired (e.g. `"argmin"`,
        /// `"stay-incumbent-tied"`, `"preferred-holds"`).
        rule: &'static str,
        /// Per-policy scores handed to the decider (lower = better), in
        /// candidate order.
        scores: Vec<(&'static str, f64)>,
    },
    /// The active policy changed (recorded in addition to the
    /// [`TraceEvent::Decision`] that caused it).
    PolicySwitch {
        /// Policy switched away from.
        from: &'static str,
        /// Policy switched to.
        to: &'static str,
    },
    /// The admission controller decided a reservation request.
    AdmissionVerdict {
        /// Request id from the request stream.
        request: u32,
        /// `"admitted"` or a [`RejectReason`] label
        /// (`"no-capacity"`, `"breaks-guarantee"`, …).
        verdict: &'static str,
    },
    /// A job started while jobs submitted earlier stayed waiting — an
    /// implicit-backfilling move.
    BackfillMove {
        /// The job that jumped ahead.
        job: u32,
        /// Its processor width.
        width: u32,
        /// How many earlier-submitted jobs it overtook.
        overtaken: u32,
    },
    /// A named wall-clock phase measured by an RAII
    /// [`SpanGuard`](crate::SpanGuard) (`"step"`, `"prepare"`,
    /// `"admission"`, `"event"`, …).
    Span {
        /// Phase name.
        name: &'static str,
        /// Wall-clock nanoseconds the phase took.
        dur_ns: u64,
    },
    /// A node failed and left the usable machine.
    NodeDown {
        /// Node (processor) index that went down.
        node: u32,
    },
    /// A failed node was repaired and rejoined the usable machine.
    NodeUp {
        /// Node (processor) index that came back.
        node: u32,
    },
    /// A running job attempt failed (`"node-loss"`, `"crash"`,
    /// `"overrun"`) and was evicted from the machine.
    JobFault {
        /// The failed job.
        job: u32,
        /// Which attempt failed (1 = first execution).
        attempt: u32,
        /// Failure cause label.
        reason: &'static str,
    },
    /// A failed job was requeued for another attempt after backoff.
    JobRetry {
        /// The retried job.
        job: u32,
        /// The attempt that just failed.
        attempt: u32,
        /// Backoff delay before the resubmission, in milliseconds.
        delay_ms: u64,
    },
    /// A failed job exhausted its retry budget and left the system.
    JobLost {
        /// The lost job.
        job: u32,
        /// How many attempts were made in total.
        attempts: u32,
    },
    /// Schedule repair changed an admitted reservation window after a
    /// capacity loss (`"downgraded"` or `"revoked"`).
    ReservationRepair {
        /// Book id of the repaired window.
        reservation: u32,
        /// What repair did to it.
        action: &'static str,
        /// Width after the repair (0 when revoked).
        width: u32,
    },
    /// The federation router dispatched an arriving job to a cluster.
    JobRouted {
        /// The routed job (global dense id).
        job: u32,
        /// Cluster the job was submitted at.
        from: u32,
        /// Cluster the job was dispatched to.
        to: u32,
        /// Transfer latency paid (0 when routed locally), milliseconds.
        transfer_ms: u64,
    },
    /// A waiting job was withdrawn from this cluster's queue for
    /// migration (recorded on the *origin* cluster's tracer).
    MigrateDepart {
        /// The migrating job (global dense id).
        job: u32,
        /// Origin cluster.
        from: u32,
        /// Destination cluster.
        to: u32,
    },
    /// A migrated job arrived and entered this cluster's queue (recorded
    /// on the *destination* cluster's tracer).
    MigrateArrive {
        /// The migrated job (global dense id).
        job: u32,
        /// Origin cluster.
        from: u32,
        /// Destination cluster.
        to: u32,
    },
    /// The service daemon wrote a checkpoint of the full simulation state.
    CheckpointWritten {
        /// Journal sequence number the checkpoint covers (every journaled
        /// command with `seq <= journal_seq` is baked into it).
        journal_seq: u64,
        /// Serialized checkpoint size on disk.
        bytes: u64,
    },
    /// Recovery loaded a checkpoint and will replay the journal suffix.
    CheckpointLoaded {
        /// Journal sequence number the checkpoint covered.
        journal_seq: u64,
        /// Journaled commands replayed on top of it.
        replayed: u64,
    },
    /// The journal writer sealed a segment and opened the next one.
    JournalRotated {
        /// Index of the newly opened segment.
        segment: u32,
        /// Size of the sealed segment.
        bytes: u64,
    },
    /// Overload control rejected a submission because its user exceeded
    /// the admission quota or the fair queue share.
    QuotaRejected {
        /// User id of the rejected submission.
        user: u32,
        /// Waiting-queue depth at rejection time.
        queue_depth: u32,
    },
}

impl TraceEvent {
    /// The capture class of this event.
    pub fn class(&self) -> TraceClass {
        match self {
            TraceEvent::Decision { .. }
            | TraceEvent::PolicySwitch { .. }
            | TraceEvent::AdmissionVerdict { .. }
            | TraceEvent::JobFault { .. }
            | TraceEvent::JobRetry { .. }
            | TraceEvent::JobLost { .. }
            | TraceEvent::ReservationRepair { .. }
            | TraceEvent::JobRouted { .. }
            | TraceEvent::MigrateDepart { .. }
            | TraceEvent::MigrateArrive { .. }
            | TraceEvent::CheckpointWritten { .. }
            | TraceEvent::CheckpointLoaded { .. }
            | TraceEvent::JournalRotated { .. }
            | TraceEvent::QuotaRejected { .. } => TraceClass::Decision,
            TraceEvent::PlanBuilt { .. } | TraceEvent::Span { .. } => TraceClass::Span,
            TraceEvent::SimEvent { .. }
            | TraceEvent::BackfillMove { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. } => TraceClass::Dispatch,
        }
    }

    /// Short type tag used by the JSONL sink (stable format contract).
    pub fn type_tag(&self) -> &'static str {
        match self {
            TraceEvent::SimEvent { .. } => "sim_event",
            TraceEvent::PlanBuilt { .. } => "plan",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::PolicySwitch { .. } => "switch",
            TraceEvent::AdmissionVerdict { .. } => "admission",
            TraceEvent::BackfillMove { .. } => "backfill",
            TraceEvent::Span { .. } => "span",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::JobFault { .. } => "job_fault",
            TraceEvent::JobRetry { .. } => "job_retry",
            TraceEvent::JobLost { .. } => "job_lost",
            TraceEvent::ReservationRepair { .. } => "res_repair",
            TraceEvent::JobRouted { .. } => "route",
            TraceEvent::MigrateDepart { .. } => "migrate_depart",
            TraceEvent::MigrateArrive { .. } => "migrate_arrive",
            TraceEvent::CheckpointWritten { .. } => "checkpoint",
            TraceEvent::CheckpointLoaded { .. } => "ckpt_load",
            TraceEvent::JournalRotated { .. } => "rotate",
            TraceEvent::QuotaRejected { .. } => "quota",
        }
    }
}

/// A recorded event with its position on both clocks: the simulation
/// clock (`sim`) and the host wall clock (`wall_ns`, nanoseconds since
/// the tracer was created). For span-like events `wall_ns` is the span
/// *start*; the duration lives in the event itself.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number (records are totally ordered even at
    /// equal timestamps).
    pub seq: u64,
    /// Simulation time the event happened at.
    pub sim: SimTime,
    /// Wall-clock nanoseconds since tracer creation (span start for
    /// span-like events).
    pub wall_ns: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(TraceLevel::Off < TraceLevel::Decisions);
        assert!(TraceLevel::Decisions < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::All);
        assert!(!TraceClass::Decision.captured_at(TraceLevel::Off));
        assert!(TraceClass::Decision.captured_at(TraceLevel::Decisions));
        assert!(!TraceClass::Span.captured_at(TraceLevel::Decisions));
        assert!(TraceClass::Span.captured_at(TraceLevel::Spans));
        assert!(!TraceClass::Dispatch.captured_at(TraceLevel::Spans));
        assert!(TraceClass::Dispatch.captured_at(TraceLevel::All));
    }

    #[test]
    fn level_names_round_trip() {
        for level in [
            TraceLevel::Off,
            TraceLevel::Decisions,
            TraceLevel::Spans,
            TraceLevel::All,
        ] {
            assert_eq!(TraceLevel::parse(level.name()), Some(level));
        }
        assert_eq!(TraceLevel::parse("ALL"), Some(TraceLevel::All));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn classes_match_taxonomy() {
        let decision = TraceEvent::Decision {
            old: "FCFS",
            verdict: "SJF",
            rule: "argmin",
            scores: vec![],
        };
        assert_eq!(decision.class(), TraceClass::Decision);
        assert_eq!(decision.type_tag(), "decision");
        let span = TraceEvent::Span {
            name: "step",
            dur_ns: 5,
        };
        assert_eq!(span.class(), TraceClass::Span);
        let dispatch = TraceEvent::SimEvent {
            kind: "arrive",
            id: 0,
        };
        assert_eq!(dispatch.class(), TraceClass::Dispatch);
    }
}
