//! # dynp-obs — observability substrate for the dynP reproduction
//!
//! The self-tuning dynP scheduler's whole argument rests on *why* it
//! switches policy: per-policy SLDwA scores feed a decider, the decider
//! picks a policy, the policy reorders the queue. End-of-run aggregates
//! (SLDwA, switch counts) say *that* this happened; this crate records
//! *each* of those steps as a typed [`TraceEvent`] so a single decision
//! can be inspected, timed, and explained after the fact.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** A disabled [`Tracer`] is a
//!    `None`; every record call is one branch on it and no clock is
//!    read. Simulation results are bit-identical with tracing on or off
//!    (asserted by a property test in the umbrella crate) — the tracer
//!    only *observes*, it never feeds back into scheduling.
//! 2. **Bounded memory.** Records land in a ring buffer of fixed
//!    capacity; on overflow the oldest record is dropped and counted,
//!    never reallocated without bound.
//! 3. **No dependency cycles.** This crate sits directly above
//!    `dynp-des` (for [`SimTime`](dynp_des::SimTime)) and below
//!    everything else; domain types cross the boundary as `&'static
//!    str` labels (`Policy::name()`, `RejectReason::label()`), so `rms`,
//!    `core` and `sim` can all emit events without `obs` knowing their
//!    types.
//!
//! Two sink formats serialize a finished trace ([`sink`]):
//!
//! * **JSONL** — one self-describing JSON object per record, the
//!   machine-readable audit log `trace_report` post-processes. A
//!   hand-rolled parser ([`parse`]) reads it back (the workspace vendors
//!   a no-op serde), and a round-trip test pins the format.
//! * **Chrome trace-event format** — load the file in `chrome://tracing`
//!   (or <https://ui.perfetto.dev>) to see plan/decide/admission phases
//!   as wall-clock spans with the simulation time attached to each.

pub mod event;
pub mod parse;
pub mod sink;
pub mod tracer;

pub use event::{TraceClass, TraceEvent, TraceLevel, TraceRecord};
pub use parse::{parse_jsonl, Json, ParsedEvent, ParsedRecord};
pub use sink::{render_chrome_trace, render_jsonl, write_chrome_trace, write_jsonl};
pub use tracer::{ManualClock, SpanGuard, TraceClock, TraceSnapshot, Tracer};
