//! Trace sinks: JSONL (the machine-readable audit log) and the Chrome
//! trace-event format (`chrome://tracing` / Perfetto-loadable spans).
//!
//! Both formats are written by hand — the workspace deliberately vendors
//! a no-op serde — and the JSONL format is the contract
//! [`crate::parse`] reads back (pinned by round-trip tests).

use crate::event::{TraceEvent, TraceRecord};
use crate::tracer::TraceSnapshot;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Writes an f64 as JSON: the shortest round-trip decimal, or `null` for
/// non-finite values (which JSON cannot carry).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // Bare integers like `3` are valid JSON numbers; keep them as-is.
    } else {
        out.push_str("null");
    }
}

/// Escapes a string for a JSON string literal (the labels we emit are
/// `&'static str` identifiers, but the sink must not rely on that).
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one record as a single JSONL line (no trailing newline).
pub fn render_jsonl_line(rec: &TraceRecord) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"seq\":{},\"sim_ms\":{},\"wall_ns\":{},\"type\":",
        rec.seq,
        rec.sim.as_millis(),
        rec.wall_ns
    );
    push_str(&mut out, rec.event.type_tag());
    match &rec.event {
        TraceEvent::SimEvent { kind, id } => {
            out.push_str(",\"kind\":");
            push_str(&mut out, kind);
            let _ = write!(out, ",\"id\":{id}");
        }
        TraceEvent::PlanBuilt {
            policy,
            queue_depth,
            profile_points,
            workers,
            dur_ns,
        } => {
            out.push_str(",\"policy\":");
            push_str(&mut out, policy);
            let _ = write!(
                out,
                ",\"queue_depth\":{queue_depth},\"profile_points\":{profile_points},\"workers\":{workers},\"dur_ns\":{dur_ns}"
            );
        }
        TraceEvent::Decision {
            old,
            verdict,
            rule,
            scores,
        } => {
            out.push_str(",\"old\":");
            push_str(&mut out, old);
            out.push_str(",\"verdict\":");
            push_str(&mut out, verdict);
            out.push_str(",\"rule\":");
            push_str(&mut out, rule);
            out.push_str(",\"scores\":{");
            for (i, (policy, score)) in scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str(&mut out, policy);
                out.push(':');
                push_f64(&mut out, *score);
            }
            out.push('}');
        }
        TraceEvent::PolicySwitch { from, to } => {
            out.push_str(",\"from\":");
            push_str(&mut out, from);
            out.push_str(",\"to\":");
            push_str(&mut out, to);
        }
        TraceEvent::AdmissionVerdict { request, verdict } => {
            let _ = write!(out, ",\"request\":{request},\"verdict\":");
            push_str(&mut out, verdict);
        }
        TraceEvent::BackfillMove {
            job,
            width,
            overtaken,
        } => {
            let _ = write!(
                out,
                ",\"job\":{job},\"width\":{width},\"overtaken\":{overtaken}"
            );
        }
        TraceEvent::Span { name, dur_ns } => {
            out.push_str(",\"name\":");
            push_str(&mut out, name);
            let _ = write!(out, ",\"dur_ns\":{dur_ns}");
        }
        TraceEvent::NodeDown { node } | TraceEvent::NodeUp { node } => {
            let _ = write!(out, ",\"node\":{node}");
        }
        TraceEvent::JobFault {
            job,
            attempt,
            reason,
        } => {
            let _ = write!(out, ",\"job\":{job},\"attempt\":{attempt},\"reason\":");
            push_str(&mut out, reason);
        }
        TraceEvent::JobRetry {
            job,
            attempt,
            delay_ms,
        } => {
            let _ = write!(
                out,
                ",\"job\":{job},\"attempt\":{attempt},\"delay_ms\":{delay_ms}"
            );
        }
        TraceEvent::JobLost { job, attempts } => {
            let _ = write!(out, ",\"job\":{job},\"attempts\":{attempts}");
        }
        TraceEvent::ReservationRepair {
            reservation,
            action,
            width,
        } => {
            let _ = write!(out, ",\"reservation\":{reservation},\"action\":");
            push_str(&mut out, action);
            let _ = write!(out, ",\"width\":{width}");
        }
        TraceEvent::JobRouted {
            job,
            from,
            to,
            transfer_ms,
        } => {
            let _ = write!(
                out,
                ",\"job\":{job},\"from\":{from},\"to\":{to},\"transfer_ms\":{transfer_ms}"
            );
        }
        TraceEvent::MigrateDepart { job, from, to }
        | TraceEvent::MigrateArrive { job, from, to } => {
            let _ = write!(out, ",\"job\":{job},\"from\":{from},\"to\":{to}");
        }
        TraceEvent::CheckpointWritten { journal_seq, bytes } => {
            let _ = write!(out, ",\"journal_seq\":{journal_seq},\"bytes\":{bytes}");
        }
        TraceEvent::CheckpointLoaded {
            journal_seq,
            replayed,
        } => {
            let _ = write!(
                out,
                ",\"journal_seq\":{journal_seq},\"replayed\":{replayed}"
            );
        }
        TraceEvent::JournalRotated { segment, bytes } => {
            let _ = write!(out, ",\"segment\":{segment},\"bytes\":{bytes}");
        }
        TraceEvent::QuotaRejected { user, queue_depth } => {
            let _ = write!(out, ",\"user\":{user},\"queue_depth\":{queue_depth}");
        }
    }
    out.push('}');
    out
}

/// Renders a whole snapshot as JSONL text (one record per line). A
/// `#dropped` comment-style header line is prepended when the ring buffer
/// overflowed, so consumers know the trace is a suffix.
pub fn render_jsonl(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    if snapshot.dropped > 0 {
        let _ = writeln!(
            out,
            "{{\"seq\":null,\"type\":\"meta\",\"dropped\":{}}}",
            snapshot.dropped
        );
    }
    for rec in &snapshot.records {
        out.push_str(&render_jsonl_line(rec));
        out.push('\n');
    }
    out
}

/// Writes the snapshot as JSONL to `path`.
pub fn write_jsonl(snapshot: &TraceSnapshot, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(render_jsonl(snapshot).as_bytes())?;
    file.flush()
}

/// Renders the snapshot in the Chrome trace-event format: a JSON object
/// with a `traceEvents` array, loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
///
/// Span-like records ([`TraceEvent::Span`], [`TraceEvent::PlanBuilt`])
/// become complete (`"ph":"X"`) events on the wall-clock timeline with
/// their duration; everything else becomes an instant (`"ph":"i"`)
/// event. Timestamps are microseconds since tracer creation; the
/// simulation time of each record rides along in `args.sim_ms` so the
/// two clocks can be correlated.
pub fn render_chrome_trace(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for rec in &snapshot.records {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = rec.wall_ns as f64 / 1_000.0;
        match &rec.event {
            TraceEvent::Span { name, dur_ns } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{ts_us},\
                     \"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{}}}}}",
                    *dur_ns as f64 / 1_000.0,
                    rec.sim.as_millis()
                );
            }
            TraceEvent::PlanBuilt {
                policy,
                queue_depth,
                profile_points,
                workers,
                dur_ns,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"plan:{policy}\",\"cat\":\"plan\",\"ph\":\"X\",\"ts\":{ts_us},\
                     \"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"queue_depth\":{queue_depth},\"profile_points\":{profile_points},\
                     \"workers\":{workers}}}}}",
                    *dur_ns as f64 / 1_000.0,
                    rec.sim.as_millis()
                );
            }
            TraceEvent::Decision {
                old, verdict, rule, ..
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"decide\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"old\":\"{old}\",\"verdict\":\"{verdict}\",\"rule\":\"{rule}\"}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::PolicySwitch { from, to } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"switch {from}->{to}\",\"cat\":\"decision\",\"ph\":\"i\",\
                     \"s\":\"g\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"sim_ms\":{}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::AdmissionVerdict { request, verdict } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"admission:{verdict}\",\"cat\":\"admission\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"sim_ms\":{},\"request\":{request}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::SimEvent { kind, id } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"event:{kind}\",\"cat\":\"dispatch\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"sim_ms\":{},\"id\":{id}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::BackfillMove {
                job,
                width,
                overtaken,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"backfill:j{job}\",\"cat\":\"dispatch\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"width\":{width},\"overtaken\":{overtaken}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::NodeDown { node } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"node_down:n{node}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"sim_ms\":{},\"node\":{node}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::NodeUp { node } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"node_up:n{node}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"sim_ms\":{},\"node\":{node}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::JobFault {
                job,
                attempt,
                reason,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"fault:{reason}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"job\":{job},\"attempt\":{attempt}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::JobRetry {
                job,
                attempt,
                delay_ms,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"retry:j{job}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"attempt\":{attempt},\"delay_ms\":{delay_ms}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::JobLost { job, attempts } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"lost:j{job}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"attempts\":{attempts}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::ReservationRepair {
                reservation,
                action,
                width,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"repair:{action}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"reservation\":{reservation},\"width\":{width}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::JobRouted {
                job,
                from,
                to,
                transfer_ms,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"route:j{job}\",\"cat\":\"federation\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"from\":{from},\"to\":{to},\"transfer_ms\":{transfer_ms}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::MigrateDepart { job, from, to } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"migrate_depart:j{job}\",\"cat\":\"federation\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"from\":{from},\"to\":{to}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::MigrateArrive { job, from, to } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"migrate_arrive:j{job}\",\"cat\":\"federation\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"from\":{from},\"to\":{to}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::CheckpointWritten { journal_seq, bytes } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"checkpoint\",\"cat\":\"durability\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"journal_seq\":{journal_seq},\"bytes\":{bytes}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::CheckpointLoaded {
                journal_seq,
                replayed,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"ckpt_load\",\"cat\":\"durability\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"journal_seq\":{journal_seq},\"replayed\":{replayed}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::JournalRotated { segment, bytes } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"rotate:s{segment}\",\"cat\":\"durability\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"bytes\":{bytes}}}}}",
                    rec.sim.as_millis()
                );
            }
            TraceEvent::QuotaRejected { user, queue_depth } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"quota:u{user}\",\"cat\":\"durability\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"sim_ms\":{},\
                     \"queue_depth\":{queue_depth}}}}}",
                    rec.sim.as_millis()
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the snapshot as a Chrome trace to `path`.
pub fn write_chrome_trace(snapshot: &TraceSnapshot, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(render_chrome_trace(snapshot).as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_des::SimTime;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            sim: SimTime::from_secs(seq),
            wall_ns: seq * 1_000,
            event,
        }
    }

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            records: vec![
                rec(
                    0,
                    TraceEvent::SimEvent {
                        kind: "arrive",
                        id: 3,
                    },
                ),
                rec(
                    1,
                    TraceEvent::PlanBuilt {
                        policy: "SJF",
                        queue_depth: 4,
                        profile_points: 9,
                        workers: 2,
                        dur_ns: 777,
                    },
                ),
                rec(
                    2,
                    TraceEvent::Decision {
                        old: "FCFS",
                        verdict: "SJF",
                        rule: "argmin",
                        scores: vec![("FCFS", 3.5), ("SJF", 1.25), ("LJF", 2.0)],
                    },
                ),
                rec(
                    3,
                    TraceEvent::PolicySwitch {
                        from: "FCFS",
                        to: "SJF",
                    },
                ),
                rec(
                    4,
                    TraceEvent::AdmissionVerdict {
                        request: 2,
                        verdict: "no-capacity",
                    },
                ),
                rec(
                    5,
                    TraceEvent::BackfillMove {
                        job: 11,
                        width: 2,
                        overtaken: 1,
                    },
                ),
                rec(
                    6,
                    TraceEvent::Span {
                        name: "step",
                        dur_ns: 12_345,
                    },
                ),
                rec(7, TraceEvent::NodeDown { node: 5 }),
                rec(8, TraceEvent::NodeUp { node: 5 }),
                rec(
                    9,
                    TraceEvent::JobFault {
                        job: 11,
                        attempt: 1,
                        reason: "node-loss",
                    },
                ),
                rec(
                    10,
                    TraceEvent::JobRetry {
                        job: 11,
                        attempt: 1,
                        delay_ms: 300_000,
                    },
                ),
                rec(
                    11,
                    TraceEvent::JobLost {
                        job: 12,
                        attempts: 4,
                    },
                ),
                rec(
                    12,
                    TraceEvent::ReservationRepair {
                        reservation: 3,
                        action: "downgraded",
                        width: 2,
                    },
                ),
                rec(
                    13,
                    TraceEvent::JobRouted {
                        job: 20,
                        from: 0,
                        to: 2,
                        transfer_ms: 1_500,
                    },
                ),
                rec(
                    14,
                    TraceEvent::MigrateDepart {
                        job: 21,
                        from: 1,
                        to: 0,
                    },
                ),
                rec(
                    15,
                    TraceEvent::MigrateArrive {
                        job: 21,
                        from: 1,
                        to: 0,
                    },
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let text = render_jsonl(&sample());
        assert_eq!(text.lines().count(), 16);
        assert!(text.contains("\"type\":\"decision\""));
        assert!(text.contains("\"scores\":{\"FCFS\":3.5,\"SJF\":1.25,\"LJF\":2}"));
        assert!(text.contains("\"verdict\":\"no-capacity\""));
        assert!(text.contains("\"type\":\"node_down\""));
        assert!(text.contains("\"reason\":\"node-loss\""));
        assert!(text.contains("\"delay_ms\":300000"));
        assert!(text.contains("\"action\":\"downgraded\""));
    }

    #[test]
    fn dropped_records_announce_themselves() {
        let mut snap = sample();
        snap.dropped = 42;
        let text = render_jsonl(&snap);
        assert!(text.starts_with("{\"seq\":null,\"type\":\"meta\",\"dropped\":42}"));
    }

    #[test]
    fn chrome_trace_is_wellformed_and_has_spans() {
        let text = render_chrome_trace(&sample());
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.trim_end().ends_with("]}"));
        // Two span-like records → two complete events.
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2);
        // Everything else is an instant.
        assert_eq!(text.matches("\"ph\":\"i\"").count(), 14);
        assert!(text.contains("\"name\":\"plan:SJF\""));
        assert!(text.contains("\"name\":\"switch FCFS->SJF\""));
        assert!(text.contains("\"name\":\"node_down:n5\""));
        assert!(text.contains("\"name\":\"fault:node-loss\""));
        assert!(text.contains("\"name\":\"repair:downgraded\""));
        assert!(text.contains("\"name\":\"route:j20\""));
        assert!(text.contains("\"name\":\"migrate_depart:j21\""));
        assert!(text.contains("\"name\":\"migrate_arrive:j21\""));
        // Parses back as JSON (the parser doubles as a validator).
        let parsed = crate::parse::Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(crate::parse::Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 16);
    }

    #[test]
    fn non_finite_scores_become_null() {
        let snap = TraceSnapshot {
            records: vec![rec(
                0,
                TraceEvent::Decision {
                    old: "FCFS",
                    verdict: "FCFS",
                    rule: "argmin",
                    scores: vec![("FCFS", f64::INFINITY)],
                },
            )],
            dropped: 0,
        };
        let text = render_jsonl(&snap);
        assert!(text.contains("\"FCFS\":null"));
    }

    #[test]
    fn string_escaping_is_json_safe() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn file_sinks_write_both_formats() {
        let dir = std::env::temp_dir().join("dynp_obs_sink_test");
        let snap = sample();
        write_jsonl(&snap, &dir.join("t.jsonl")).unwrap();
        write_chrome_trace(&snap, &dir.join("t.trace.json")).unwrap();
        let jsonl = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 16);
        let chrome = std::fs::read_to_string(dir.join("t.trace.json")).unwrap();
        assert!(chrome.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
