//! A minimal JSON parser and the owned mirror types for reading a JSONL
//! trace back in.
//!
//! The workspace vendors a no-op serde, so deserialization is hand-rolled
//! too: [`Json`] is a small recursive-descent parser covering exactly the
//! JSON the sinks emit (and, as a bonus, anything standard JSON —
//! `trace_report` also uses it to validate the Chrome trace), and
//! [`parse_jsonl`] lifts lines into typed [`ParsedRecord`]s.

use std::str::Chars;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64 — all numbers the sinks emit fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (keys the sinks emit are unique).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars(),
            peeked: None,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.peek().is_some() {
            return Err("trailing characters after JSON value".into());
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 (`Num`, or NaN for `Null` — the sinks encode
    /// non-finite scores as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object field list.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    chars: Chars<'a>,
    peeked: Option<char>,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn bump(&mut self) -> Option<char> {
        match self.peeked.take() {
            Some(c) => Some(c),
            None => self.chars.next(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{c}', found '{got}'")),
            None => Err(format!("expected '{c}', found end of input")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character '{c}'")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => return Err(format!("invalid literal (expected '{word}')")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push(self.bump().unwrap());
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().unwrap());
        }
        if self.peek() == Some('.') {
            text.push(self.bump().unwrap());
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().unwrap());
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            text.push(self.bump().unwrap());
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().unwrap());
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().unwrap());
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("invalid \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("invalid escape sequence".into()),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Json::Arr(items)),
                _ => return Err("expected ',' or ']' in array".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Json::Obj(fields)),
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
}

/// Owned mirror of [`TraceEvent`](crate::TraceEvent), as read back from
/// JSONL (labels become `String`s).
#[derive(Clone, Debug, PartialEq)]
pub enum ParsedEvent {
    /// Mirror of [`TraceEvent::SimEvent`](crate::TraceEvent::SimEvent).
    SimEvent {
        /// Driver event label.
        kind: String,
        /// Job or request id.
        id: u64,
    },
    /// Mirror of [`TraceEvent::PlanBuilt`](crate::TraceEvent::PlanBuilt).
    PlanBuilt {
        /// Candidate policy name.
        policy: String,
        /// Waiting-queue depth at planning time.
        queue_depth: u32,
        /// Base-profile point count.
        profile_points: u32,
        /// Worker threads of the step's plan fan-out (1 = sequential;
        /// also 1 for traces written before the field existed).
        workers: u32,
        /// Plan-construction wall time in nanoseconds.
        dur_ns: u64,
    },
    /// Mirror of [`TraceEvent::Decision`](crate::TraceEvent::Decision).
    Decision {
        /// Policy active before the decision.
        old: String,
        /// Policy chosen.
        verdict: String,
        /// Decider rule that fired.
        rule: String,
        /// Per-policy scores (NaN where the sink wrote `null`).
        scores: Vec<(String, f64)>,
    },
    /// Mirror of [`TraceEvent::PolicySwitch`](crate::TraceEvent::PolicySwitch).
    PolicySwitch {
        /// Policy switched away from.
        from: String,
        /// Policy switched to.
        to: String,
    },
    /// Mirror of [`TraceEvent::AdmissionVerdict`](crate::TraceEvent::AdmissionVerdict).
    AdmissionVerdict {
        /// Request id.
        request: u32,
        /// `"admitted"` or a reject-reason label.
        verdict: String,
    },
    /// Mirror of [`TraceEvent::BackfillMove`](crate::TraceEvent::BackfillMove).
    BackfillMove {
        /// Job that jumped ahead.
        job: u32,
        /// Its processor width.
        width: u32,
        /// Earlier-submitted jobs it overtook.
        overtaken: u32,
    },
    /// Mirror of [`TraceEvent::Span`](crate::TraceEvent::Span).
    Span {
        /// Phase name.
        name: String,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// Mirror of [`TraceEvent::NodeDown`](crate::TraceEvent::NodeDown).
    NodeDown {
        /// Node index that went down.
        node: u32,
    },
    /// Mirror of [`TraceEvent::NodeUp`](crate::TraceEvent::NodeUp).
    NodeUp {
        /// Node index that came back.
        node: u32,
    },
    /// Mirror of [`TraceEvent::JobFault`](crate::TraceEvent::JobFault).
    JobFault {
        /// The failed job.
        job: u32,
        /// Which attempt failed.
        attempt: u32,
        /// Failure cause label.
        reason: String,
    },
    /// Mirror of [`TraceEvent::JobRetry`](crate::TraceEvent::JobRetry).
    JobRetry {
        /// The retried job.
        job: u32,
        /// The attempt that just failed.
        attempt: u32,
        /// Backoff delay in milliseconds.
        delay_ms: u64,
    },
    /// Mirror of [`TraceEvent::JobLost`](crate::TraceEvent::JobLost).
    JobLost {
        /// The lost job.
        job: u32,
        /// Total attempts made.
        attempts: u32,
    },
    /// Mirror of
    /// [`TraceEvent::ReservationRepair`](crate::TraceEvent::ReservationRepair).
    ReservationRepair {
        /// Book id of the repaired window.
        reservation: u32,
        /// `"downgraded"` or `"revoked"`.
        action: String,
        /// Width after the repair (0 when revoked).
        width: u32,
    },
    /// Mirror of [`TraceEvent::JobRouted`](crate::TraceEvent::JobRouted).
    JobRouted {
        /// The routed job (global dense id).
        job: u32,
        /// Cluster the job was submitted at.
        from: u32,
        /// Cluster the job was dispatched to.
        to: u32,
        /// Transfer latency paid (0 when routed locally), milliseconds.
        transfer_ms: u64,
    },
    /// Mirror of
    /// [`TraceEvent::MigrateDepart`](crate::TraceEvent::MigrateDepart).
    MigrateDepart {
        /// The migrating job (global dense id).
        job: u32,
        /// Origin cluster.
        from: u32,
        /// Destination cluster.
        to: u32,
    },
    /// Mirror of
    /// [`TraceEvent::MigrateArrive`](crate::TraceEvent::MigrateArrive).
    MigrateArrive {
        /// The migrated job (global dense id).
        job: u32,
        /// Origin cluster.
        from: u32,
        /// Destination cluster.
        to: u32,
    },
}

impl ParsedEvent {
    /// The JSONL type tag this event was parsed from.
    pub fn type_tag(&self) -> &'static str {
        match self {
            ParsedEvent::SimEvent { .. } => "sim_event",
            ParsedEvent::PlanBuilt { .. } => "plan",
            ParsedEvent::Decision { .. } => "decision",
            ParsedEvent::PolicySwitch { .. } => "switch",
            ParsedEvent::AdmissionVerdict { .. } => "admission",
            ParsedEvent::BackfillMove { .. } => "backfill",
            ParsedEvent::Span { .. } => "span",
            ParsedEvent::NodeDown { .. } => "node_down",
            ParsedEvent::NodeUp { .. } => "node_up",
            ParsedEvent::JobFault { .. } => "job_fault",
            ParsedEvent::JobRetry { .. } => "job_retry",
            ParsedEvent::JobLost { .. } => "job_lost",
            ParsedEvent::ReservationRepair { .. } => "res_repair",
            ParsedEvent::JobRouted { .. } => "route",
            ParsedEvent::MigrateDepart { .. } => "migrate_depart",
            ParsedEvent::MigrateArrive { .. } => "migrate_arrive",
        }
    }
}

/// Owned mirror of [`TraceRecord`](crate::TraceRecord) as read back from
/// JSONL.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRecord {
    /// Monotone sequence number.
    pub seq: u64,
    /// Simulation time in milliseconds.
    pub sim_ms: u64,
    /// Wall-clock nanoseconds since tracer creation.
    pub wall_ns: u64,
    /// The event payload.
    pub event: ParsedEvent,
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_u32(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(obj, key)?).map_err(|_| format!("field '{key}' out of u32 range"))
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Parses one JSONL line into a [`ParsedRecord`]. Meta lines (`"type":
/// "meta"`, emitted when the ring buffer dropped records) yield
/// `Ok(None)`.
pub fn parse_record(line: &str) -> Result<Option<ParsedRecord>, String> {
    let obj = Json::parse(line)?;
    let tag = field_str(&obj, "type")?;
    if tag == "meta" {
        return Ok(None);
    }
    let event = match tag.as_str() {
        "sim_event" => ParsedEvent::SimEvent {
            kind: field_str(&obj, "kind")?,
            id: field_u64(&obj, "id")?,
        },
        "plan" => ParsedEvent::PlanBuilt {
            policy: field_str(&obj, "policy")?,
            queue_depth: field_u32(&obj, "queue_depth")?,
            profile_points: field_u32(&obj, "profile_points")?,
            // Absent in traces from before the plan fan-out: sequential.
            workers: field_u32(&obj, "workers").unwrap_or(1),
            dur_ns: field_u64(&obj, "dur_ns")?,
        },
        "decision" => {
            let scores = obj
                .get("scores")
                .and_then(Json::as_object)
                .ok_or("missing 'scores' object")?
                .iter()
                .map(|(policy, v)| {
                    v.as_f64()
                        .map(|score| (policy.clone(), score))
                        .ok_or_else(|| format!("non-numeric score for '{policy}'"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            ParsedEvent::Decision {
                old: field_str(&obj, "old")?,
                verdict: field_str(&obj, "verdict")?,
                rule: field_str(&obj, "rule")?,
                scores,
            }
        }
        "switch" => ParsedEvent::PolicySwitch {
            from: field_str(&obj, "from")?,
            to: field_str(&obj, "to")?,
        },
        "admission" => ParsedEvent::AdmissionVerdict {
            request: field_u32(&obj, "request")?,
            verdict: field_str(&obj, "verdict")?,
        },
        "backfill" => ParsedEvent::BackfillMove {
            job: field_u32(&obj, "job")?,
            width: field_u32(&obj, "width")?,
            overtaken: field_u32(&obj, "overtaken")?,
        },
        "span" => ParsedEvent::Span {
            name: field_str(&obj, "name")?,
            dur_ns: field_u64(&obj, "dur_ns")?,
        },
        "node_down" => ParsedEvent::NodeDown {
            node: field_u32(&obj, "node")?,
        },
        "node_up" => ParsedEvent::NodeUp {
            node: field_u32(&obj, "node")?,
        },
        "job_fault" => ParsedEvent::JobFault {
            job: field_u32(&obj, "job")?,
            attempt: field_u32(&obj, "attempt")?,
            reason: field_str(&obj, "reason")?,
        },
        "job_retry" => ParsedEvent::JobRetry {
            job: field_u32(&obj, "job")?,
            attempt: field_u32(&obj, "attempt")?,
            delay_ms: field_u64(&obj, "delay_ms")?,
        },
        "job_lost" => ParsedEvent::JobLost {
            job: field_u32(&obj, "job")?,
            attempts: field_u32(&obj, "attempts")?,
        },
        "res_repair" => ParsedEvent::ReservationRepair {
            reservation: field_u32(&obj, "reservation")?,
            action: field_str(&obj, "action")?,
            width: field_u32(&obj, "width")?,
        },
        "route" => ParsedEvent::JobRouted {
            job: field_u32(&obj, "job")?,
            from: field_u32(&obj, "from")?,
            to: field_u32(&obj, "to")?,
            transfer_ms: field_u64(&obj, "transfer_ms")?,
        },
        "migrate_depart" => ParsedEvent::MigrateDepart {
            job: field_u32(&obj, "job")?,
            from: field_u32(&obj, "from")?,
            to: field_u32(&obj, "to")?,
        },
        "migrate_arrive" => ParsedEvent::MigrateArrive {
            job: field_u32(&obj, "job")?,
            from: field_u32(&obj, "from")?,
            to: field_u32(&obj, "to")?,
        },
        other => return Err(format!("unknown record type '{other}'")),
    };
    Ok(Some(ParsedRecord {
        seq: field_u64(&obj, "seq")?,
        sim_ms: field_u64(&obj, "sim_ms")?,
        wall_ns: field_u64(&obj, "wall_ns")?,
        event,
    }))
}

/// Parses a whole JSONL trace (skipping meta lines and blank lines).
/// Errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(Some(rec)) => records.push(rec),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {e}", idx + 1)),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceRecord};
    use crate::sink::render_jsonl;
    use crate::tracer::TraceSnapshot;
    use dynp_des::SimTime;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":null,"e":true}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\"y")
        );
        assert!(v.get("d").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_every_event_kind() {
        let events = vec![
            TraceEvent::SimEvent {
                kind: "arrive",
                id: 17,
            },
            TraceEvent::PlanBuilt {
                policy: "LJF",
                queue_depth: 3,
                profile_points: 12,
                workers: 4,
                dur_ns: 4_321,
            },
            TraceEvent::Decision {
                old: "FCFS",
                verdict: "SJF",
                rule: "argmin",
                scores: vec![("FCFS", 2.75), ("SJF", 1.0), ("LJF", 2.75)],
            },
            TraceEvent::PolicySwitch {
                from: "FCFS",
                to: "SJF",
            },
            TraceEvent::AdmissionVerdict {
                request: 9,
                verdict: "breaks-guarantee",
            },
            TraceEvent::BackfillMove {
                job: 5,
                width: 4,
                overtaken: 2,
            },
            TraceEvent::Span {
                name: "step",
                dur_ns: 999,
            },
            TraceEvent::NodeDown { node: 3 },
            TraceEvent::NodeUp { node: 3 },
            TraceEvent::JobFault {
                job: 7,
                attempt: 2,
                reason: "crash",
            },
            TraceEvent::JobRetry {
                job: 7,
                attempt: 2,
                delay_ms: 600_000,
            },
            TraceEvent::JobLost {
                job: 8,
                attempts: 4,
            },
            TraceEvent::ReservationRepair {
                reservation: 1,
                action: "revoked",
                width: 0,
            },
            TraceEvent::JobRouted {
                job: 30,
                from: 0,
                to: 3,
                transfer_ms: 2_000,
            },
            TraceEvent::MigrateDepart {
                job: 31,
                from: 2,
                to: 0,
            },
            TraceEvent::MigrateArrive {
                job: 31,
                from: 2,
                to: 0,
            },
        ];
        let snapshot = TraceSnapshot {
            records: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| TraceRecord {
                    seq: i as u64,
                    sim: SimTime::from_secs(10 + i as u64),
                    wall_ns: 100 * i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
        };
        let text = render_jsonl(&snapshot);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), snapshot.records.len());
        for (parsed, original) in parsed.iter().zip(&snapshot.records) {
            assert_eq!(parsed.seq, original.seq);
            assert_eq!(parsed.sim_ms, original.sim.as_millis());
            assert_eq!(parsed.wall_ns, original.wall_ns);
            assert_eq!(parsed.event.type_tag(), original.event.type_tag());
        }
        // Spot-check a payload survived intact.
        match &parsed[2].event {
            ParsedEvent::Decision {
                old,
                verdict,
                rule,
                scores,
            } => {
                assert_eq!(old, "FCFS");
                assert_eq!(verdict, "SJF");
                assert_eq!(rule, "argmin");
                assert_eq!(
                    scores,
                    &[
                        ("FCFS".to_owned(), 2.75),
                        ("SJF".to_owned(), 1.0),
                        ("LJF".to_owned(), 2.75)
                    ]
                );
            }
            other => panic!("expected decision, got {other:?}"),
        }
        // And a fault payload.
        match &parsed[9].event {
            ParsedEvent::JobFault {
                job,
                attempt,
                reason,
            } => {
                assert_eq!(*job, 7);
                assert_eq!(*attempt, 2);
                assert_eq!(reason, "crash");
            }
            other => panic!("expected job_fault, got {other:?}"),
        }
    }

    #[test]
    fn meta_lines_are_skipped() {
        let mut snapshot = TraceSnapshot {
            records: vec![TraceRecord {
                seq: 8,
                sim: SimTime::from_secs(1),
                wall_ns: 5,
                event: TraceEvent::PolicySwitch {
                    from: "SJF",
                    to: "LJF",
                },
            }],
            dropped: 3,
        };
        let text = render_jsonl(&snapshot);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].seq, 8);
        snapshot.dropped = 0;
        assert_eq!(parse_jsonl(&render_jsonl(&snapshot)).unwrap().len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_jsonl("{\"seq\":0,\"sim_ms\":0,\"wall_ns\":0,\"type\":\"span\",\"name\":\"x\",\"dur_ns\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn null_scores_parse_as_nan() {
        let line = r#"{"seq":0,"sim_ms":0,"wall_ns":0,"type":"decision","old":"FCFS","verdict":"FCFS","rule":"argmin","scores":{"FCFS":null}}"#;
        let rec = parse_record(line).unwrap().unwrap();
        match rec.event {
            ParsedEvent::Decision { scores, .. } => {
                assert_eq!(scores.len(), 1);
                assert!(scores[0].1.is_nan());
            }
            other => panic!("expected decision, got {other:?}"),
        }
    }
}
