//! The tracer: a cheaply cloneable recording handle with a bounded ring
//! buffer and RAII span guards.

use crate::event::{TraceClass, TraceEvent, TraceLevel, TraceRecord};
use dynp_des::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The wall-clock source behind a tracer's `wall_ns` stamps.
///
/// The default source is monotonic time since the tracer's creation
/// ([`Tracer::enabled`]); the service daemon injects its own epoch so
/// daemon traces line up with its scheduling clock, and deterministic
/// tests inject a [`ManualClock`] so stamps are exact values instead of
/// elapsed real time. One code path serves all three.
pub trait TraceClock: Send + Sync {
    /// Nanoseconds since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The default clock: monotonic nanoseconds since construction.
struct MonotonicClock {
    epoch: Instant,
}

impl TraceClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A manually-advanced clock for deterministic trace tests: reads return
/// exactly the last value stored, so `wall_ns` stamps can be asserted
/// byte-for-byte.
#[derive(Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A manual clock starting at `ns`.
    pub fn new(ns: u64) -> Arc<ManualClock> {
        Arc::new(ManualClock(AtomicU64::new(ns)))
    }

    /// Sets the clock to an absolute value.
    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }

    /// Moves the clock forward by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl TraceClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default ring-buffer capacity: enough for a quick-mode run at
/// [`TraceLevel::All`] (a 2 500-job run emits ~40 k records) with a wide
/// margin, while bounding a paper-scale firehose to ~100 MB.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

struct Ring {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

struct Inner {
    level: TraceLevel,
    clock: Arc<dyn TraceClock>,
    ring: Mutex<Ring>,
}

/// The recording handle threaded through schedulers, planners, the
/// admission controller and the simulation driver.
///
/// Cloning is cheap (an `Arc` bump or a `None` copy); all clones feed the
/// same ring buffer. The disabled tracer — [`Tracer::disabled`], also the
/// `Default` — holds no allocation at all, and every recording call on it
/// is a single branch.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => write!(f, "Tracer(level={})", inner.level.name()),
        }
    }
}

impl Tracer {
    /// The no-op tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording at `level` into a ring buffer of
    /// [`DEFAULT_CAPACITY`] records.
    pub fn enabled(level: TraceLevel) -> Tracer {
        Tracer::with_capacity(level, DEFAULT_CAPACITY)
    }

    /// A tracer recording at `level` into a ring buffer of `capacity`
    /// records; on overflow the oldest record is dropped (and counted in
    /// [`TraceSnapshot::dropped`]).
    ///
    /// `level == Off` yields the disabled tracer.
    pub fn with_capacity(level: TraceLevel, capacity: usize) -> Tracer {
        Tracer::with_clock(
            level,
            capacity,
            Arc::new(MonotonicClock {
                epoch: Instant::now(),
            }),
        )
    }

    /// A tracer stamping records from the given [`TraceClock`] instead of
    /// a private monotonic epoch. The daemon passes its scheduling-clock
    /// epoch; deterministic tests pass a [`ManualClock`].
    ///
    /// `level == Off` yields the disabled tracer.
    pub fn with_clock(level: TraceLevel, capacity: usize, clock: Arc<dyn TraceClock>) -> Tracer {
        if level == TraceLevel::Off || capacity == 0 {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(Inner {
                level,
                clock,
                ring: Mutex::new(Ring {
                    buf: VecDeque::new(),
                    capacity,
                    seq: 0,
                    dropped: 0,
                }),
            })),
        }
    }

    /// True when any recording can happen at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The level in force ([`TraceLevel::Off`] when disabled).
    pub fn level(&self) -> TraceLevel {
        self.inner
            .as_ref()
            .map_or(TraceLevel::Off, |inner| inner.level)
    }

    /// True when events of `class` are captured. Callers with non-trivial
    /// event construction cost (e.g. cloning a score vector) should gate
    /// on this before building the event.
    pub fn wants(&self, class: TraceClass) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => class.captured_at(inner.level),
        }
    }

    /// Records `event` at simulation instant `sim` (if the level captures
    /// its class), stamping it with the current wall clock.
    pub fn record(&self, sim: SimTime, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        if !event.class().captured_at(inner.level) {
            return;
        }
        let wall_ns = inner.clock.now_ns();
        inner.push(sim, wall_ns, event);
    }

    /// Starts an RAII wall-clock span named `name` at simulation instant
    /// `sim`. Dropping the guard records a [`TraceEvent::Span`] whose
    /// `wall_ns` is the span start and whose duration is the guard's
    /// lifetime. On a disabled (or below-`Spans`) tracer the guard is
    /// inert and no clock is read.
    pub fn span(&self, sim: SimTime, name: &'static str) -> SpanGuard {
        let armed = match &self.inner {
            Some(inner) if TraceClass::Span.captured_at(inner.level) => Some(inner.clock.now_ns()),
            _ => None,
        };
        SpanGuard {
            inner: self.inner.clone(),
            name,
            sim,
            start: armed,
        }
    }

    /// Wall-clock nanoseconds since the tracer's creation; 0 when
    /// disabled. Used by callers that time a phase themselves (e.g. the
    /// per-policy plan loop) instead of going through a guard.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.clock.now_ns())
    }

    /// Records a span-like event with an explicit start stamp (from
    /// [`Tracer::now_ns`]) — the event carries its own duration.
    pub fn record_at(&self, sim: SimTime, wall_start_ns: u64, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        if !event.class().captured_at(inner.level) {
            return;
        }
        inner.push(sim, wall_start_ns, event);
    }

    /// Copies the recorded trace out (the buffer keeps recording).
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                let ring = inner.ring.lock().expect("tracer ring poisoned");
                TraceSnapshot {
                    records: ring.buf.iter().cloned().collect(),
                    dropped: ring.dropped,
                }
            }
        }
    }
}

impl Inner {
    fn push(&self, sim: SimTime, wall_ns: u64, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.seq;
        ring.seq += 1;
        ring.buf.push_back(TraceRecord {
            seq,
            sim,
            wall_ns,
            event,
        });
    }
}

/// An RAII guard measuring one wall-clock phase; see [`Tracer::span`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    name: &'static str,
    sim: SimTime,
    start: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(start_ns)) = (&self.inner, self.start) else {
            return;
        };
        let dur_ns = inner.clock.now_ns().saturating_sub(start_ns);
        inner.push(
            self.sim,
            start_ns,
            TraceEvent::Span {
                name: self.name,
                dur_ns,
            },
        );
    }
}

/// The recorded trace at one point in time.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Records in sequence order (oldest surviving first).
    pub records: Vec<TraceRecord>,
    /// Records lost to ring-buffer overflow before the snapshot.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        assert!(!tracer.wants(TraceClass::Decision));
        tracer.record(
            t(1),
            TraceEvent::PolicySwitch {
                from: "FCFS",
                to: "SJF",
            },
        );
        drop(tracer.span(t(1), "step"));
        let snap = tracer.snapshot();
        assert!(snap.records.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn off_level_is_disabled() {
        assert!(!Tracer::enabled(TraceLevel::Off).is_enabled());
        assert!(!Tracer::with_capacity(TraceLevel::All, 0).is_enabled());
    }

    #[test]
    fn level_gates_classes() {
        let tracer = Tracer::enabled(TraceLevel::Decisions);
        tracer.record(
            t(1),
            TraceEvent::PolicySwitch {
                from: "FCFS",
                to: "SJF",
            },
        );
        tracer.record(
            t(1),
            TraceEvent::SimEvent {
                kind: "arrive",
                id: 0,
            },
        );
        drop(tracer.span(t(1), "step")); // Span class: not captured
        let snap = tracer.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert!(matches!(
            snap.records[0].event,
            TraceEvent::PolicySwitch { .. }
        ));
    }

    #[test]
    fn spans_measure_and_stamp() {
        let tracer = Tracer::enabled(TraceLevel::Spans);
        {
            let _guard = tracer.span(t(5), "prepare");
            std::hint::black_box(42);
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.records.len(), 1);
        let rec = &snap.records[0];
        assert_eq!(rec.sim, t(5));
        match rec.event {
            TraceEvent::Span { name, dur_ns } => {
                assert_eq!(name, "prepare");
                // Duration is measured (may legitimately be 0 ns on a
                // coarse clock, but the record must exist).
                let _ = dur_ns;
            }
            ref other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::with_capacity(TraceLevel::All, 3);
        for i in 0..5 {
            tracer.record(
                t(i),
                TraceEvent::SimEvent {
                    kind: "arrive",
                    id: i,
                },
            );
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.dropped, 2);
        // Oldest surviving is seq 2; sequence numbers keep counting.
        assert_eq!(snap.records[0].seq, 2);
        assert_eq!(snap.records[2].seq, 4);
    }

    #[test]
    fn clones_share_one_buffer() {
        let tracer = Tracer::enabled(TraceLevel::Decisions);
        let clone = tracer.clone();
        clone.record(
            t(1),
            TraceEvent::AdmissionVerdict {
                request: 7,
                verdict: "admitted",
            },
        );
        assert_eq!(tracer.snapshot().records.len(), 1);
    }

    #[test]
    fn manual_clock_gives_exact_stamps() {
        let clock = ManualClock::new(100);
        let tracer = Tracer::with_clock(TraceLevel::All, 16, clock.clone());
        tracer.record(
            t(1),
            TraceEvent::SimEvent {
                kind: "arrive",
                id: 0,
            },
        );
        clock.advance_ns(50);
        {
            let _guard = tracer.span(t(2), "plan");
            clock.advance_ns(25);
        }
        clock.set_ns(1000);
        assert_eq!(tracer.now_ns(), 1000);
        let snap = tracer.snapshot();
        assert_eq!(snap.records[0].wall_ns, 100);
        match snap.records[1].event {
            TraceEvent::Span { name, dur_ns } => {
                assert_eq!(name, "plan");
                assert_eq!(dur_ns, 25);
                assert_eq!(snap.records[1].wall_ns, 150);
            }
            ref other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let tracer = Tracer::enabled(TraceLevel::All);
        for i in 0..10 {
            tracer.record(
                t(i),
                TraceEvent::SimEvent {
                    kind: "finish",
                    id: i,
                },
            );
        }
        let snap = tracer.snapshot();
        for w in snap.records.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].wall_ns <= w[1].wall_ns);
        }
    }
}
