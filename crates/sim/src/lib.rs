//! # dynp-sim — the experiment harness
//!
//! Binds the substrates together and regenerates the paper's evaluation:
//!
//! * [`runner`] — runs one job set through one scheduler on the discrete
//!   event engine and measures the result;
//! * [`spec`] — serializable scheduler specifications (static policies,
//!   dynP with any decider) so experiments are data;
//! * [`experiment`] — parameter sweeps over traces × shrinking factors ×
//!   schedulers with multi-set replication, worker-thread execution and
//!   the paper's drop-min/max combination;
//! * [`report`] — text/CSV/gnuplot rendering of result tables.
//!
//! The binaries in `src/bin/` map one-to-one onto the paper's tables and
//! figures (see DESIGN.md §3): `table1`, `table2`, `table4` (Figures
//! 1–2), `table5` (Figures 3–4, includes Table 3), plus the ablation
//! studies `ablation_preferred`, `ablation_threshold`, `ablation_step`.

pub mod cli;
pub mod codec;
pub mod experiment;
pub mod federation;
pub mod paper_ref;
pub mod report;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod svg;

pub use codec::{decode_snapshot, encode_snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use experiment::{Cell, CellResult, Experiment, ExperimentResult, FaultLoad, ReservationLoad};
pub use federation::{
    run_federation, ClusterSpec, FederationConfig, FederationResult, LinkModel, RoutePolicy,
};
pub use runner::{
    simulate, simulate_chaos, simulate_detailed, simulate_traced, simulate_with_reservations,
    ChaosDriver, DetailedRun, ReservationReport, RunObservations, RunResult, SimSnapshot,
};
pub use shard::{CoreSnapshot, Event, ShardCore};
pub use spec::SchedulerSpec;
